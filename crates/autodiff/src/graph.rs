//! The tape: graph storage, variable handles, reverse accumulation.

use adept_tensor::Tensor;
use std::cell::RefCell;

/// Backward hook of one tape node.
///
/// Receives the upstream gradient (same shape as the node's value) and
/// returns one optional gradient per parent, in parent order. `None` means
/// "no gradient flows to this parent" (e.g. a detached or integer input).
///
/// Hooks are `Send` so tape segments recorded on worker threads (see
/// [`crate::record_segment`]) can move back to the main thread for
/// splicing; they only ever capture owned tensors and plain data.
pub type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>> + Send>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) parents: Vec<usize>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) requires_grad: bool,
}

/// A define-by-run autodiff tape.
///
/// A fresh `Graph` is typically created per optimization step; leaves are
/// created from the current parameter tensors, the forward pass records
/// intermediate nodes, and [`Graph::backward`] returns gradients for the
/// leaves.
///
/// # Examples
///
/// ```
/// use adept_autodiff::Graph;
/// use adept_tensor::Tensor;
///
/// let g = Graph::new();
/// let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
/// let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
/// let loss = a.mul(b).sum();
/// let grads = g.backward(loss);
/// assert_eq!(grads.grad(a).unwrap().as_slice(), &[3.0, 4.0]);
/// assert_eq!(grads.grad(b).unwrap().as_slice(), &[1.0, 2.0]);
/// ```
pub struct Graph {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Process-unique tape identity. Segment imports are stamped with it
    /// so a splice onto a *different* graph — e.g. a staged build held
    /// across steps, whose node ids would recur deterministically on the
    /// next step's tape — fails loudly instead of wiring values from one
    /// step to gradients of another.
    pub(crate) nonce: u64,
}

impl Default for Graph {
    fn default() -> Self {
        static NEXT_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Self {
            nodes: RefCell::new(Vec::new()),
            nonce: NEXT_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.borrow().len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Creates a differentiable leaf holding `value`.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None, true)
    }

    /// Creates a non-differentiable constant holding `value`.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None, false)
    }

    /// Creates a scalar constant.
    pub fn scalar(&self, value: f64) -> Var<'_> {
        self.constant(Tensor::scalar(value))
    }

    /// Records a custom operation.
    ///
    /// `value` is the precomputed forward result; `backward` maps the
    /// upstream gradient to per-parent gradients. This is the extension
    /// point used for batch normalization, pooling and straight-through
    /// estimators in higher crates.
    ///
    /// # Panics
    ///
    /// Panics if any parent belongs to another graph.
    pub fn custom<'g>(
        &'g self,
        parents: &[Var<'g>],
        value: Tensor,
        backward: BackwardFn,
    ) -> Var<'g> {
        let ids: Vec<usize> = parents
            .iter()
            .map(|p| {
                assert!(std::ptr::eq(p.graph, self), "parent from another graph");
                p.id
            })
            .collect();
        let requires = {
            let nodes = self.nodes.borrow();
            ids.iter().any(|&i| nodes[i].requires_grad)
        };
        self.push(value, ids, Some(backward), requires)
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
            requires_grad,
        });
        Var { graph: self, id }
    }

    pub(crate) fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    pub(crate) fn shape_of(&self, id: usize) -> Vec<usize> {
        self.nodes.borrow()[id].value.shape().to_vec()
    }

    pub(crate) fn requires_grad_of(&self, id: usize) -> bool {
        self.nodes.borrow()[id].requires_grad
    }

    /// Runs reverse-mode accumulation from a scalar `loss` node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor or belongs to another
    /// graph.
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        assert!(std::ptr::eq(loss.graph, self), "loss from another graph");
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.len(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            nodes[loss.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        let mut seed = Tensor::zeros(nodes[loss.id].value.shape());
        seed.as_mut_slice()[0] = 1.0;
        grads[loss.id] = Some(seed);
        for id in (0..=loss.id).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            let node = &nodes[id];
            if !node.requires_grad {
                continue;
            }
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&grad);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward returned {} grads for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (pid, pg) in node.parents.iter().zip(parent_grads) {
                    let Some(pg) = pg else { continue };
                    if !nodes[*pid].requires_grad {
                        continue;
                    }
                    assert_eq!(
                        pg.shape(),
                        nodes[*pid].value.shape(),
                        "gradient shape mismatch for node {pid}"
                    );
                    match &mut grads[*pid] {
                        Some(acc) => acc.axpy(1.0, &pg),
                        slot => *slot = Some(pg),
                    }
                }
            } else if node.parents.is_empty() {
                // Leaf: keep its gradient for the caller.
                grads[id] = Some(grad);
            }
        }
        Gradients { grads }
    }
}

/// A handle to one node in a [`Graph`].
///
/// `Var` is `Copy`; all operations allocate new nodes on the owning graph.
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("shape", &self.shape())
            .finish()
    }
}

impl<'g> Var<'g> {
    /// The graph this variable belongs to.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Node index within the tape (stable for the graph's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    /// A clone of the node's current value.
    pub fn value(&self) -> Tensor {
        self.graph.value_of(self.id)
    }

    /// The node's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.graph.shape_of(self.id)
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.graph.requires_grad_of(self.id)
    }

    /// Returns a non-differentiable copy of this node (stops gradients).
    pub fn detach(&self) -> Var<'g> {
        self.graph.constant(self.value())
    }

    pub(crate) fn assert_same_graph(&self, other: &Var<'g>) {
        assert!(
            std::ptr::eq(self.graph, other.graph),
            "variables belong to different graphs"
        );
    }
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if any flowed.
    pub fn grad(&self, v: Var<'_>) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }

    /// Removes and returns the gradient for `v`.
    pub fn take(&mut self, v: Var<'_>) -> Option<Tensor> {
        self.grads.get_mut(v.id).and_then(|g| g.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2]));
        let c = g.constant(Tensor::ones(&[2]));
        assert!(a.requires_grad());
        assert!(!c.requires_grad());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![3.0], &[1]));
        // y = x*x + x  => dy/dx = 2x + 1 = 7
        let y = x.mul(x).add(x).sum();
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let c = g.constant(Tensor::from_vec(vec![5.0], &[1]));
        let y = x.mul(c).sum();
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[5.0]);
        assert!(grads.grad(c).is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let y = x.detach().mul(x).sum(); // treated as c*x with c=2
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_rejected() {
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(&[3]));
        let _ = g.backward(x);
    }

    #[test]
    fn custom_op_round_trip() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let v = x.value().map(|t| t * 3.0);
        let y = g.custom(&[x], v, Box::new(|gout| vec![Some(gout.map(|t| t * 3.0))]));
        let loss = y.sum();
        let grads = g.backward(loss);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[3.0, 3.0]);
    }
}
