//! The tape: graph storage, variable handles, reverse accumulation.

use adept_telemetry::Counter;
use adept_tensor::Tensor;
use std::cell::RefCell;

/// One per logical backward pass, regardless of which entry point ran —
/// deterministic across `ONN_THREADS`.
static BACKWARD_RUNS: Counter = Counter::stable("backward.runs");
/// Spans handed to worker replay. Zero on the serial fallback
/// (`ONN_THREADS=1`), hence volatile.
static SPANS_REPLAYED: Counter = Counter::volatile("backward.spans_replayed");

/// Backward hook of one tape node.
///
/// Receives the upstream gradient (same shape as the node's value) and
/// returns one optional gradient per parent, in parent order. `None` means
/// "no gradient flows to this parent" (e.g. a detached or integer input).
///
/// Hooks are `Send + Sync`: segments recorded on worker threads (see
/// [`crate::record_segment`]) move back to the main thread for splicing,
/// and [`Graph::backward_parallel`] *replays* spliced segments on worker
/// threads through shared references. Hooks only ever capture owned
/// tensors and plain data, and replay never runs the same hook twice.
pub type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>> + Send + Sync>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) parents: Vec<usize>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) requires_grad: bool,
}

/// Id range of one spliced [`crate::TapeSegment`] plus the main-tape ids
/// its import proxies were remapped to — the segment-boundary bookkeeping
/// [`Graph::backward_parallel`] uses to partition the reverse pass.
///
/// Every parent link of a node inside `[start, end)` either stays inside
/// the range or points at one of `imports` (segment nodes can only refer
/// to earlier tape positions through their import table), so the span is
/// a self-contained gradient subtree whose only external outputs are the
/// import targets.
#[derive(Debug, Clone)]
pub(crate) struct SpliceSpan {
    /// First main-tape id of the spliced run.
    pub(crate) start: usize,
    /// One past the last main-tape id of the spliced run.
    pub(crate) end: usize,
    /// Main-tape ids of the segment's import targets (all `< start`).
    pub(crate) imports: Vec<usize>,
}

/// A define-by-run autodiff tape.
///
/// A fresh `Graph` is typically created per optimization step; leaves are
/// created from the current parameter tensors, the forward pass records
/// intermediate nodes, and [`Graph::backward`] returns gradients for the
/// leaves.
///
/// # Examples
///
/// ```
/// use adept_autodiff::Graph;
/// use adept_tensor::Tensor;
///
/// let g = Graph::new();
/// let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
/// let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
/// let loss = a.mul(b).sum();
/// let grads = g.backward(loss);
/// assert_eq!(grads.grad(a).unwrap().as_slice(), &[3.0, 4.0]);
/// assert_eq!(grads.grad(b).unwrap().as_slice(), &[1.0, 2.0]);
/// ```
pub struct Graph {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Process-unique tape identity. Segment imports are stamped with it
    /// so a splice onto a *different* graph — e.g. a staged build held
    /// across steps, whose node ids would recur deterministically on the
    /// next step's tape — fails loudly instead of wiring values from one
    /// step to gradients of another.
    pub(crate) nonce: u64,
    /// Boundaries of every spliced segment, in splice (= tape) order.
    /// [`Graph::backward_parallel`] replays eligible spans concurrently.
    pub(crate) spans: RefCell<Vec<SpliceSpan>>,
}

impl Default for Graph {
    fn default() -> Self {
        static NEXT_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Self {
            nodes: RefCell::new(Vec::new()),
            nonce: NEXT_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            spans: RefCell::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.borrow().len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Creates a differentiable leaf holding `value`.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None, true)
    }

    /// Creates a non-differentiable constant holding `value`.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None, false)
    }

    /// Creates a scalar constant.
    pub fn scalar(&self, value: f64) -> Var<'_> {
        self.constant(Tensor::scalar(value))
    }

    /// Records a custom operation.
    ///
    /// `value` is the precomputed forward result; `backward` maps the
    /// upstream gradient to per-parent gradients. This is the extension
    /// point used for batch normalization, pooling and straight-through
    /// estimators in higher crates.
    ///
    /// # Panics
    ///
    /// Panics if any parent belongs to another graph.
    pub fn custom<'g>(
        &'g self,
        parents: &[Var<'g>],
        value: Tensor,
        backward: BackwardFn,
    ) -> Var<'g> {
        let ids: Vec<usize> = parents
            .iter()
            .map(|p| {
                assert!(std::ptr::eq(p.graph, self), "parent from another graph");
                p.id
            })
            .collect();
        let requires = {
            let nodes = self.nodes.borrow();
            ids.iter().any(|&i| nodes[i].requires_grad)
        };
        self.push(value, ids, Some(backward), requires)
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
            requires_grad,
        });
        Var { graph: self, id }
    }

    pub(crate) fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    pub(crate) fn shape_of(&self, id: usize) -> Vec<usize> {
        self.nodes.borrow()[id].value.shape().to_vec()
    }

    pub(crate) fn requires_grad_of(&self, id: usize) -> bool {
        self.nodes.borrow()[id].requires_grad
    }

    /// Runs reverse-mode accumulation from a scalar `loss` node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor or belongs to another
    /// graph.
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        // One stable `backward` span per logical pass: the parallel
        // entry point either delegates here (serial fallback) or opens
        // its own — never both.
        let _span = adept_telemetry::span("backward");
        BACKWARD_RUNS.incr();
        let nodes = self.nodes.borrow();
        let mut grads = seed_grads(&nodes, self, loss);
        {
            // In the serial replay glue and span interiors are fused;
            // attribute the whole sweep to glue (zero span replays).
            let _glue = adept_telemetry::span_volatile("backward/glue_sweep");
            replay_serial_range(&nodes, &mut grads, 0, loss.id + 1);
        }
        Gradients { grads }
    }

    /// Reverse-mode accumulation with the spliced gradient subtrees
    /// replayed concurrently on the shared thread pool.
    ///
    /// The tape is partitioned at the segment boundaries recorded by
    /// [`Graph::splice`]: each eligible span (a per-weight `[stack, stack,
    /// noise, U-walk, V-walk]` build, say) replays its backward hooks on a
    /// worker thread against a private gradient buffer, while the glue
    /// between spans — forward ops, Σ products, tile-grid assemblies — runs
    /// on the calling thread in serial order. Cross-segment accumulation
    /// happens on the calling thread in fixed splice (layer-index) order:
    ///
    /// 1. **Sweep** (main thread, descending ids): replay every non-span
    ///    node from the loss down to the lowest span start. When the sweep
    ///    passes a span this fixes the span's incoming gradients (all its
    ///    consumers live at higher ids).
    /// 2. **Replay** (worker threads): each span runs the *identical*
    ///    reverse loop over its own id range; contributions to imports are
    ///    collected in serial emission order instead of applied.
    /// 3. **Merge** (main thread, descending span order — exactly where the
    ///    serial walk would have emitted them): apply every span's import
    ///    contributions, then finish the tape below the lowest span.
    ///
    /// Because every accumulation lands in the same slot in the same order
    /// as [`Graph::backward`], the result is **bit-identical** to the
    /// serial replay at every thread count — the invariant pinned by the
    /// root `parallel_backward` suite. Spans whose imports reach into other
    /// spans (or tapes where between-span glue touches another span's
    /// imports) fall back to the serial replay rather than risk reordering
    /// a single accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor or belongs to
    /// another graph.
    pub fn backward_parallel(&self, loss: Var<'_>) -> Gradients {
        if adept_tensor::gemm_thread_count() <= 1 {
            // Check threads before the span-eligibility analysis, so the
            // single-threaded fallback (an entire CI determinism leg) pays
            // nothing for the partitioning it would throw away.
            return self.backward(loss);
        }
        let spans = self.replayable_spans(loss.id);
        if spans.is_empty() {
            return self.backward(loss);
        }
        let _span = adept_telemetry::span("backward");
        BACKWARD_RUNS.incr();
        let nodes_guard = self.nodes.borrow();
        let nodes: &[Node] = &nodes_guard;
        let mut grads = seed_grads(nodes, self, loss);
        let bottom = spans[0].start;

        // Phase 1: serial sweep from the loss down to `bottom`, skipping
        // span interiors (their consumers all live above them, so their
        // incoming gradients are final once the sweep passes).
        {
            let _glue = adept_telemetry::span_volatile("backward/glue_sweep");
            let mut hi = loss.id + 1;
            for span in spans.iter().rev() {
                replay_serial_range(nodes, &mut grads, span.end, hi);
                hi = span.start;
            }
            debug_assert_eq!(hi, bottom);
        }

        // Phase 2: snapshot each span's incoming gradients and replay the
        // spans concurrently. Spans with no incoming gradient (the loss
        // never consumed their results) are skipped outright — the serial
        // walk would not have visited them either.
        let snapshots: Vec<Vec<Option<Tensor>>> = spans
            .iter()
            .map(|s| grads[s.start..s.end].iter_mut().map(Option::take).collect())
            .collect();
        let mut results: Vec<Option<SpanReplay>> = (0..spans.len()).map(|_| None).collect();
        adept_tensor::pool::scope(|scope| {
            for ((span, snap), slot) in spans.iter().zip(snapshots).zip(results.iter_mut()) {
                if snap.iter().all(Option::is_none) {
                    *slot = Some(SpanReplay::default());
                    continue;
                }
                SPANS_REPLAYED.incr();
                scope.spawn(move || {
                    let _replay = adept_telemetry::span_volatile("backward/span_replay");
                    *slot = Some(replay_span(nodes, span, snap));
                });
            }
        });

        // Phase 3: merge in descending span order — the position at which
        // the serial walk emits each span's import contributions, between
        // the glue above and the glue below the span.
        {
            let _merge = adept_telemetry::span_volatile("backward/merge");
            for (span, result) in spans.iter().zip(results).rev() {
                let replay = result.expect("every span replay fills its slot");
                for (pid, pg) in replay.external {
                    debug_assert!(pid < bottom, "span {span:?} leaked into the swept region");
                    accumulate(&mut grads[pid], pg);
                }
                for (id, g) in replay.leaves {
                    grads[id] = Some(g);
                }
            }
        }

        // Phase 4: finish the tape below the lowest span serially.
        {
            let _glue = adept_telemetry::span_volatile("backward/glue_sweep");
            replay_serial_range(nodes, &mut grads, 0, bottom);
        }
        Gradients { grads }
    }

    /// The spliced spans [`Graph::backward_parallel`] may replay off the
    /// main thread for a backward pass from `loss_id`, in ascending tape
    /// order. Returns an empty vector (serial fallback) when concurrent
    /// replay could reorder even one accumulation:
    ///
    /// * spans recording nodes past the loss are out of replay range and
    ///   demote to glue;
    /// * a span whose imports reach **at or above** the lowest span start
    ///   (e.g. the legacy interleaved walk, where layer `i+1`'s parameter
    ///   leaves sit between spans) is demoted to glue — its targets are
    ///   processed mid-sweep, where a deferred merge could not preserve
    ///   the serial accumulation order;
    /// * if any glue node between the spans feeds a gradient into a
    ///   remaining span's import targets, the whole pass falls back to
    ///   serial — merge order and sweep order would interleave.
    fn replayable_spans(&self, loss_id: usize) -> Vec<SpliceSpan> {
        let spans = self.spans.borrow();
        let mut candidates: Vec<SpliceSpan> = spans
            .iter()
            .filter(|s| s.end > s.start && s.end <= loss_id + 1)
            .cloned()
            .collect();
        if candidates.is_empty() {
            return candidates;
        }
        // The first span's imports precede it by construction, so `bottom`
        // is stable under the retain below.
        let bottom = candidates[0].start;
        candidates.retain(|s| s.imports.iter().all(|&t| t < bottom));
        let union: std::collections::HashSet<usize> = candidates
            .iter()
            .flat_map(|s| s.imports.iter().copied())
            .collect();
        let top = candidates.last().expect("non-empty").end;
        // Glue-safety scan: no node processed mid-sweep may touch a span
        // import target, or the deferred merge would reorder accumulation.
        let nodes = self.nodes.borrow();
        let mut span_iter = candidates.iter();
        let mut current = span_iter.next();
        let mut id = bottom;
        while id < top {
            if let Some(span) = current {
                if id >= span.start {
                    id = span.end;
                    current = span_iter.next();
                    continue;
                }
            }
            if nodes[id].parents.iter().any(|p| union.contains(p)) {
                return Vec::new();
            }
            id += 1;
        }
        candidates
    }
}

/// Creates the gradient buffer for a backward pass from `loss`, seeded with
/// `dL/dL = 1`.
///
/// # Panics
///
/// Panics if `loss` is not a single-element tensor or belongs to another
/// graph.
fn seed_grads(nodes: &[Node], graph: &Graph, loss: Var<'_>) -> Vec<Option<Tensor>> {
    assert!(std::ptr::eq(loss.graph, graph), "loss from another graph");
    assert_eq!(
        nodes[loss.id].value.len(),
        1,
        "backward() requires a scalar loss, got shape {:?}",
        nodes[loss.id].value.shape()
    );
    let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
    let mut seed = Tensor::zeros(nodes[loss.id].value.shape());
    seed.as_mut_slice()[0] = 1.0;
    grads[loss.id] = Some(seed);
    grads
}

/// Applies one parent contribution exactly the way the serial loop does:
/// the first contribution moves in, later ones accumulate via `axpy`.
/// Every code path of the backward machinery funnels through this single
/// function, so serial and parallel replay cannot diverge bitwise.
fn accumulate(slot: &mut Option<Tensor>, pg: Tensor) {
    match slot {
        Some(acc) => acc.axpy(1.0, &pg),
        slot => *slot = Some(pg),
    }
}

/// Runs one node's backward hook and feeds every surviving parent
/// contribution (hook returned `Some`, parent requires grad, shape
/// checked) to `emit` in parent order.
fn distribute(nodes: &[Node], id: usize, grad: &Tensor, mut emit: impl FnMut(usize, Tensor)) {
    let node = &nodes[id];
    let backward = node.backward.as_ref().expect("distribute needs a hook");
    let parent_grads = backward(grad);
    assert_eq!(
        parent_grads.len(),
        node.parents.len(),
        "backward returned {} grads for {} parents",
        parent_grads.len(),
        node.parents.len()
    );
    for (pid, pg) in node.parents.iter().zip(parent_grads) {
        let Some(pg) = pg else { continue };
        if !nodes[*pid].requires_grad {
            continue;
        }
        assert_eq!(
            pg.shape(),
            nodes[*pid].value.shape(),
            "gradient shape mismatch for node {pid}"
        );
        emit(*pid, pg);
    }
}

/// The serial reverse loop over ids `[lo, hi)`, reading and writing the
/// full-tape gradient buffer. [`Graph::backward`] runs it over the whole
/// tape; [`Graph::backward_parallel`] runs it over the glue between spans.
fn replay_serial_range(nodes: &[Node], grads: &mut [Option<Tensor>], lo: usize, hi: usize) {
    for id in (lo..hi).rev() {
        let Some(grad) = grads[id].take() else {
            continue;
        };
        let node = &nodes[id];
        if !node.requires_grad {
            continue;
        }
        if node.backward.is_some() {
            distribute(nodes, id, &grad, |pid, pg| accumulate(&mut grads[pid], pg));
        } else if node.parents.is_empty() {
            // Leaf: keep its gradient for the caller.
            grads[id] = Some(grad);
        }
    }
}

/// Output of one span's off-thread backward replay.
#[derive(Default)]
struct SpanReplay {
    /// Contributions to import targets (`id < span.start`), in the exact
    /// order the serial walk would have emitted them.
    external: Vec<(usize, Tensor)>,
    /// Gradients of leaves recorded *inside* the segment (rare — a segment
    /// closure may create private leaves), written back verbatim.
    leaves: Vec<(usize, Tensor)>,
}

/// Replays the backward hooks of one span against a private gradient
/// buffer. Intra-span contributions accumulate locally (same slot, same
/// order as serial); contributions to imports are deferred for the
/// main-thread merge. Runs the identical per-node step as
/// [`replay_serial_range`].
fn replay_span(nodes: &[Node], span: &SpliceSpan, mut local: Vec<Option<Tensor>>) -> SpanReplay {
    let mut out = SpanReplay::default();
    for id in (span.start..span.end).rev() {
        let Some(grad) = local[id - span.start].take() else {
            continue;
        };
        let node = &nodes[id];
        if !node.requires_grad {
            continue;
        }
        if node.backward.is_some() {
            distribute(nodes, id, &grad, |pid, pg| {
                if pid >= span.start {
                    accumulate(&mut local[pid - span.start], pg);
                } else {
                    out.external.push((pid, pg));
                }
            });
        } else if node.parents.is_empty() {
            out.leaves.push((id, grad));
        }
    }
    out
}

/// A handle to one node in a [`Graph`].
///
/// `Var` is `Copy`; all operations allocate new nodes on the owning graph.
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("shape", &self.shape())
            .finish()
    }
}

impl<'g> Var<'g> {
    /// The graph this variable belongs to.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Node index within the tape (stable for the graph's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    /// A clone of the node's current value.
    pub fn value(&self) -> Tensor {
        self.graph.value_of(self.id)
    }

    /// The node's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.graph.shape_of(self.id)
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.graph.requires_grad_of(self.id)
    }

    /// Returns a non-differentiable copy of this node (stops gradients).
    pub fn detach(&self) -> Var<'g> {
        self.graph.constant(self.value())
    }

    pub(crate) fn assert_same_graph(&self, other: &Var<'g>) {
        assert!(
            std::ptr::eq(self.graph, other.graph),
            "variables belong to different graphs"
        );
    }
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if any flowed.
    pub fn grad(&self, v: Var<'_>) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }

    /// Removes and returns the gradient for `v`.
    pub fn take(&mut self, v: Var<'_>) -> Option<Tensor> {
        self.grads.get_mut(v.id).and_then(|g| g.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2]));
        let c = g.constant(Tensor::ones(&[2]));
        assert!(a.requires_grad());
        assert!(!c.requires_grad());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![3.0], &[1]));
        // y = x*x + x  => dy/dx = 2x + 1 = 7
        let y = x.mul(x).add(x).sum();
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let c = g.constant(Tensor::from_vec(vec![5.0], &[1]));
        let y = x.mul(c).sum();
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[5.0]);
        assert!(grads.grad(c).is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let y = x.detach().mul(x).sum(); // treated as c*x with c=2
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_rejected() {
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(&[3]));
        let _ = g.backward(x);
    }

    #[test]
    fn custom_op_round_trip() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let v = x.value().map(|t| t * 3.0);
        let y = g.custom(&[x], v, Box::new(|gout| vec![Some(gout.map(|t| t * 3.0))]));
        let loss = y.sum();
        let grads = g.backward(loss);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[3.0, 3.0]);
    }
}
