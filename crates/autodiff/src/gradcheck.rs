//! Finite-difference gradient verification.
//!
//! Every analytic gradient in the workspace is validated against central
//! differences through this harness. Higher crates reuse it for their custom
//! ops (batch-norm, pooling, photonic layers).

use crate::graph::{Graph, Var};
use adept_tensor::Tensor;
use std::fmt;

/// A gradient-check failure: where and by how much the analytic and numeric
/// gradients disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckError {
    /// Index of the offending input tensor.
    pub input: usize,
    /// Flat element offset within that input.
    pub element: usize,
    /// Analytic (backprop) derivative.
    pub analytic: f64,
    /// Central-difference estimate.
    pub numeric: f64,
}

impl fmt::Display for GradCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gradient mismatch at input {} element {}: analytic {} vs numeric {}",
            self.input, self.element, self.analytic, self.numeric
        )
    }
}

impl std::error::Error for GradCheckError {}

/// Checks analytic gradients of `f` against central finite differences.
///
/// `f` must be a pure function: given a graph and leaves (one per entry of
/// `inputs`), it returns a scalar loss variable. The check perturbs every
/// element of every input by `±eps` and compares `(f₊ − f₋)/2eps` with the
/// backpropagated gradient, using tolerance `tol` on
/// `|a − n| / max(1, |a|, |n|)`.
///
/// # Errors
///
/// Returns the first mismatch found.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar loss.
///
/// # Examples
///
/// ```
/// use adept_autodiff::{check_gradients, Graph};
/// use adept_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.3, -1.2], &[2]);
/// check_gradients(
///     |_, vars| vars[0].square().sin().sum(),
///     &[x],
///     1e-5,
///     1e-6,
/// )?;
/// # Ok::<(), adept_autodiff::GradCheckError>(())
/// ```
pub fn check_gradients<F>(f: F, inputs: &[Tensor], eps: f64, tol: f64) -> Result<(), GradCheckError>
where
    F: for<'g> Fn(&'g Graph, &[Var<'g>]) -> Var<'g>,
{
    // Analytic gradients.
    let graph = Graph::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|t| graph.leaf(t.clone())).collect();
    let loss = f(&graph, &vars);
    let grads = graph.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|v| {
            grads
                .grad(*v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(&v.shape()))
        })
        .collect();

    // Numeric gradients, one perturbed element at a time.
    for (i, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let eval = |delta: f64| -> f64 {
                let mut perturbed: Vec<Tensor> = inputs.to_vec();
                perturbed[i].as_mut_slice()[e] += delta;
                let g = Graph::new();
                let vs: Vec<Var<'_>> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
                f(&g, &vs).value().item()
            };
            let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
            let a = analytic[i].as_slice()[e];
            let denom = 1.0f64.max(a.abs()).max(numeric.abs());
            if (a - numeric).abs() / denom > tol {
                return Err(GradCheckError {
                    input: i,
                    element: e,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_matrix::assemble_blocks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(&mut rng, shape, -1.5, 1.5)
    }

    #[test]
    fn elementwise_unaries_pass() {
        let x = rand_t(&[6], 1).map(|v| v.abs() + 0.2); // keep ln/sqrt domains safe
        check_gradients(|_, v| v[0].ln().sum(), &[x.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(|_, v| v[0].sqrt().sum(), &[x.clone()], 1e-6, 1e-6).unwrap();
        let y = rand_t(&[6], 2);
        check_gradients(|_, v| v[0].exp().sum(), &[y.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(
            |_, v| v[0].sin().mul(v[0].cos()).sum(),
            &[y.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(|_, v| v[0].tanh().sum(), &[y.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(|_, v| v[0].sigmoid().sum(), &[y.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(|_, v| v[0].square().sum(), &[y.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(|_, v| v[0].powf(3.0).sum(), &[x], 1e-6, 1e-5).unwrap();
    }

    #[test]
    fn binary_ops_with_broadcast_pass() {
        let a = rand_t(&[3, 4], 3);
        let row = rand_t(&[4], 4).map(|v| v + 2.5); // safe divisor
        check_gradients(
            |_, v| v[0].add(v[1]).mul(v[0]).sum(),
            &[a.clone(), row.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(|_, v| v[0].div(v[1]).sum(), &[a.clone(), row], 1e-6, 1e-6).unwrap();
        let col = rand_t(&[3, 1], 5);
        check_gradients(|_, v| v[0].sub(v[1]).square().sum(), &[a, col], 1e-6, 1e-6).unwrap();
    }

    #[test]
    fn matrix_ops_pass() {
        let a = rand_t(&[3, 4], 6);
        let b = rand_t(&[4, 2], 7);
        check_gradients(
            |_, v| v[0].matmul(v[1]).square().sum(),
            &[a.clone(), b],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(
            |_, v| v[0].transpose().sum_axis(1).square().sum(),
            &[a.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(|_, v| v[0].crop2d(2, 3).mean(), &[a.clone()], 1e-6, 1e-6).unwrap();
        check_gradients(|_, v| v[0].pad2d(5, 6).square().sum(), &[a], 1e-6, 1e-6).unwrap();
    }

    #[test]
    fn scatter_gather_assemble_pass() {
        let v = rand_t(&[4], 8);
        check_gradients(
            |_, vars| vars[0].scatter(&[3, 3], &[0, 4, 8, 2]).square().sum(),
            &[v.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(
            |_, vars| vars[0].gather(&[3, 0, 0, 1]).square().sum(),
            &[v],
            1e-6,
            1e-6,
        )
        .unwrap();
        let b0 = rand_t(&[2, 2], 9);
        let b1 = rand_t(&[2, 2], 10);
        check_gradients(
            |_, vars| assemble_blocks(&[vars[0], vars[1]], 1, 2).square().sum(),
            &[b0, b1],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn softmax_family_passes() {
        let x = rand_t(&[3, 5], 11);
        check_gradients(
            |g, v| {
                let w = g.constant(rand_t(&[3, 5], 12));
                v[0].softmax_rows().mul(w).sum()
            },
            &[x.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(
            |g, v| {
                let w = g.constant(rand_t(&[3, 5], 13));
                v[0].log_softmax_rows().mul(w).sum()
            },
            &[x.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(
            |_, v| v[0].cross_entropy_logits(&[1, 0, 4]),
            &[x],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn view_based_ops_pass() {
        // slice2d: interior block, so the gradient scatter is offset on
        // both axes.
        let a = rand_t(&[4, 5], 20);
        check_gradients(
            |_, v| v[0].slice2d(1, 2, 2, 3).square().sum(),
            &[a.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        // Transpose of a slice: the downstream op sees a value that was
        // materialized from a non-contiguous view.
        check_gradients(
            |_, v| v[0].slice2d(0, 1, 3, 3).transpose().square().sum(),
            &[a.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        // Chain: slice → matmul with a transposed slice of the same leaf.
        check_gradients(
            |_, v| {
                let left = v[0].slice2d(0, 0, 3, 4);
                let right = v[0].slice2d(1, 1, 3, 4).transpose();
                left.matmul(right.transpose().transpose()).square().sum()
            },
            &[a],
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn batched_matmul_passes() {
        let a = rand_t(&[3, 2, 4], 21);
        let b = rand_t(&[3, 4, 2], 22);
        check_gradients(
            |_, v| v[0].batched_matmul(v[1]).square().sum(),
            &[a.clone(), b.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        // Through stack + assemble, mirroring the PTC tile pipeline.
        let t0 = rand_t(&[2, 2], 23);
        let t1 = rand_t(&[2, 2], 24);
        let r0 = rand_t(&[2, 2], 25);
        let r1 = rand_t(&[2, 2], 26);
        check_gradients(
            |_, v| {
                let lhs = crate::ops_matrix::stack(&[v[0], v[1]]);
                let rhs = crate::ops_matrix::stack(&[v[2], v[3]]);
                let prod = lhs.batched_matmul(rhs);
                crate::ops_matrix::assemble_tiles(prod, 1, 2).square().sum()
            },
            &[t0, t1, r0, r1],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn deep_composition_passes() {
        // A miniature "network": affine → relu → affine → CE.
        let x = rand_t(&[4, 3], 14);
        let w1 = rand_t(&[3, 6], 15);
        let w2 = rand_t(&[6, 2], 16);
        check_gradients(
            |_, v| {
                v[0].matmul(v[1])
                    .relu()
                    .matmul(v[2])
                    .cross_entropy_logits(&[0, 1, 1, 0])
            },
            &[x, w1, w2],
            1e-6,
            2e-6,
        )
        .unwrap();
    }

    #[test]
    fn reports_wrong_gradient() {
        // A deliberately wrong custom gradient must be caught.
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let err = check_gradients(
            |_, v| v[0].map_custom(|t| t * t, |_t, g| g).sum(), // claims d/dx = 1
            &[x],
            1e-6,
            1e-6,
        )
        .unwrap_err();
        assert_eq!(err.input, 0);
        assert!(err.to_string().contains("gradient mismatch"));
    }
}
