//! Batched differentiable operations for the PTC unitary builder.
//!
//! The per-tile `tile_unitary` construction records one chain of tape nodes
//! per tile per mesh block — `O(T·B)` nodes for a `T`-tile layer. The ops
//! here carry the *whole* `[T, K, K]` stack of running products through each
//! mesh block in a handful of nodes, shrinking the tape to `O(B)`:
//!
//! * [`batched_phase_rotate`] — the programmable phase column `R(Φ)` of one
//!   block applied to every tile at once (two nodes: real/imaginary part);
//! * [`Var::matmul_bcast_left`] — one shared `[K, K]` factor (constant
//!   coupler column, relaxed permutation, …) against the whole stack in a
//!   single strided GEMM sweep;
//! * [`batched_permute_rows`] — crossing networks as row gathers instead of
//!   permutation-matrix GEMMs;
//! * [`Var::index_axis1`] — one block's `[T, K]` phase column out of the
//!   stacked `[T, B, K]` phase tensor;
//! * [`batched_tile_product_grid`] — the fused `Re(UΣ·V)` tile product that
//!   writes every (possibly cropped) tile straight into its grid position
//!   through one ragged [`adept_tensor::batched_matmul_ragged_into`] sweep.
//!
//! All backward passes run off stride-swapped descriptors or row-broadcast
//! adjoints — no operand is ever transposed or replicated in memory.

use crate::graph::Var;
use adept_tensor::{
    batched_matmul_ragged_into, batched_row_combine, batched_row_dot, batched_row_scale, GemmSpec,
    Tensor, Tile,
};

/// Applies one mesh block's phase rotation `R(Φ)` to a whole `[T, K, K]`
/// stack of running complex products:
///
/// `out_re = cosΦ ⊙ m_re + sinΦ ⊙ m_im`,
/// `out_im = cosΦ ⊙ m_im − sinΦ ⊙ m_re`,
///
/// where `phi` is `[T, K]` (one phase column per tile) and the `⊙` broadcast
/// scales row `i` of every tile by its phase coefficient. Two tape nodes
/// regardless of `T`; values are bit-identical to the per-tile
/// `cos/sin/mul/add` chain.
///
/// # Panics
///
/// Panics on shape mismatch or cross-graph operands.
pub fn batched_phase_rotate<'g>(phi: Var<'g>, m_re: Var<'g>, m_im: Var<'g>) -> (Var<'g>, Var<'g>) {
    phi.assert_same_graph(&m_re);
    phi.assert_same_graph(&m_im);
    let pv = phi.value();
    let re_v = m_re.value();
    let im_v = m_im.value();
    assert_eq!(re_v.shape(), im_v.shape(), "re/im stacks must agree");
    assert_eq!(
        pv.shape(),
        &re_v.shape()[..2],
        "phases must be [T, K] for a [T, K, K] stack"
    );
    let cos = pv.map(f64::cos);
    let sin = pv.map(f64::sin);
    let phi_req = phi.requires_grad();
    let m_req = m_re.requires_grad() || m_im.requires_grad();
    let out_re = batched_row_combine(&cos, &sin, &re_v, &im_v);
    // out_im = cosΦ ⊙ m_im + (−sinΦ) ⊙ m_re ≡ cosΦ ⊙ m_im − sinΦ ⊙ m_re.
    let neg_sin = sin.map(|x| -x);
    let out_im = batched_row_combine(&cos, &neg_sin, &im_v, &re_v);
    let re_node = {
        let (cos, sin) = (cos.clone(), sin.clone());
        let (re_v, im_v) = (re_v.clone(), im_v.clone());
        phi.graph.custom(
            &[phi, m_re, m_im],
            out_re,
            Box::new(move |g| {
                let d_phi = phi_req.then(|| {
                    // d/dφ (cosφ·re + sinφ·im) = −sinφ·re + cosφ·im.
                    let dot_re = batched_row_dot(g, &re_v);
                    let dot_im = batched_row_dot(g, &im_v);
                    &(&cos * &dot_im) - &(&sin * &dot_re)
                });
                let d_re = m_req.then(|| batched_row_scale(&cos, g, 1.0));
                let d_im = m_req.then(|| batched_row_scale(&sin, g, 1.0));
                vec![d_phi, d_re, d_im]
            }),
        )
    };
    let im_node = phi.graph.custom(
        &[phi, m_re, m_im],
        out_im,
        Box::new(move |g| {
            let d_phi = phi_req.then(|| {
                // d/dφ (cosφ·im − sinφ·re) = −sinφ·im − cosφ·re.
                let dot_re = batched_row_dot(g, &re_v);
                let dot_im = batched_row_dot(g, &im_v);
                -&(&(&sin * &dot_im) + &(&cos * &dot_re))
            });
            let d_re = m_req.then(|| batched_row_scale(&sin, g, -1.0));
            let d_im = m_req.then(|| batched_row_scale(&cos, g, 1.0));
            vec![d_phi, d_re, d_im]
        }),
    );
    (re_node, im_node)
}

/// Permutes the rows of every batch item: `out[t, i, :] = m[t, src[i], :]`.
///
/// The permutation-as-gather fast path for crossing networks: left-
/// multiplying by a permutation matrix `P` (`P[i, σ(i)] = 1`, so
/// `(P·M)[i, :] = M[σ(i), :]`) becomes row-slab copies — exact, and `K²`
/// multiply-adds per row cheaper than the GEMM it replaces. The backward
/// pass gathers with the inverse permutation.
///
/// # Panics
///
/// Panics unless `src` is a permutation of `0..K` matching the stack.
pub fn batched_permute_rows<'g>(m: Var<'g>, src: &[usize]) -> Var<'g> {
    let v = m.value();
    assert_eq!(
        v.rank(),
        3,
        "batched_permute_rows expects a [T, K, K] stack"
    );
    let rows = v.shape()[1];
    assert_eq!(src.len(), rows, "need one source row per output row");
    let mut inv = vec![usize::MAX; rows];
    for (i, &s) in src.iter().enumerate() {
        assert!(s < rows, "source row {s} out of bounds");
        assert!(inv[s] == usize::MAX, "duplicate source row {s}");
        inv[s] = i;
    }
    let out = v.batched_permute_rows(src);
    m.graph().custom(
        &[m],
        out,
        Box::new(move |g| vec![Some(g.batched_permute_rows(&inv))]),
    )
}

impl<'g> Var<'g> {
    /// Shared-left batched matmul: `out[t] = self · rhs[t]` with one
    /// `[m, k]` left factor broadcast over a `[T, k, n]` stack.
    ///
    /// Forward is one [`adept_tensor::batched_matmul_into`] sweep whose
    /// per-item left descriptors all point at the same matrix. Backward:
    /// the stack gradient is another broadcast sweep off the *transposed*
    /// left factor (a stride swap), and the shared factor's gradient sums
    /// the per-item products without materializing any transpose.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch or cross-graph operands.
    pub fn matmul_bcast_left(self, rhs: Var<'g>) -> Var<'g> {
        self.assert_same_graph(&rhs);
        let a = self.value();
        let b = rhs.value();
        let out = a.matmul_bcast_left(&b, false);
        let a_req = self.requires_grad();
        let b_req = rhs.requires_grad();
        self.graph.custom(
            &[self, rhs],
            out,
            Box::new(move |g| {
                let ga = a_req.then(|| g.matmul_sum_nt(&b));
                let gb = b_req.then(|| a.matmul_bcast_left(g, true));
                vec![ga, gb]
            }),
        )
    }

    /// Extracts index `idx` of the middle axis: `[T, B, K] → [T, K]`.
    ///
    /// This is how the batched unitary builder peels one mesh block's phase
    /// column off the stacked `[T, B, K]` phase tensor — one node per
    /// block, independent of the tile count. The backward pass scatters the
    /// gradient slab back into a zero tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 3 and `idx` is in bounds.
    pub fn index_axis1(self, idx: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 3, "index_axis1 expects a rank-3 value");
        let (t, b, k) = (v.shape()[0], v.shape()[1], v.shape()[2]);
        assert!(idx < b, "index {idx} out of bounds for middle axis of {b}");
        let mut out = Tensor::zeros(&[t, k]);
        {
            let src = v.as_slice();
            let dst = out.as_mut_slice();
            for ti in 0..t {
                let s = (ti * b + idx) * k;
                dst[ti * k..(ti + 1) * k].copy_from_slice(&src[s..s + k]);
            }
        }
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut full = Tensor::zeros(&[t, b, k]);
                let dst = full.as_mut_slice();
                let src = g.as_slice();
                for ti in 0..t {
                    let d = (ti * b + idx) * k;
                    dst[d..d + k].copy_from_slice(&src[ti * k..(ti + 1) * k]);
                }
                vec![Some(full)]
            }),
        )
    }
}

/// Grid placement of one tile's (possibly cropped) GEMM jobs.
fn grid_specs(
    t_tiles: usize,
    k: usize,
    grid_cols: usize,
    out_rows: usize,
    out_cols: usize,
    make: impl Fn(usize, usize, usize, usize, usize) -> GemmSpec,
) -> Vec<GemmSpec> {
    (0..t_tiles)
        .map(|t| {
            let (gr, gc) = (t / grid_cols, t % grid_cols);
            let m_t = k.min(out_rows - gr * k);
            let n_t = k.min(out_cols - gc * k);
            make(t, gr, gc, m_t, n_t)
        })
        .collect()
}

/// The batched PTC tile product over stacked factors, fused with grid
/// assembly and edge-tile cropping:
///
/// `out[gr·K.., gc·K..] = (us_re[t]·v_re[t] − us_im[t]·v_im[t])[..m_t, ..n_t]`
///
/// for tile `t` at grid position `(gr, gc)`, where `m_t`/`n_t` shrink below
/// `K` on the bottom/right edges of a non-multiple-of-K `out_rows ×
/// out_cols` weight. One tape node; forward and all four backward gradients
/// are single ragged [`batched_matmul_ragged_into`] sweeps whose cropped
/// edge jobs run alongside the full interior tiles — no per-tile GEMM
/// fallback and no pad-then-crop round trip. Values on surviving entries
/// are bit-identical to the uncropped product.
///
/// # Panics
///
/// Panics unless all four stacks are `[T, K, K]` with
/// `T = grid_rows·grid_cols` and the output extents fit the grid.
pub fn batched_tile_product_grid<'g>(
    us_re: Var<'g>,
    us_im: Var<'g>,
    v_re: Var<'g>,
    v_im: Var<'g>,
    grid_rows: usize,
    grid_cols: usize,
    out_rows: usize,
    out_cols: usize,
) -> Var<'g> {
    us_re.assert_same_graph(&us_im);
    us_re.assert_same_graph(&v_re);
    us_re.assert_same_graph(&v_im);
    let ur = us_re.value();
    let ui = us_im.value();
    let vr = v_re.value();
    let vi = v_im.value();
    assert_eq!(ur.rank(), 3, "factor stacks must be [T, K, K]");
    let (t_tiles, k) = (ur.shape()[0], ur.shape()[1]);
    for (name, f) in [("us_im", &ui), ("v_re", &vr), ("v_im", &vi)] {
        assert_eq!(f.shape(), &[t_tiles, k, k], "{name} stack shape mismatch");
    }
    assert_eq!(t_tiles, grid_rows * grid_cols, "tile count mismatch");
    assert!(
        out_rows <= grid_rows * k && out_rows > (grid_rows - 1) * k,
        "out_rows {out_rows} does not fit a {grid_rows}-row grid of K={k}"
    );
    assert!(
        out_cols <= grid_cols * k && out_cols > (grid_cols - 1) * k,
        "out_cols {out_cols} does not fit a {grid_cols}-col grid of K={k}"
    );
    let tile_slab = move |t: usize| Tile::contiguous(t * k * k, k);
    let tile_slab_t = move |t: usize| Tile {
        offset: t * k * k,
        row_stride: 1,
        col_stride: k,
    };
    let grid_tile = move |gr: usize, gc: usize| Tile {
        offset: gr * k * out_cols + gc * k,
        row_stride: out_cols,
        col_stride: 1,
    };
    // Forward: each tile's cropped product lands straight in its grid cell.
    let fwd = grid_specs(
        t_tiles,
        k,
        grid_cols,
        out_rows,
        out_cols,
        |t, gr, gc, m, n| GemmSpec::new(tile_slab(t), tile_slab(t), grid_tile(gr, gc), m, k, n),
    );
    let mut out = Tensor::zeros(&[out_rows, out_cols]);
    let mut im_grid = Tensor::zeros(&[out_rows, out_cols]);
    // SAFETY: grid cells are pairwise disjoint blocks of the output.
    unsafe {
        batched_matmul_ragged_into(
            ur.as_slice(),
            vr.as_slice(),
            out.as_mut_slice(),
            &fwd,
            1.0,
            false,
        );
        batched_matmul_ragged_into(
            ui.as_slice(),
            vi.as_slice(),
            im_grid.as_mut_slice(),
            &fwd,
            1.0,
            false,
        );
    }
    // Re(UΣ·V) = re − im; `x + (−1)·y` is IEEE-exact subtraction, keeping
    // bit-equivalence with the separate-products reference path.
    out.axpy(-1.0, &im_grid);
    let reqs: Vec<bool> = [us_re, us_im, v_re, v_im]
        .iter()
        .map(Var::requires_grad)
        .collect();
    us_re.graph().custom(
        &[us_re, us_im, v_re, v_im],
        out,
        Box::new(move |g| {
            let gs = g.as_slice();
            let mut grads: Vec<Option<Tensor>> = vec![None; 4];
            // d us_re[t] = g_t · v_re[t][:, :n]ᵀ  (and −v_im for us_im):
            // m×n gradient tile times the stride-swapped right factor.
            for (slot, factor, alpha) in [(0usize, &vr, 1.0), (1, &vi, -1.0)] {
                if !reqs[slot] {
                    continue;
                }
                let specs = grid_specs(
                    t_tiles,
                    k,
                    grid_cols,
                    out_rows,
                    out_cols,
                    |t, gr, gc, m, n| {
                        GemmSpec::new(grid_tile(gr, gc), tile_slab_t(t), tile_slab(t), m, n, k)
                    },
                );
                let mut d = Tensor::zeros(&[t_tiles, k, k]);
                // SAFETY: per-tile output slabs are disjoint.
                unsafe {
                    batched_matmul_ragged_into(
                        gs,
                        factor.as_slice(),
                        d.as_mut_slice(),
                        &specs,
                        alpha,
                        false,
                    );
                }
                grads[slot] = Some(d);
            }
            // d v_re[t] = us_re[t][:m, :]ᵀ · g_t  (and −us_im for v_im).
            for (slot, factor, alpha) in [(2usize, &ur, 1.0), (3, &ui, -1.0)] {
                if !reqs[slot] {
                    continue;
                }
                let specs = grid_specs(
                    t_tiles,
                    k,
                    grid_cols,
                    out_rows,
                    out_cols,
                    |t, gr, gc, m, n| {
                        GemmSpec::new(tile_slab_t(t), grid_tile(gr, gc), tile_slab(t), k, m, n)
                    },
                );
                let mut d = Tensor::zeros(&[t_tiles, k, k]);
                // SAFETY: per-tile output slabs are disjoint.
                unsafe {
                    batched_matmul_ragged_into(
                        factor.as_slice(),
                        gs,
                        d.as_mut_slice(),
                        &specs,
                        alpha,
                        false,
                    );
                }
                grads[slot] = Some(d);
            }
            grads
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::graph::Graph;
    use crate::ops_matrix::{batched_tile_product, stack};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(&mut rng, shape, -1.2, 1.2)
    }

    #[test]
    fn phase_rotate_matches_per_tile_chain_bitwise() {
        let (t, k) = (3, 4);
        let phi = rand_t(&[t, k], 1);
        let mre = rand_t(&[t, k, k], 2);
        let mim = rand_t(&[t, k, k], 3);
        let g = Graph::new();
        let (re, im) = batched_phase_rotate(
            g.leaf(phi.clone()),
            g.leaf(mre.clone()),
            g.leaf(mim.clone()),
        );
        for ti in 0..t {
            let g2 = Graph::new();
            let p = g2.constant(phi.subtensor(ti).reshape(&[k, 1]));
            let (c, s) = (p.cos(), p.sin());
            let a = g2.constant(mre.subtensor(ti));
            let b = g2.constant(mim.subtensor(ti));
            let want_re = c.mul(a).add(s.mul(b)).value();
            let want_im = c.mul(b).sub(s.mul(a)).value();
            assert_eq!(re.value().subtensor(ti).as_slice(), want_re.as_slice());
            assert_eq!(im.value().subtensor(ti).as_slice(), want_im.as_slice());
        }
    }

    #[test]
    fn phase_rotate_gradcheck() {
        let phi = rand_t(&[2, 3], 4);
        let mre = rand_t(&[2, 3, 3], 5);
        let mim = rand_t(&[2, 3, 3], 6);
        check_gradients(
            |_, v| {
                let (re, im) = batched_phase_rotate(v[0], v[1], v[2]);
                re.square().sum().add(im.mul(re).sum())
            },
            &[phi, mre, mim],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn bcast_left_matmul_gradcheck() {
        let a = rand_t(&[3, 4], 7);
        let b = rand_t(&[2, 4, 3], 8);
        check_gradients(
            |_, v| v[0].matmul_bcast_left(v[1]).square().sum(),
            &[a, b],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn permute_rows_round_trip_and_gradcheck() {
        let m = rand_t(&[2, 4, 3], 9);
        let src = [3usize, 1, 0, 2];
        let g = Graph::new();
        let node = batched_permute_rows(g.leaf(m.clone()), &src);
        for ti in 0..2 {
            for i in 0..4 {
                assert_eq!(
                    node.value().subtensor(ti).row(i).as_slice(),
                    m.subtensor(ti).row(src[i]).as_slice()
                );
            }
        }
        check_gradients(
            |gr, v| {
                let w = gr.constant(rand_t(&[2, 4, 3], 10));
                batched_permute_rows(v[0], &src).mul(w).sum()
            },
            &[m],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn index_axis1_selects_and_gradchecks() {
        let p = rand_t(&[3, 4, 2], 11);
        let g = Graph::new();
        let v = g.leaf(p.clone());
        let got = v.index_axis1(2);
        assert_eq!(got.shape(), vec![3, 2]);
        for t in 0..3 {
            assert_eq!(
                got.value().row(t).as_slice(),
                p.subtensor(t).row(2).as_slice()
            );
        }
        check_gradients(|_, v| v[0].index_axis1(1).square().sum(), &[p], 1e-6, 1e-6).unwrap();
    }

    #[test]
    fn tile_product_grid_matches_stacked_reference_bitwise() {
        // Full grid (no cropping) must agree with the stack/batched_matmul/
        // assemble reference path bit for bit.
        let (gr, gc, k) = (2, 3, 4);
        let t = gr * gc;
        let stacks: Vec<Tensor> = (0..4).map(|i| rand_t(&[t, k, k], 20 + i)).collect();
        let g = Graph::new();
        let vars: Vec<Var> = stacks.iter().map(|s| g.leaf(s.clone())).collect();
        let got =
            batched_tile_product_grid(vars[0], vars[1], vars[2], vars[3], gr, gc, gr * k, gc * k);
        let tiles: Vec<Vec<Var>> = stacks
            .iter()
            .map(|s| (0..t).map(|i| g.constant(s.subtensor(i))).collect())
            .collect();
        let want = batched_tile_product(&tiles[0], &tiles[1], &tiles[2], &tiles[3], gr, gc);
        assert_eq!(got.value().as_slice(), want.value().as_slice());
    }

    #[test]
    fn tile_product_grid_crops_edge_tiles() {
        // 5×7 output on a 2×2 grid of K=4: bottom/right tiles are ragged.
        let (gr, gc, k) = (2, 2, 4);
        let t = gr * gc;
        let stacks: Vec<Tensor> = (0..4).map(|i| rand_t(&[t, k, k], 30 + i)).collect();
        let g = Graph::new();
        let vars: Vec<Var> = stacks.iter().map(|s| g.leaf(s.clone())).collect();
        let got = batched_tile_product_grid(vars[0], vars[1], vars[2], vars[3], gr, gc, 5, 7);
        assert_eq!(got.shape(), vec![5, 7]);
        // Reference: full products, assembled, then cropped.
        let full = {
            let re = stack(
                &(0..t)
                    .map(|i| g.constant(stacks[0].subtensor(i)))
                    .collect::<Vec<_>>(),
            )
            .batched_matmul(stack(
                &(0..t)
                    .map(|i| g.constant(stacks[2].subtensor(i)))
                    .collect::<Vec<_>>(),
            ));
            let im = stack(
                &(0..t)
                    .map(|i| g.constant(stacks[1].subtensor(i)))
                    .collect::<Vec<_>>(),
            )
            .batched_matmul(stack(
                &(0..t)
                    .map(|i| g.constant(stacks[3].subtensor(i)))
                    .collect::<Vec<_>>(),
            ));
            crate::ops_matrix::assemble_tiles(re.sub(im), gr, gc).crop2d(5, 7)
        };
        assert_eq!(got.value().as_slice(), full.value().as_slice());
    }

    #[test]
    fn tile_product_grid_gradcheck_with_cropping() {
        let (gr, gc, k) = (2, 2, 3);
        let t = gr * gc;
        let stacks: Vec<Tensor> = (0..4).map(|i| rand_t(&[t, k, k], 40 + i)).collect();
        check_gradients(
            |_, v| {
                batched_tile_product_grid(v[0], v[1], v[2], v[3], gr, gc, 5, 4)
                    .square()
                    .sum()
            },
            &stacks,
            1e-6,
            1e-6,
        )
        .unwrap();
    }
}
