//! Reverse-mode automatic differentiation for the ADEPT reproduction.
//!
//! The original ADEPT implementation relies on PyTorch autograd. The Rust
//! ecosystem has no mature equivalent for architecture search, so this crate
//! implements a define-by-run tape from scratch:
//!
//! * a [`Graph`] records operations as they execute;
//! * [`Var`] is a lightweight handle into the tape with operator methods
//!   (`add`, `matmul`, `softmax_rows`, …);
//! * [`Graph::backward`] runs reverse-mode accumulation and returns
//!   [`Gradients`] for every leaf;
//! * [`Graph::backward_parallel`] replays the spliced gradient subtrees
//!   (the per-weight build segments) concurrently on the shared thread
//!   pool, with every cross-segment accumulation applied on the calling
//!   thread in fixed splice order — **bit-identical** to the serial replay
//!   at every thread count (the accumulation-order invariant pinned by the
//!   root `parallel_backward` suite);
//! * [`Graph::custom`] is the escape hatch used by higher layers for
//!   hand-derived gradients (batch-norm, pooling, straight-through
//!   estimators);
//! * [`record_segment`]/[`Graph::splice`] detach a stretch of tape onto a
//!   private sub-tape — buildable on a worker thread — and splice it back
//!   so node ids, values and gradients are bit-identical to direct serial
//!   recording (the substrate of the parallel weight-build scheduler in
//!   `adept-nn`; see [`subtape`'s module docs](crate::record_segment) for
//!   the splice invariant);
//! * [`check_gradients`] verifies analytic gradients against central finite
//!   differences — every op in this crate is covered by such a test.
//!
//! Complex-valued photonic math is expressed as pairs of real variables by
//! the `adept-photonics` and `adept` crates, so this tape only ever sees real
//! tensors.
//!
//! # Examples
//!
//! ```
//! use adept_autodiff::Graph;
//! use adept_tensor::Tensor;
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
//! let y = x.square().add_scalar(1.0).sum(); // y = x^2 + 1
//! let grads = g.backward(y);
//! assert_eq!(grads.grad(x).unwrap().as_slice(), &[4.0]);
//! ```

mod gradcheck;
mod graph;
mod ops_batched;
mod ops_elementwise;
mod ops_matrix;
mod ops_nn;
mod subtape;

pub use gradcheck::{check_gradients, GradCheckError};
pub use graph::{BackwardFn, Gradients, Graph, Var};
pub use ops_batched::{batched_permute_rows, batched_phase_rotate, batched_tile_product_grid};
pub use ops_matrix::{assemble_blocks, assemble_tiles, batched_tile_product, stack};
pub use subtape::{record_segment, record_segment_pair, ImportSpec, TapeSegment};

/// Convenience re-export so downstream crates need only one `use`.
pub use adept_tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let y = x.square().add_scalar(1.0).sum();
        assert_eq!(y.value().item(), 5.0);
        let grads = g.backward(y);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[4.0]);
    }
}
