//! Elementwise differentiable operations.

use crate::graph::Var;
use adept_tensor::Tensor;

/// Reduces `grad` (shaped like the broadcast output) back to `target`'s
/// shape by summing over broadcast dimensions.
pub(crate) fn reduce_grad_to(grad: &Tensor, target: &[usize]) -> Tensor {
    if grad.shape() == target {
        return grad.clone();
    }
    let gdims = grad.shape().to_vec();
    let rank = gdims.len();
    let mut tdims = vec![1usize; rank];
    tdims[rank - target.len()..].copy_from_slice(target);
    // Walk the output and accumulate into the (strided) target index.
    let gstrides = grad.shape_obj().strides();
    let tshape = adept_tensor::Shape::new(&tdims);
    let tstrides = tshape.strides();
    let mut out = Tensor::zeros(&tdims);
    let dst = out.as_mut_slice();
    let src = grad.as_slice();
    for (flat, &g) in src.iter().enumerate() {
        let mut toff = 0;
        for d in 0..rank {
            let i = (flat / gstrides[d]) % gdims[d];
            if tdims[d] != 1 {
                toff += i * tstrides[d];
            }
        }
        dst[toff] += g;
    }
    out.reshape(target)
}

macro_rules! binary_op {
    ($(#[$meta:meta])* $name:ident, |$a:ident, $b:ident| $fwd:expr,
     |$ga:ident, $av:ident, $bv:ident| $grad_a:expr,
     |$gb:ident, $av2:ident, $bv2:ident| $grad_b:expr) => {
        $(#[$meta])*
        pub fn $name(self, rhs: Var<'g>) -> Var<'g> {
            self.assert_same_graph(&rhs);
            let av = self.value();
            let bv = rhs.value();
            let out = av.zip_broadcast(&bv, |$a, $b| $fwd);
            let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
            self.graph.custom(
                &[self, rhs],
                out,
                Box::new(move |gout| {
                    let ga = {
                        let $ga = gout;
                        let $av = &av;
                        let $bv = &bv;
                        $grad_a
                    };
                    let gb = {
                        let $gb = gout;
                        let $av2 = &av;
                        let $bv2 = &bv;
                        $grad_b
                    };
                    vec![
                        Some(reduce_grad_to(&ga, &ash)),
                        Some(reduce_grad_to(&gb, &bsh)),
                    ]
                }),
            )
        }
    };
}

macro_rules! unary_op {
    ($(#[$meta:meta])* $name:ident, |$x:ident| $fwd:expr, |$g:ident, $xv:ident, $yv:ident| $grad:expr) => {
        $(#[$meta])*
        pub fn $name(self) -> Var<'g> {
            let xv = self.value();
            let yv = xv.map(|$x| $fwd);
            let yv_saved = yv.clone();
            self.graph.custom(
                &[self],
                yv,
                Box::new(move |gout| {
                    let $g = gout;
                    let $xv = &xv;
                    let $yv = &yv_saved;
                    vec![Some($grad)]
                }),
            )
        }
    };
}

impl<'g> Var<'g> {
    binary_op!(
        /// Elementwise (broadcasting) addition.
        add, |a, b| a + b,
        |g, _av, _bv| g.clone(),
        |g, _av, _bv| g.clone());
    binary_op!(
        /// Elementwise (broadcasting) subtraction.
        sub, |a, b| a - b,
        |g, _av, _bv| g.clone(),
        |g, _av, _bv| -g);
    binary_op!(
        /// Elementwise (broadcasting) multiplication.
        mul, |a, b| a * b,
        |g, _av, bv| g.zip_broadcast(bv, |x, y| x * y),
        |g, av, _bv| g.zip_broadcast(av, |x, y| x * y));
    binary_op!(
    /// Elementwise (broadcasting) division.
    div, |a, b| a / b,
    |g, _av, bv| g.zip_broadcast(bv, |x, y| x / y),
    |g, av, bv| {
        let num = g.zip_broadcast(av, |x, y| x * y);
        let den = bv.zip_broadcast(bv, |x, y| x * y);
        -&num.zip_broadcast(&den, |x, y| x / y)
    });

    unary_op!(
        /// Elementwise negation.
        neg, |x| -x, |g, _xv, _yv| -g);
    unary_op!(
        /// Elementwise absolute value (subgradient 0 at the origin).
        abs, |x| x.abs(), |g, xv, _yv| g.zip_broadcast(xv, |gi, x| gi * sign(x)));
    unary_op!(
        /// Elementwise exponential.
        exp, |x| x.exp(), |g, _xv, yv| g.zip_broadcast(yv, |gi, y| gi * y));
    unary_op!(
        /// Elementwise natural logarithm.
        ln, |x| x.ln(), |g, xv, _yv| g.zip_broadcast(xv, |gi, x| gi / x));
    unary_op!(
        /// Elementwise square root.
        sqrt, |x| x.sqrt(), |g, _xv, yv| g.zip_broadcast(yv, |gi, y| 0.5 * gi / y));
    unary_op!(
        /// Elementwise sine.
        sin, |x| x.sin(), |g, xv, _yv| g.zip_broadcast(xv, |gi, x| gi * x.cos()));
    unary_op!(
        /// Elementwise cosine.
        cos, |x| x.cos(), |g, xv, _yv| g.zip_broadcast(xv, |gi, x| -gi * x.sin()));
    unary_op!(
        /// Elementwise hyperbolic tangent.
        tanh, |x| x.tanh(), |g, _xv, yv| g.zip_broadcast(yv, |gi, y| gi * (1.0 - y * y)));
    unary_op!(
        /// Elementwise square.
        square, |x| x * x, |g, xv, _yv| g.zip_broadcast(xv, |gi, x| 2.0 * gi * x));
    unary_op!(
        /// Elementwise reciprocal.
        recip, |x| 1.0 / x, |g, xv, _yv| g.zip_broadcast(xv, |gi, x| -gi / (x * x)));
    unary_op!(
        /// Elementwise logistic sigmoid.
        sigmoid, |x| 1.0 / (1.0 + (-x).exp()),
        |g, _xv, yv| g.zip_broadcast(yv, |gi, y| gi * y * (1.0 - y)));
    unary_op!(
        /// Elementwise rectified linear unit.
        relu, |x| x.max(0.0),
        |g, xv, _yv| g.zip_broadcast(xv, |gi, x| if x > 0.0 { gi } else { 0.0 }));

    /// Adds a scalar constant.
    pub fn add_scalar(self, c: f64) -> Var<'g> {
        let out = self.value().map(|x| x + c);
        self.graph
            .custom(&[self], out, Box::new(move |g| vec![Some(g.clone())]))
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(self, c: f64) -> Var<'g> {
        let out = self.value().map(|x| x * c);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.map(|x| x * c))]),
        )
    }

    /// Raises every element to the constant power `p`.
    ///
    /// The input must be positive wherever `p` is non-integral.
    pub fn powf(self, p: f64) -> Var<'g> {
        let xv = self.value();
        let out = xv.map(|x| x.powf(p));
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.zip_broadcast(&xv, |gi, x| gi * p * x.powf(p - 1.0)))]),
        )
    }

    /// Elementwise maximum against a scalar (subgradient 0 on the flat side).
    pub fn max_scalar(self, c: f64) -> Var<'g> {
        let xv = self.value();
        let out = xv.map(|x| x.max(c));
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                vec![Some(
                    g.zip_broadcast(&xv, |gi, x| if x > c { gi } else { 0.0 }),
                )]
            }),
        )
    }

    /// Custom elementwise map with a user-supplied gradient.
    ///
    /// `grad(x, gout)` must return the downstream gradient contribution for
    /// input value `x` given upstream gradient `gout`. This is the primitive
    /// used for straight-through estimators (forward quantizes, backward is a
    /// clipped surrogate).
    pub fn map_custom(
        self,
        fwd: impl Fn(f64) -> f64 + 'static,
        grad: impl Fn(f64, f64) -> f64 + Send + Sync + 'static,
    ) -> Var<'g> {
        let xv = self.value();
        let out = xv.map(&fwd);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.zip_broadcast(&xv, |gi, x| grad(x, gi)))]),
        )
    }

    /// Linear interpolation with a constant mask: `mask⊙a + (1-mask)⊙b`
    /// where `a = self`. No gradient flows through the mask.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not broadcast-compatible.
    pub fn select_const(self, mask: &Tensor, other: Var<'g>) -> Var<'g> {
        self.assert_same_graph(&other);
        let g = self.graph;
        let m = g.constant(mask.clone());
        let one_minus = g.constant(mask.map(|x| 1.0 - x));
        self.mul(m).add(other.mul(one_minus))
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use adept_tensor::Tensor;

    fn t(v: &[f64]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn forward_values() {
        let g = Graph::new();
        let x = g.leaf(t(&[1.0, 4.0]));
        assert_eq!(x.sqrt().value().as_slice(), &[1.0, 2.0]);
        assert_eq!(x.square().value().as_slice(), &[1.0, 16.0]);
        assert_eq!(x.neg().value().as_slice(), &[-1.0, -4.0]);
        assert_eq!(x.add_scalar(1.0).value().as_slice(), &[2.0, 5.0]);
        assert_eq!(x.mul_scalar(3.0).value().as_slice(), &[3.0, 12.0]);
        assert_eq!(x.recip().value().as_slice(), &[1.0, 0.25]);
    }

    #[test]
    fn relu_gradient_masks() {
        let g = Graph::new();
        let x = g.leaf(t(&[-1.0, 2.0, 0.0]));
        let loss = x.relu().sum();
        let grads = g.backward(loss);
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn broadcast_add_reduces_gradient() {
        let g = Graph::new();
        let m = g.leaf(Tensor::ones(&[2, 3]));
        let row = g.leaf(Tensor::ones(&[3]));
        let loss = m.add(row).sum();
        let grads = g.backward(loss);
        assert_eq!(grads.grad(row).unwrap().as_slice(), &[2.0, 2.0, 2.0]);
        assert_eq!(grads.grad(m).unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn division_gradients() {
        let g = Graph::new();
        let a = g.leaf(t(&[6.0]));
        let b = g.leaf(t(&[3.0]));
        let loss = a.div(b).sum();
        let grads = g.backward(loss);
        assert!((grads.grad(a).unwrap().as_slice()[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((grads.grad(b).unwrap().as_slice()[0] + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn map_custom_ste() {
        // Forward rounds, backward passes through: the STE pattern.
        let g = Graph::new();
        let x = g.leaf(t(&[0.4, 0.6]));
        let y = x.map_custom(|v| v.round(), |_x, g| g);
        assert_eq!(y.value().as_slice(), &[0.0, 1.0]);
        let grads = g.backward(y.sum());
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn select_const_mixes() {
        let g = Graph::new();
        let a = g.leaf(t(&[1.0, 1.0]));
        let b = g.leaf(t(&[5.0, 5.0]));
        let mask = t(&[1.0, 0.0]);
        let y = a.select_const(&mask, b);
        assert_eq!(y.value().as_slice(), &[1.0, 5.0]);
        let grads = g.backward(y.sum());
        assert_eq!(grads.grad(a).unwrap().as_slice(), &[1.0, 0.0]);
        assert_eq!(grads.grad(b).unwrap().as_slice(), &[0.0, 1.0]);
    }
}
