//! Neural-network-flavoured differentiable ops: softmax families and the
//! cross-entropy loss used by every training loop in the workspace.

use crate::graph::Var;
use adept_tensor::Tensor;

/// Numerically stable row softmax of a matrix value.
fn softmax_matrix(v: &Tensor) -> Tensor {
    let (r, c) = (v.shape()[0], v.shape()[1]);
    let mut out = Tensor::zeros(&[r, c]);
    let dst = out.as_mut_slice();
    for i in 0..r {
        let row = &v.as_slice()[i * c..(i + 1) * c];
        let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for j in 0..c {
            let e = (row[j] - m).exp();
            dst[i * c + j] = e;
            denom += e;
        }
        for j in 0..c {
            dst[i * c + j] /= denom;
        }
    }
    out
}

impl<'g> Var<'g> {
    /// Row-wise softmax of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2.
    pub fn softmax_rows(self) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "softmax_rows expects a matrix");
        let y = softmax_matrix(&v);
        let y_saved = y.clone();
        self.graph.custom(
            &[self],
            y,
            Box::new(move |g| {
                let (r, c) = (y_saved.shape()[0], y_saved.shape()[1]);
                let mut out = Tensor::zeros(&[r, c]);
                for i in 0..r {
                    let yr = &y_saved.as_slice()[i * c..(i + 1) * c];
                    let gr = &g.as_slice()[i * c..(i + 1) * c];
                    let dot: f64 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    for j in 0..c {
                        out.as_mut_slice()[i * c + j] = yr[j] * (gr[j] - dot);
                    }
                }
                vec![Some(out)]
            }),
        )
    }

    /// Softmax over a rank-1 value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 1.
    pub fn softmax(self) -> Var<'g> {
        let n = {
            let v = self.value();
            assert_eq!(v.rank(), 1, "softmax expects a vector");
            v.len()
        };
        self.reshape(&[1, n]).softmax_rows().reshape(&[n])
    }

    /// Row-wise log-softmax of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2.
    pub fn log_softmax_rows(self) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "log_softmax_rows expects a matrix");
        let p = softmax_matrix(&v);
        let y = p.map(|x| x.max(1e-300).ln());
        self.graph.custom(
            &[self],
            y,
            Box::new(move |g| {
                let (r, c) = (p.shape()[0], p.shape()[1]);
                let mut out = Tensor::zeros(&[r, c]);
                for i in 0..r {
                    let pr = &p.as_slice()[i * c..(i + 1) * c];
                    let gr = &g.as_slice()[i * c..(i + 1) * c];
                    let gsum: f64 = gr.iter().sum();
                    for j in 0..c {
                        out.as_mut_slice()[i * c + j] = gr[j] - pr[j] * gsum;
                    }
                }
                vec![Some(out)]
            }),
        )
    }

    /// Mean cross-entropy between `self` (logits, `[N, C]`) and integer
    /// class `labels` (`len == N`), as a scalar node.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatches or out-of-range labels.
    pub fn cross_entropy_logits(self, labels: &[usize]) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "cross_entropy_logits expects [N, C] logits");
        let (n, c) = (v.shape()[0], v.shape()[1]);
        assert_eq!(labels.len(), n, "label count mismatch");
        assert!(
            labels.iter().all(|&l| l < c),
            "label out of range for {c} classes"
        );
        let p = softmax_matrix(&v);
        let mut loss = 0.0;
        for (i, &l) in labels.iter().enumerate() {
            loss -= p.as_slice()[i * c + l].max(1e-300).ln();
        }
        loss /= n as f64;
        let labels = labels.to_vec();
        self.graph.custom(
            &[self],
            Tensor::scalar(loss),
            Box::new(move |g| {
                let scale = g.item() / n as f64;
                let mut out = p.clone();
                for (i, &l) in labels.iter().enumerate() {
                    out.as_mut_slice()[i * c + l] -= 1.0;
                }
                out.scale_inplace(scale);
                vec![Some(out)]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use adept_tensor::Tensor;

    #[test]
    fn softmax_rows_sums_to_one() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0],
            &[2, 3],
        ));
        let y = x.softmax_rows().value();
        for i in 0..2 {
            let s: f64 = y.row(i).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Invariance under constant shifts.
        let x2 = g.leaf(Tensor::from_vec(
            vec![101.0, 102.0, 103.0, 99.0, 100.0, 101.0],
            &[2, 3],
        ));
        assert!(x2.softmax_rows().value().allclose(&y, 1e-12));
    }

    #[test]
    fn softmax_gradient_is_orthogonal_to_ones() {
        // For any upstream gradient, the softmax input-gradient rows must sum
        // to zero (softmax is invariant to constant shifts).
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.3, -0.7, 1.1], &[1, 3]));
        let w = g.constant(Tensor::from_vec(vec![2.0, -1.0, 0.5], &[1, 3]));
        let grads = g.backward(x.softmax_rows().mul(w).sum());
        let gx = grads.grad(x).unwrap();
        assert!(gx.sum().abs() < 1e-12);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.5, -0.5, 2.0, 0.1], &[2, 2]));
        let a = x.softmax_rows().value().map(f64::ln);
        let b = x.log_softmax_rows().value();
        assert!(a.allclose(&b, 1e-12));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0],
            &[2, 3],
        ));
        let loss = x.cross_entropy_logits(&[0, 1]);
        assert!(loss.value().item() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_shape_and_sign() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 3]));
        let loss = x.cross_entropy_logits(&[0, 2]);
        // Uniform logits: loss = ln(3).
        assert!((loss.value().item() - 3.0f64.ln()).abs() < 1e-12);
        let grads = g.backward(loss);
        let gx = grads.grad(x).unwrap();
        // Gradient at the true class is (p-1)/N < 0, others p/N > 0.
        assert!(gx.at(&[0, 0]) < 0.0 && gx.at(&[0, 1]) > 0.0);
        assert!(gx.at(&[1, 2]) < 0.0 && gx.at(&[1, 0]) > 0.0);
        assert!(gx.sum().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn cross_entropy_validates_labels() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[1, 3]));
        let _ = x.cross_entropy_logits(&[3]);
    }
}
