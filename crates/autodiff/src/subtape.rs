//! Detachable tape segments: record a stretch of the graph off-thread,
//! splice it back deterministically.
//!
//! A [`TapeSegment`] is a self-contained run of tape nodes recorded on a
//! *private* [`Graph`] — typically on a worker thread — whose references to
//! the enclosing tape go through **import proxies**: leaf/constant nodes
//! created from [`ImportSpec`]s exported from main-tape variables before
//! the segment build starts. [`Graph::splice`] then appends the segment to
//! the main tape, remapping every import proxy to its original main-tape
//! node and offsetting all intra-segment parent links.
//!
//! # The splice invariant
//!
//! Splicing a segment produces **exactly the node sequence direct recording
//! would have produced**: import proxies occupy no main-tape slots, the
//! remaining nodes are appended in recording order, and every backward hook
//! operates on the tensors it captured at record time (identical to the
//! main-tape values, since imports carry clones of those tensors). As a
//! consequence:
//!
//! * node ids, values and `requires_grad` flags are bit-identical to a
//!   serial walk that records the same operations directly;
//! * [`Graph::backward`] visits spliced nodes in the same reverse order and
//!   accumulates parent gradients in the same sequence, so gradients are
//!   bit-identical too — including gradients flowing *through* imports into
//!   main-tape leaves recorded before the segment.
//!
//! Segments built concurrently therefore commute: as long as they are
//! spliced in a deterministic order (the weight-build scheduler uses layer
//! index), the resulting tape is independent of thread count and
//! scheduling. That property is pinned bit-for-bit by the root
//! `parallel_build` suite.
//!
//! Each splice also records its id range and import targets on the graph;
//! [`Graph::backward_parallel`] reuses those boundaries in reverse, as the
//! independent gradient subtrees it replays off-thread (pinned by the root
//! `parallel_backward` suite).

use crate::graph::{Graph, Node, SpliceSpan, Var};
use adept_tensor::Tensor;

/// A main-tape node exported for use inside a [`TapeSegment`] build.
///
/// Created by [`Var::export_import`]; carries everything a segment needs to
/// stand in for the node (value, gradient flag) plus the main-tape id the
/// proxy is remapped to at splice time.
#[derive(Debug, Clone)]
pub struct ImportSpec {
    main_id: usize,
    graph_nonce: u64,
    value: Tensor,
    requires_grad: bool,
}

impl<'g> Var<'g> {
    /// Exports this variable for import into a segment build.
    pub fn export_import(&self) -> ImportSpec {
        ImportSpec {
            main_id: self.id(),
            graph_nonce: self.graph().nonce,
            value: self.value(),
            requires_grad: self.requires_grad(),
        }
    }
}

/// A detachable run of tape nodes plus its import table and result ids.
///
/// `TapeSegment` is `Send`: build it on a worker thread, move it back, and
/// [`Graph::splice`] it on the tape-owning thread.
pub struct TapeSegment {
    nodes: Vec<Node>,
    /// `(main-tape id, source-graph nonce)` per import proxy; proxy `i`
    /// is segment node `i`.
    import_ids: Vec<(usize, u64)>,
    /// Segment-local ids of the build's result variables.
    results: Vec<usize>,
}

impl std::fmt::Debug for TapeSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapeSegment")
            .field("nodes", &self.nodes.len())
            .field("imports", &self.import_ids.len())
            .field("results", &self.results)
            .finish()
    }
}

impl TapeSegment {
    /// Number of nodes the splice will append (imports excluded).
    pub fn spliced_len(&self) -> usize {
        self.nodes.len() - self.import_ids.len()
    }
}

/// Records a tape segment: creates a private [`Graph`], materializes one
/// proxy variable per import (leaves for gradient-carrying imports,
/// constants otherwise), and runs `f` to record operations on them. The
/// variables `f` returns become the segment's results, resolved to
/// main-tape variables by [`Graph::splice`].
///
/// The import proxies occupy the first `imports.len()` node ids of the
/// private graph and are skipped when splicing, so `f` should only record
/// operations (any extra leaf it creates would be appended as a fresh
/// main-tape node, detached from the caller's parameters).
///
/// This function is safe to call from any thread; the closure runs
/// synchronously and the returned segment is `Send`.
pub fn record_segment<F>(imports: &[ImportSpec], f: F) -> TapeSegment
where
    F: for<'s> FnOnce(&'s Graph, &[Var<'s>]) -> Vec<Var<'s>>,
{
    let graph = Graph::new();
    let proxies: Vec<Var<'_>> = imports
        .iter()
        .map(|spec| {
            if spec.requires_grad {
                graph.leaf(spec.value.clone())
            } else {
                graph.constant(spec.value.clone())
            }
        })
        .collect();
    let results: Vec<usize> = f(&graph, &proxies).iter().map(|v| v.id()).collect();
    TapeSegment {
        nodes: graph.nodes.into_inner(),
        import_ids: imports.iter().map(|s| (s.main_id, s.graph_nonce)).collect(),
        results,
    }
}

/// Records two independent segments concurrently: `fa` runs on the shared
/// thread pool while `fb` records inline on the calling thread. Returns
/// `(segment_a, segment_b)` — the caller splices them in a fixed order
/// (first-then-second) to keep the combined node sequence identical to
/// serial recording of `fa` followed by `fb`.
///
/// This is the fork the weight builders use for the independent U- and
/// V-mesh walks; keeping the spawn/slot/record pattern here means both the
/// fixed-topology and SuperMesh schedulers share one copy of the
/// concurrency discipline the splice invariant depends on.
pub fn record_segment_pair<FA, FB>(
    imports_a: &[ImportSpec],
    fa: FA,
    imports_b: &[ImportSpec],
    fb: FB,
) -> (TapeSegment, TapeSegment)
where
    FA: for<'s> FnOnce(&'s Graph, &[Var<'s>]) -> Vec<Var<'s>> + Send,
    FB: for<'s> FnOnce(&'s Graph, &[Var<'s>]) -> Vec<Var<'s>>,
{
    let mut seg_a = None;
    let seg_b = adept_tensor::pool::scope(|scope| {
        let slot = &mut seg_a;
        scope.spawn(move || {
            *slot = Some(record_segment(imports_a, fa));
        });
        record_segment(imports_b, fb)
    });
    (seg_a.expect("pooled segment recorded"), seg_b)
}

impl Graph {
    /// Appends a recorded segment to this tape, remapping import proxies to
    /// their original main-tape nodes, and returns the segment's result
    /// variables as main-tape handles.
    ///
    /// The appended node sequence (ids, values, parent links, gradient
    /// flags) is identical to what direct recording of the same operations
    /// would have produced — see the module docs for the full invariant.
    ///
    /// # Panics
    ///
    /// Panics if an import was exported from a different graph (each tape
    /// carries a process-unique nonce, so a segment staged against one
    /// step's tape cannot silently splice onto the next step's), refers to
    /// a node this tape does not (yet) hold, or no longer matches its
    /// main-tape node's shape (stale export).
    pub fn splice(&self, segment: TapeSegment) -> Vec<Var<'_>> {
        let TapeSegment {
            nodes: seg_nodes,
            import_ids,
            results,
        } = segment;
        let n_imports = import_ids.len();
        let mut nodes = self.nodes.borrow_mut();
        let span_start = nodes.len();
        let mut remap = Vec::with_capacity(seg_nodes.len());
        for (i, node) in seg_nodes.into_iter().enumerate() {
            if i < n_imports {
                let (main_id, source_nonce) = import_ids[i];
                assert_eq!(
                    source_nonce, self.nonce,
                    "import of node {main_id} was exported from a different graph"
                );
                assert!(
                    main_id < nodes.len(),
                    "import of node {main_id} not on this tape (len {})",
                    nodes.len()
                );
                assert_eq!(
                    nodes[main_id].value.shape(),
                    node.value.shape(),
                    "stale import: main node {main_id} changed shape"
                );
                debug_assert!(
                    node.parents.is_empty() && node.backward.is_none(),
                    "import proxy must be a pristine leaf"
                );
                remap.push(main_id);
                continue;
            }
            let id = nodes.len();
            let parents: Vec<usize> = node.parents.iter().map(|&p| remap[p]).collect();
            nodes.push(Node {
                value: node.value,
                parents,
                backward: node.backward,
                requires_grad: node.requires_grad,
            });
            remap.push(id);
        }
        // Record the span boundary so `backward_parallel` can replay this
        // segment's gradient subtree off-thread (imports = its only
        // external parents).
        self.spans.borrow_mut().push(SpliceSpan {
            start: span_start,
            end: nodes.len(),
            imports: remap[..n_imports].to_vec(),
        });
        results
            .into_iter()
            .map(|r| Var {
                graph: self,
                id: remap[r],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f64]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()])
    }

    #[test]
    fn splice_matches_direct_recording_ids_and_values() {
        // Record y = (a*b + a).sum() twice: directly, and as a segment
        // importing a and b. Tapes must agree node for node.
        let direct = Graph::new();
        let a = direct.leaf(t(&[1.0, 2.0]));
        let b = direct.leaf(t(&[3.0, 4.0]));
        let y = a.mul(b).add(a).sum();

        let main = Graph::new();
        let a2 = main.leaf(t(&[1.0, 2.0]));
        let b2 = main.leaf(t(&[3.0, 4.0]));
        let seg = record_segment(&[a2.export_import(), b2.export_import()], |_, vars| {
            vec![vars[0].mul(vars[1]).add(vars[0]).sum()]
        });
        assert_eq!(seg.spliced_len(), 3);
        let spliced = main.splice(seg);
        assert_eq!(main.len(), direct.len(), "same node count");
        assert_eq!(spliced[0].id(), y.id(), "same result id");
        assert_eq!(
            spliced[0].value().as_slice(),
            y.value().as_slice(),
            "same value"
        );
    }

    #[test]
    fn gradients_flow_through_imports_into_main_leaves() {
        let main = Graph::new();
        let a = main.leaf(t(&[1.5, -2.0, 0.5]));
        let b = main.leaf(t(&[2.0, 1.0, -1.0]));
        let seg = record_segment(&[a.export_import(), b.export_import()], |_, vars| {
            vec![vars[0].mul(vars[1]).square().sum()]
        });
        let loss = main.splice(seg)[0];
        let grads = main.backward(loss);

        let reference = Graph::new();
        let ar = reference.leaf(t(&[1.5, -2.0, 0.5]));
        let br = reference.leaf(t(&[2.0, 1.0, -1.0]));
        let loss_r = ar.mul(br).square().sum();
        let grads_r = reference.backward(loss_r);
        assert_eq!(
            grads.grad(a).unwrap().as_slice(),
            grads_r.grad(ar).unwrap().as_slice()
        );
        assert_eq!(
            grads.grad(b).unwrap().as_slice(),
            grads_r.grad(br).unwrap().as_slice()
        );
    }

    #[test]
    fn constant_imports_block_gradient() {
        let main = Graph::new();
        let a = main.leaf(t(&[2.0]));
        let c = main.constant(t(&[5.0]));
        let seg = record_segment(&[a.export_import(), c.export_import()], |_, vars| {
            vec![vars[0].mul(vars[1]).sum()]
        });
        let loss = main.splice(seg)[0];
        let grads = main.backward(loss);
        assert_eq!(grads.grad(a).unwrap().as_slice(), &[5.0]);
        assert!(grads.grad(c).is_none());
    }

    #[test]
    fn segments_can_nest_before_reaching_the_main_tape() {
        // A segment splices a sub-segment into its own private graph before
        // the whole thing lands on the main tape — the shape the U/V mesh
        // fan-out uses.
        let main = Graph::new();
        let x = main.leaf(t(&[1.0, 2.0, 3.0]));
        let seg = record_segment(&[x.export_import()], |g, vars| {
            let doubled = vars[0].mul_scalar(2.0);
            let inner = record_segment(&[doubled.export_import()], |_, iv| {
                vec![iv[0].square().sum()]
            });
            g.splice(inner)
        });
        let loss = main.splice(seg)[0];
        assert_eq!(loss.value().item(), 4.0 + 16.0 + 36.0);
        let grads = main.backward(loss);
        // d/dx (2x)² = 8x.
        assert_eq!(grads.grad(x).unwrap().as_slice(), &[8.0, 16.0, 24.0]);
    }

    #[test]
    fn segment_moves_across_threads() {
        let main = Graph::new();
        let a = main.leaf(t(&[1.0, 2.0]));
        let spec = a.export_import();
        let seg = std::thread::spawn(move || {
            record_segment(&[spec], |_, vars| vec![vars[0].square().sum()])
        })
        .join()
        .unwrap();
        let loss = main.splice(seg)[0];
        assert_eq!(loss.value().item(), 5.0);
        let grads = main.backward(loss);
        assert_eq!(grads.grad(a).unwrap().as_slice(), &[2.0, 4.0]);
    }

    /// Serializes tests that override the global thread count.
    static THREAD_OVERRIDE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn parallel_backward_matches_serial_bitwise() {
        // Three spliced "weight build" segments over shared leaves plus
        // glue ops between them — the shape the prebuild scheduler leaves
        // on the tape.
        let main = Graph::new();
        let a = main.leaf(t(&[1.5, -2.0, 0.5, 3.0]));
        let b = main.leaf(t(&[2.0, 1.0, -1.0, 0.25]));
        let mut partials = Vec::new();
        for i in 0..3 {
            let seg = record_segment(&[a.export_import(), b.export_import()], move |_, v| {
                let prod = v[0].mul_scalar(1.0 + i as f64).mul(v[1]);
                vec![prod.square().sum()]
            });
            let r = main.splice(seg)[0];
            // Glue between spans: scale each partial result.
            partials.push(r.mul_scalar(0.5 + i as f64));
        }
        let loss = partials[0].add(partials[1]).add(partials[2]);
        let serial = main.backward(loss);
        let par = {
            let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
            adept_tensor::set_gemm_threads(4);
            let g = main.backward_parallel(loss);
            adept_tensor::set_gemm_threads(0);
            g
        };
        assert_eq!(
            par.grad(a).unwrap().as_slice(),
            serial.grad(a).unwrap().as_slice()
        );
        assert_eq!(
            par.grad(b).unwrap().as_slice(),
            serial.grad(b).unwrap().as_slice()
        );
    }

    #[test]
    fn parallel_backward_ignores_nodes_after_the_loss() {
        let main = Graph::new();
        let a = main.leaf(t(&[1.0, 2.0]));
        let seg = record_segment(&[a.export_import()], |_, v| vec![v[0].square().sum()]);
        let loss = main.splice(seg)[0];
        // Recorded after the loss: a whole extra segment plus glue. None of
        // it may contribute gradient.
        let seg2 = record_segment(&[a.export_import()], |_, v| {
            vec![v[0].mul_scalar(100.0).sum()]
        });
        let after = main.splice(seg2)[0];
        let _ = after.mul_scalar(2.0);
        let serial = main.backward(loss);
        let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
        adept_tensor::set_gemm_threads(4);
        let par = main.backward_parallel(loss);
        adept_tensor::set_gemm_threads(0);
        assert_eq!(
            par.grad(a).unwrap().as_slice(),
            serial.grad(a).unwrap().as_slice()
        );
        assert_eq!(serial.grad(a).unwrap().as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn parallel_backward_skips_gradient_free_segments() {
        // Two segments; the loss only consumes the first, so the second's
        // incoming gradient is entirely `None` at every thread count.
        let main = Graph::new();
        let a = main.leaf(t(&[3.0, -1.0]));
        let used = main.splice(record_segment(&[a.export_import()], |_, v| {
            vec![v[0].square().sum()]
        }))[0];
        let _unused = main.splice(record_segment(&[a.export_import()], |_, v| {
            vec![v[0].mul_scalar(7.0).sum()]
        }))[0];
        let loss = used.mul_scalar(1.0);
        let serial = main.backward(loss);
        let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
        adept_tensor::set_gemm_threads(4);
        let par = main.backward_parallel(loss);
        adept_tensor::set_gemm_threads(0);
        assert_eq!(
            par.grad(a).unwrap().as_slice(),
            serial.grad(a).unwrap().as_slice()
        );
        assert_eq!(serial.grad(a).unwrap().as_slice(), &[6.0, -2.0]);
    }

    #[test]
    fn parallel_backward_blocks_gradient_at_constant_imports() {
        // `requires_grad = false` parents inside a replayed span: the
        // constant import must swallow its contribution on the worker just
        // as the serial walk does on the main thread.
        let main = Graph::new();
        let a = main.leaf(t(&[2.0, 4.0]));
        let c = main.constant(t(&[5.0, -3.0]));
        let loss = main.splice(record_segment(
            &[a.export_import(), c.export_import()],
            |_, v| vec![v[0].mul(v[1]).sum()],
        ))[0];
        let serial = main.backward(loss);
        let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
        adept_tensor::set_gemm_threads(4);
        let par = main.backward_parallel(loss);
        adept_tensor::set_gemm_threads(0);
        assert_eq!(
            par.grad(a).unwrap().as_slice(),
            serial.grad(a).unwrap().as_slice()
        );
        assert!(par.grad(c).is_none());
        assert!(serial.grad(c).is_none());
    }

    #[test]
    fn interleaved_import_staging_falls_back_without_diverging() {
        // Legacy-walk shape: each segment imports a leaf created *between*
        // the previous spans, so later spans are demoted to glue. The
        // result must still match serial bit for bit.
        let main = Graph::new();
        let mut total = None;
        for i in 0..3 {
            let leaf = main.leaf(t(&[1.0 + i as f64, -0.5 * i as f64]));
            let r = main.splice(record_segment(&[leaf.export_import()], |_, v| {
                vec![v[0].square().sum()]
            }))[0];
            total = Some(match total {
                None => r,
                Some(acc) => r.add(acc),
            });
        }
        let loss = total.unwrap();
        let serial = main.backward(loss);
        let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
        adept_tensor::set_gemm_threads(4);
        let par = main.backward_parallel(loss);
        adept_tensor::set_gemm_threads(0);
        for id in 0..main.len() {
            let v = Var { graph: &main, id };
            match (serial.grad(v), par.grad(v)) {
                (Some(s), Some(p)) => assert_eq!(s.as_slice(), p.as_slice(), "node {id}"),
                (None, None) => {}
                _ => panic!("gradient presence diverges at node {id}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "exported from a different graph")]
    fn splice_rejects_foreign_imports_even_with_matching_layout() {
        // Per-step graphs recur with identical node ids and shapes; the
        // nonce stamp must reject a segment whose imports came from a
        // *different* graph even though id and shape checks would pass.
        let other = Graph::new();
        let a = other.leaf(t(&[1.0, 2.0]));
        let seg = record_segment(&[a.export_import()], |_, vars| vec![vars[0].sum()]);
        let main = Graph::new();
        let _twin = main.leaf(t(&[1.0, 2.0])); // same id 0, same shape
        let _ = main.splice(seg);
    }
}
