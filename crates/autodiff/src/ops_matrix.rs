//! Matrix-structured differentiable operations: products, reshapes,
//! reductions, padding/cropping and block assembly.

use crate::graph::Var;
use adept_tensor::Tensor;

impl<'g> Var<'g> {
    /// Differentiable matrix product.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch or cross-graph operands.
    pub fn matmul(self, rhs: Var<'g>) -> Var<'g> {
        self.assert_same_graph(&rhs);
        let a = self.value();
        let b = rhs.value();
        let out = a.matmul(&b);
        self.graph.custom(
            &[self, rhs],
            out,
            Box::new(move |g| {
                let ga = g.matmul(&b.transpose());
                let gb = a.transpose().matmul(g);
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Differentiable matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2.
    pub fn transpose(self) -> Var<'g> {
        let out = self.value().transpose();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.transpose())]),
        )
    }

    /// Differentiable reshape (same element count).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(self, shape: &[usize]) -> Var<'g> {
        let orig = self.shape();
        let out = self.value().reshape(shape);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.reshape(&orig))]),
        )
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum(self) -> Var<'g> {
        let shape = self.shape();
        let out = Tensor::scalar(self.value().sum());
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(Tensor::full(&shape, g.item()))]),
        )
    }

    /// Mean of all elements, as a scalar node.
    ///
    /// # Panics
    ///
    /// Panics on empty tensors.
    pub fn mean(self) -> Var<'g> {
        let shape = self.shape();
        let n: usize = shape.iter().product();
        assert!(n > 0, "mean of empty variable");
        let out = Tensor::scalar(self.value().mean());
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(Tensor::full(&shape, g.item() / n as f64))]),
        )
    }

    /// Sums a matrix along `axis` (0 collapses rows, 1 collapses columns).
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or `axis > 1`.
    pub fn sum_axis(self, axis: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "sum_axis expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        let out = v.sum_axis(axis);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut full = Tensor::zeros(&[r, c]);
                for i in 0..r {
                    for j in 0..c {
                        full.as_mut_slice()[i * c + j] =
                            if axis == 0 { g.as_slice()[j] } else { g.as_slice()[i] };
                    }
                }
                vec![Some(full)]
            }),
        )
    }

    /// Crops a matrix to its leading `rows`×`cols` block.
    ///
    /// The backward pass zero-pads the gradient back to the original shape.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or the crop exceeds bounds.
    pub fn crop2d(self, rows: usize, cols: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "crop2d expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        assert!(rows <= r && cols <= c, "crop {rows}x{cols} exceeds {r}x{c}");
        let out = v.block(0, 0, rows, cols);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut full = Tensor::zeros(&[r, c]);
                full.set_block(0, 0, g);
                vec![Some(full)]
            }),
        )
    }

    /// Zero-pads a matrix on the bottom/right to `rows`×`cols`.
    ///
    /// The backward pass crops the gradient back.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or the target is smaller.
    pub fn pad2d(self, rows: usize, cols: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "pad2d expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        assert!(rows >= r && cols >= c, "pad target smaller than input");
        let mut out = Tensor::zeros(&[rows, cols]);
        out.set_block(0, 0, &v);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.block(0, 0, r, c))]),
        )
    }

    /// Scatters a vector into a fresh tensor of shape `out_shape`:
    /// element `i` lands at flat offset `positions[i]`; other entries are 0.
    ///
    /// The backward pass gathers the corresponding gradient entries.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 1, `positions` has a different
    /// length, contains duplicates, or indexes out of bounds.
    pub fn scatter(self, out_shape: &[usize], positions: &[usize]) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 1, "scatter expects a vector");
        assert_eq!(v.len(), positions.len(), "positions length mismatch");
        let total: usize = out_shape.iter().product();
        let mut seen = vec![false; total];
        let mut out = Tensor::zeros(out_shape);
        for (i, &p) in positions.iter().enumerate() {
            assert!(p < total, "position {p} out of bounds for {total}");
            assert!(!seen[p], "duplicate scatter position {p}");
            seen[p] = true;
            out.as_mut_slice()[p] = v.as_slice()[i];
        }
        let positions = positions.to_vec();
        let n = v.len();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut gv = Tensor::zeros(&[n]);
                for (i, &p) in positions.iter().enumerate() {
                    gv.as_mut_slice()[i] = g.as_slice()[p];
                }
                vec![Some(gv)]
            }),
        )
    }

    /// Gathers `positions` (flat offsets) into a vector node.
    ///
    /// The backward pass scatter-adds gradient entries back.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn gather(self, positions: &[usize]) -> Var<'g> {
        let v = self.value();
        let total = v.len();
        let data: Vec<f64> = positions
            .iter()
            .map(|&p| {
                assert!(p < total, "position {p} out of bounds for {total}");
                v.as_slice()[p]
            })
            .collect();
        let out = Tensor::from_vec(data, &[positions.len()]);
        let positions = positions.to_vec();
        let shape = v.shape().to_vec();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut gv = Tensor::zeros(&shape);
                for (i, &p) in positions.iter().enumerate() {
                    gv.as_mut_slice()[p] += g.as_slice()[i];
                }
                vec![Some(gv)]
            }),
        )
    }
}

/// Assembles a `grid_rows`×`grid_cols` grid of equally sized matrix blocks
/// into one large matrix node.
///
/// `blocks` is row-major over the grid; every block must share the same
/// `k_rows`×`k_cols` shape. The backward pass slices the gradient back into
/// per-block gradients.
///
/// # Panics
///
/// Panics if the number of blocks or any block shape disagrees with the
/// grid, or blocks live on different graphs.
pub fn assemble_blocks<'g>(
    blocks: &[Var<'g>],
    grid_rows: usize,
    grid_cols: usize,
) -> Var<'g> {
    assert!(!blocks.is_empty(), "assemble_blocks needs at least one block");
    assert_eq!(
        blocks.len(),
        grid_rows * grid_cols,
        "expected {} blocks, got {}",
        grid_rows * grid_cols,
        blocks.len()
    );
    let graph = blocks[0].graph();
    let first = blocks[0].value();
    assert_eq!(first.rank(), 2, "blocks must be matrices");
    let (kr, kc) = (first.shape()[0], first.shape()[1]);
    let mut out = Tensor::zeros(&[grid_rows * kr, grid_cols * kc]);
    for (idx, b) in blocks.iter().enumerate() {
        let v = b.value();
        assert_eq!(v.shape(), &[kr, kc], "block {idx} has mismatched shape");
        let (gr, gc) = (idx / grid_cols, idx % grid_cols);
        out.set_block(gr * kr, gc * kc, &v);
    }
    graph.custom(
        blocks,
        out,
        Box::new(move |g| {
            (0..grid_rows * grid_cols)
                .map(|idx| {
                    let (gr, gc) = (idx / grid_cols, idx % grid_cols);
                    Some(g.block(gr * kr, gc * kc, kr, kc))
                })
                .collect()
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn matmul_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let loss = a.matmul(b).sum();
        let grads = g.backward(loss);
        // d(sum(AB))/dA = 1·Bᵀ  (ones matrix times B transpose)
        assert_eq!(grads.grad(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(grads.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn transpose_and_reshape_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]));
        let loss = a.transpose().reshape(&[6]).mul(g.constant(Tensor::linspace(1.0, 6.0, 6))).sum();
        let grads = g.backward(loss);
        // Transposed flat order is [0,3],[1,4],[2,5] → weights map back accordingly.
        assert_eq!(
            grads.grad(a).unwrap().as_slice(),
            &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]
        );
    }

    #[test]
    fn reductions_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3]));
        let grads = g.backward(a.mean());
        assert!(grads
            .grad(a)
            .unwrap()
            .allclose(&Tensor::full(&[2, 3], 1.0 / 6.0), 1e-12));

        let g2 = Graph::new();
        let b = g2.leaf(Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]));
        let loss = b
            .sum_axis(0)
            .mul(g2.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3])))
            .sum();
        let grads = g2.backward(loss);
        assert_eq!(
            grads.grad(b).unwrap().as_slice(),
            &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn crop_pad_round_trip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 2]));
        let padded = a.pad2d(3, 4);
        assert_eq!(padded.shape(), vec![3, 4]);
        let back = padded.crop2d(2, 2);
        let grads = g.backward(back.sum());
        assert!(grads.grad(a).unwrap().allclose(&Tensor::ones(&[2, 2]), 1e-12));
    }

    #[test]
    fn scatter_gather_adjoint() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let m = v.scatter(&[2, 2], &[0, 3, 1]);
        assert_eq!(m.value().as_slice(), &[1.0, 3.0, 0.0, 2.0]);
        let w = g.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]));
        let grads = g.backward(m.mul(w).sum());
        assert_eq!(grads.grad(v).unwrap().as_slice(), &[10.0, 40.0, 20.0]);

        let g2 = Graph::new();
        let v2 = g2.leaf(Tensor::from_vec(vec![5.0, 6.0], &[2]));
        let picked = v2.gather(&[1, 1, 0]);
        assert_eq!(picked.value().as_slice(), &[6.0, 6.0, 5.0]);
        let grads = g2.backward(picked.sum());
        assert_eq!(grads.grad(v2).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn block_assembly() {
        let g = Graph::new();
        let blocks: Vec<_> = (0..4)
            .map(|i| g.leaf(Tensor::full(&[2, 2], i as f64)))
            .collect();
        let big = assemble_blocks(&blocks, 2, 2);
        assert_eq!(big.shape(), vec![4, 4]);
        assert_eq!(big.value().at(&[0, 0]), 0.0);
        assert_eq!(big.value().at(&[0, 2]), 1.0);
        assert_eq!(big.value().at(&[2, 0]), 2.0);
        assert_eq!(big.value().at(&[3, 3]), 3.0);
        let grads = g.backward(big.mul_scalar(2.0).sum());
        for b in &blocks {
            assert!(grads.grad(*b).unwrap().allclose(&Tensor::full(&[2, 2], 2.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scatter position")]
    fn scatter_rejects_duplicates() {
        let g = Graph::new();
        let v = g.leaf(Tensor::ones(&[2]));
        let _ = v.scatter(&[4], &[1, 1]);
    }
}
