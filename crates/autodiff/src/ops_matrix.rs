//! Matrix-structured differentiable operations: products (single and
//! batched), reshapes, reductions, slicing/padding and tile assembly.
//!
//! Backward passes lean on the tensor crate's zero-copy machinery: matmul
//! gradients multiply straight off transposed *views*, slice gradients are
//! strided scatters, and the stack/assemble ops hand sub-tile gradients out
//! as storage-sharing windows instead of copies.

use crate::graph::Var;
use adept_tensor::{matmul_view, Tensor};

impl<'g> Var<'g> {
    /// Differentiable matrix product.
    ///
    /// # Panics
    ///
    /// Panics on rank/dimension mismatch or cross-graph operands.
    pub fn matmul(self, rhs: Var<'g>) -> Var<'g> {
        self.assert_same_graph(&rhs);
        let a = self.value();
        let b = rhs.value();
        let out = a.matmul(&b);
        self.graph.custom(
            &[self, rhs],
            out,
            Box::new(move |g| {
                // Gradients run off transposed views; the transposes are
                // never materialized.
                let ga = matmul_view(&g.view(), &b.t_view());
                let gb = matmul_view(&a.t_view(), &g.view());
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Differentiable batched matrix product of rank-3 values:
    /// `[T, m, k] · [T, k, n] → [T, m, n]`.
    ///
    /// Forward and both backward products each run as one
    /// [`adept_tensor::batched_matmul_into`] sweep over all `T` tiles.
    ///
    /// # Panics
    ///
    /// Panics on rank/batch/dimension mismatch or cross-graph operands.
    pub fn batched_matmul(self, rhs: Var<'g>) -> Var<'g> {
        self.assert_same_graph(&rhs);
        let a = self.value();
        let b = rhs.value();
        let out = a.batched_matmul(&b);
        self.graph.custom(
            &[self, rhs],
            out,
            Box::new(move |g| {
                let ga = g.batched_matmul_opt(&b, false, true);
                let gb = a.batched_matmul_opt(g, true, false);
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Differentiable matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2.
    pub fn transpose(self) -> Var<'g> {
        let out = self.value().transpose();
        self.graph
            .custom(&[self], out, Box::new(move |g| vec![Some(g.transpose())]))
    }

    /// Differentiable reshape (same element count).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(self, shape: &[usize]) -> Var<'g> {
        let orig = self.shape();
        let out = self.value().reshape(shape);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.reshape(&orig))]),
        )
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum(self) -> Var<'g> {
        let shape = self.shape();
        let out = Tensor::scalar(self.value().sum());
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(Tensor::full(&shape, g.item()))]),
        )
    }

    /// Mean of all elements, as a scalar node.
    ///
    /// # Panics
    ///
    /// Panics on empty tensors.
    pub fn mean(self) -> Var<'g> {
        let shape = self.shape();
        let n: usize = shape.iter().product();
        assert!(n > 0, "mean of empty variable");
        let out = Tensor::scalar(self.value().mean());
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(Tensor::full(&shape, g.item() / n as f64))]),
        )
    }

    /// Sums a matrix along `axis` (0 collapses rows, 1 collapses columns).
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or `axis > 1`.
    pub fn sum_axis(self, axis: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "sum_axis expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        let out = v.sum_axis(axis);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut full = Tensor::zeros(&[r, c]);
                let dst = full.as_mut_slice();
                let src = g.as_slice();
                for i in 0..r {
                    for j in 0..c {
                        dst[i * c + j] = if axis == 0 { src[j] } else { src[i] };
                    }
                }
                vec![Some(full)]
            }),
        )
    }

    /// Crops a matrix to its leading `rows`×`cols` block.
    ///
    /// The backward pass zero-pads the gradient back to the original shape.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or the crop exceeds bounds.
    pub fn crop2d(self, rows: usize, cols: usize) -> Var<'g> {
        self.slice2d(0, 0, rows, cols)
    }

    /// Extracts the `rows`×`cols` block of a matrix at `(r0, c0)`.
    ///
    /// The forward pass is a strided view materialization (zero-copy when
    /// the slice covers whole leading rows); the backward pass scatters the
    /// gradient back into a zero matrix at the same offsets.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or the block exceeds bounds.
    pub fn slice2d(self, r0: usize, c0: usize, rows: usize, cols: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "slice2d expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        assert!(
            r0 + rows <= r && c0 + cols <= c,
            "slice {rows}x{cols} at ({r0},{c0}) exceeds {r}x{c}"
        );
        let out = v.block_view(r0, c0, rows, cols).materialize();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut full = Tensor::zeros(&[r, c]);
                full.set_block(r0, c0, g);
                vec![Some(full)]
            }),
        )
    }

    /// Zero-pads a matrix on the bottom/right to `rows`×`cols`.
    ///
    /// The backward pass crops the gradient back.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2 or the target is smaller.
    pub fn pad2d(self, rows: usize, cols: usize) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 2, "pad2d expects a matrix");
        let (r, c) = (v.shape()[0], v.shape()[1]);
        assert!(rows >= r && cols >= c, "pad target smaller than input");
        let mut out = Tensor::zeros(&[rows, cols]);
        out.set_block(0, 0, &v);
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| vec![Some(g.block(0, 0, r, c))]),
        )
    }

    /// Scatters a vector into a fresh tensor of shape `out_shape`:
    /// element `i` lands at flat offset `positions[i]`; other entries are 0.
    ///
    /// The backward pass gathers the corresponding gradient entries.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 1, `positions` has a different
    /// length, contains duplicates, or indexes out of bounds.
    pub fn scatter(self, out_shape: &[usize], positions: &[usize]) -> Var<'g> {
        let v = self.value();
        assert_eq!(v.rank(), 1, "scatter expects a vector");
        assert_eq!(v.len(), positions.len(), "positions length mismatch");
        let total: usize = out_shape.iter().product();
        let mut seen = vec![false; total];
        let mut out = Tensor::zeros(out_shape);
        for (i, &p) in positions.iter().enumerate() {
            assert!(p < total, "position {p} out of bounds for {total}");
            assert!(!seen[p], "duplicate scatter position {p}");
            seen[p] = true;
            out.as_mut_slice()[p] = v.as_slice()[i];
        }
        let positions = positions.to_vec();
        let n = v.len();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut gv = Tensor::zeros(&[n]);
                for (i, &p) in positions.iter().enumerate() {
                    gv.as_mut_slice()[i] = g.as_slice()[p];
                }
                vec![Some(gv)]
            }),
        )
    }

    /// Gathers `positions` (flat offsets) into a vector node.
    ///
    /// The backward pass scatter-adds gradient entries back.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn gather(self, positions: &[usize]) -> Var<'g> {
        let v = self.value();
        let total = v.len();
        let data: Vec<f64> = positions
            .iter()
            .map(|&p| {
                assert!(p < total, "position {p} out of bounds for {total}");
                v.as_slice()[p]
            })
            .collect();
        let out = Tensor::from_vec(data, &[positions.len()]);
        let positions = positions.to_vec();
        let shape = v.shape().to_vec();
        self.graph.custom(
            &[self],
            out,
            Box::new(move |g| {
                let mut gv = Tensor::zeros(&shape);
                for (i, &p) in positions.iter().enumerate() {
                    gv.as_mut_slice()[p] += g.as_slice()[i];
                }
                vec![Some(gv)]
            }),
        )
    }
}

/// Stacks equally shaped blocks into one `[T, …dims]` node.
///
/// The forward pass performs the single unavoidable copy (tiles come from
/// separate node buffers); the backward pass hands each parent its slab of
/// the gradient as a zero-copy storage-sharing window.
///
/// # Panics
///
/// Panics if `blocks` is empty, shapes disagree, or blocks live on
/// different graphs.
pub fn stack<'g>(blocks: &[Var<'g>]) -> Var<'g> {
    assert!(!blocks.is_empty(), "stack needs at least one block");
    let graph = blocks[0].graph();
    let first = blocks[0].value();
    let item_shape = first.shape().to_vec();
    let item_len = first.len();
    let t = blocks.len();
    let mut out_shape = vec![t];
    out_shape.extend_from_slice(&item_shape);
    let mut data = vec![0.0; t * item_len];
    for (i, b) in blocks.iter().enumerate() {
        let v = b.value();
        assert_eq!(v.shape(), &item_shape[..], "block {i} has mismatched shape");
        data[i * item_len..(i + 1) * item_len].copy_from_slice(v.as_slice());
    }
    let out = Tensor::from_vec(data, &out_shape);
    graph.custom(
        blocks,
        out,
        Box::new(move |g| (0..t).map(|i| Some(g.subtensor(i))).collect()),
    )
}

/// Lays a `[T, kr, kc]` stack of tiles out as a `grid_rows`×`grid_cols`
/// grid, producing a `[grid_rows·kr, grid_cols·kc]` matrix node. Tile `t`
/// lands at grid position `(t / grid_cols, t % grid_cols)`.
///
/// Forward and backward are single strided sweeps (no per-tile tensors).
///
/// # Panics
///
/// Panics unless the value is rank 3 with `T = grid_rows · grid_cols`.
pub fn assemble_tiles(tiles: Var<'_>, grid_rows: usize, grid_cols: usize) -> Var<'_> {
    let v = tiles.value();
    assert_eq!(v.rank(), 3, "assemble_tiles expects a [T, kr, kc] stack");
    let (t, kr, kc) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    assert_eq!(
        t,
        grid_rows * grid_cols,
        "expected {} tiles, got {t}",
        grid_rows * grid_cols
    );
    let (rows, cols) = (grid_rows * kr, grid_cols * kc);
    let mut out = Tensor::zeros(&[rows, cols]);
    {
        let src = v.as_slice();
        let dst = out.as_mut_slice();
        for ti in 0..t {
            let (gr, gc) = (ti / grid_cols, ti % grid_cols);
            for i in 0..kr {
                let s = ti * kr * kc + i * kc;
                let d = (gr * kr + i) * cols + gc * kc;
                dst[d..d + kc].copy_from_slice(&src[s..s + kc]);
            }
        }
    }
    tiles.graph().custom(
        &[tiles],
        out,
        Box::new(move |g| {
            let mut grad = Tensor::zeros(&[t, kr, kc]);
            {
                let src = g.as_slice();
                let dst = grad.as_mut_slice();
                for ti in 0..t {
                    let (gr, gc) = (ti / grid_cols, ti % grid_cols);
                    for i in 0..kr {
                        let s = (gr * kr + i) * cols + gc * kc;
                        let d = ti * kr * kc + i * kc;
                        dst[d..d + kc].copy_from_slice(&src[s..s + kc]);
                    }
                }
            }
            vec![Some(grad)]
        }),
    )
}

/// The batched PTC tile product: given per-tile factor variables
/// `(UΣ)_re`, `(UΣ)_im`, `V_re`, `V_im` (all `[K, K]`), computes
/// `Re(UΣ·V)[t] = (UΣ)_re[t]·V_re[t] − (UΣ)_im[t]·V_im[t]` for every tile
/// as two batched GEMM sweeps over stacked `[T, K, K]` buffers and lays the
/// results out as a `grid_rows`×`grid_cols` grid.
///
/// This is the shared back half of `PtcWeight::build` (fixed topologies)
/// and `SuperPtcWeight::build` (search-time SuperMesh frames).
///
/// # Panics
///
/// Panics if the slices are empty, disagree in length with the grid, or
/// hold mismatched shapes.
pub fn batched_tile_product<'g>(
    us_re: &[Var<'g>],
    us_im: &[Var<'g>],
    v_re: &[Var<'g>],
    v_im: &[Var<'g>],
    grid_rows: usize,
    grid_cols: usize,
) -> Var<'g> {
    assert_eq!(us_re.len(), grid_rows * grid_cols, "tile count mismatch");
    let re = stack(us_re).batched_matmul(stack(v_re));
    let im = stack(us_im).batched_matmul(stack(v_im));
    assemble_tiles(re.sub(im), grid_rows, grid_cols)
}

/// Assembles a `grid_rows`×`grid_cols` grid of equally sized matrix blocks
/// into one large matrix node.
///
/// `blocks` is row-major over the grid; every block must share the same
/// `k_rows`×`k_cols` shape. Implemented as [`stack`] followed by
/// [`assemble_tiles`], so the backward pass hands out zero-copy windows.
///
/// # Panics
///
/// Panics if the number of blocks or any block shape disagrees with the
/// grid, or blocks live on different graphs.
pub fn assemble_blocks<'g>(blocks: &[Var<'g>], grid_rows: usize, grid_cols: usize) -> Var<'g> {
    assert!(
        !blocks.is_empty(),
        "assemble_blocks needs at least one block"
    );
    assert_eq!(
        blocks.len(),
        grid_rows * grid_cols,
        "expected {} blocks, got {}",
        grid_rows * grid_cols,
        blocks.len()
    );
    assert_eq!(blocks[0].value().rank(), 2, "blocks must be matrices");
    assemble_tiles(stack(blocks), grid_rows, grid_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn matmul_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let loss = a.matmul(b).sum();
        let grads = g.backward(loss);
        // d(sum(AB))/dA = 1·Bᵀ  (ones matrix times B transpose)
        assert_eq!(grads.grad(a).unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(grads.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn transpose_and_reshape_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]));
        let loss = a
            .transpose()
            .reshape(&[6])
            .mul(g.constant(Tensor::linspace(1.0, 6.0, 6)))
            .sum();
        let grads = g.backward(loss);
        // Transposed flat order is [0,3],[1,4],[2,5] → weights map back accordingly.
        assert_eq!(
            grads.grad(a).unwrap().as_slice(),
            &[1.0, 3.0, 5.0, 2.0, 4.0, 6.0]
        );
    }

    #[test]
    fn reductions_gradients() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3]));
        let grads = g.backward(a.mean());
        assert!(grads
            .grad(a)
            .unwrap()
            .allclose(&Tensor::full(&[2, 3], 1.0 / 6.0), 1e-12));

        let g2 = Graph::new();
        let b = g2.leaf(Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]));
        let loss = b
            .sum_axis(0)
            .mul(g2.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3])))
            .sum();
        let grads = g2.backward(loss);
        assert_eq!(
            grads.grad(b).unwrap().as_slice(),
            &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn crop_pad_round_trip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 2]));
        let padded = a.pad2d(3, 4);
        assert_eq!(padded.shape(), vec![3, 4]);
        let back = padded.crop2d(2, 2);
        let grads = g.backward(back.sum());
        assert!(grads
            .grad(a)
            .unwrap()
            .allclose(&Tensor::ones(&[2, 2]), 1e-12));
    }

    #[test]
    fn scatter_gather_adjoint() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let m = v.scatter(&[2, 2], &[0, 3, 1]);
        assert_eq!(m.value().as_slice(), &[1.0, 3.0, 0.0, 2.0]);
        let w = g.constant(Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]));
        let grads = g.backward(m.mul(w).sum());
        assert_eq!(grads.grad(v).unwrap().as_slice(), &[10.0, 40.0, 20.0]);

        let g2 = Graph::new();
        let v2 = g2.leaf(Tensor::from_vec(vec![5.0, 6.0], &[2]));
        let picked = v2.gather(&[1, 1, 0]);
        assert_eq!(picked.value().as_slice(), &[6.0, 6.0, 5.0]);
        let grads = g2.backward(picked.sum());
        assert_eq!(grads.grad(v2).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn block_assembly() {
        let g = Graph::new();
        let blocks: Vec<_> = (0..4)
            .map(|i| g.leaf(Tensor::full(&[2, 2], i as f64)))
            .collect();
        let big = assemble_blocks(&blocks, 2, 2);
        assert_eq!(big.shape(), vec![4, 4]);
        assert_eq!(big.value().at(&[0, 0]), 0.0);
        assert_eq!(big.value().at(&[0, 2]), 1.0);
        assert_eq!(big.value().at(&[2, 0]), 2.0);
        assert_eq!(big.value().at(&[3, 3]), 3.0);
        let grads = g.backward(big.mul_scalar(2.0).sum());
        for b in &blocks {
            assert!(grads
                .grad(*b)
                .unwrap()
                .allclose(&Tensor::full(&[2, 2], 2.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scatter position")]
    fn scatter_rejects_duplicates() {
        let g = Graph::new();
        let v = g.leaf(Tensor::ones(&[2]));
        let _ = v.scatter(&[4], &[1, 1]);
    }

    #[test]
    fn slice2d_interior_block() {
        let g = Graph::new();
        let a = g.leaf(Tensor::linspace(0.0, 11.0, 12).reshape(&[3, 4]));
        let s = a.slice2d(1, 1, 2, 2);
        assert_eq!(s.value().as_slice(), &[5.0, 6.0, 9.0, 10.0]);
        let grads = g.backward(s.sum());
        let ga = grads.grad(a).unwrap();
        assert_eq!(ga.at(&[1, 1]), 1.0);
        assert_eq!(ga.at(&[2, 2]), 1.0);
        assert_eq!(ga.at(&[0, 0]), 0.0);
        assert_eq!(ga.at(&[1, 3]), 0.0);
    }

    #[test]
    fn batched_matmul_forward_and_grads() {
        let g = Graph::new();
        let a = g.leaf(Tensor::linspace(-1.0, 1.0, 2 * 2 * 3).reshape(&[2, 2, 3]));
        let b = g.leaf(Tensor::linspace(0.0, 1.0, 2 * 3 * 2).reshape(&[2, 3, 2]));
        let c = a.batched_matmul(b);
        assert_eq!(c.shape(), vec![2, 2, 2]);
        // Forward matches per-item matmul.
        for t in 0..2 {
            let want = a.value().subtensor(t).matmul(&b.value().subtensor(t));
            assert_eq!(c.value().subtensor(t).as_slice(), want.as_slice());
        }
        // Gradients flow to both operands with the right shapes.
        let grads = g.backward(c.square().sum());
        assert_eq!(grads.grad(a).unwrap().shape(), &[2, 2, 3]);
        assert_eq!(grads.grad(b).unwrap().shape(), &[2, 3, 2]);
    }

    #[test]
    fn stack_assemble_round_trip() {
        let g = Graph::new();
        let blocks: Vec<_> = (0..6)
            .map(|i| g.leaf(Tensor::full(&[2, 3], i as f64)))
            .collect();
        let stacked = stack(&blocks);
        assert_eq!(stacked.shape(), vec![6, 2, 3]);
        let big = assemble_tiles(stacked, 2, 3);
        assert_eq!(big.shape(), vec![4, 9]);
        // Tile t sits at (t / 3, t % 3).
        assert_eq!(big.value().at(&[0, 0]), 0.0);
        assert_eq!(big.value().at(&[0, 4]), 1.0);
        assert_eq!(big.value().at(&[2, 0]), 3.0);
        assert_eq!(big.value().at(&[3, 8]), 5.0);
        let grads = g.backward(big.mul_scalar(3.0).sum());
        for b in &blocks {
            assert!(grads
                .grad(*b)
                .unwrap()
                .allclose(&Tensor::full(&[2, 3], 3.0), 1e-12));
        }
    }

    #[test]
    fn stack_distinguishes_block_gradients() {
        // Each block's gradient must be its own slab of the upstream
        // gradient, not a shared average.
        let g = Graph::new();
        let b0 = g.leaf(Tensor::ones(&[1, 2]));
        let b1 = g.leaf(Tensor::ones(&[1, 2]));
        let stacked = stack(&[b0, b1]);
        let w = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]));
        let grads = g.backward(stacked.mul(w).sum());
        assert_eq!(grads.grad(b0).unwrap().as_slice(), &[1.0, 2.0]);
        assert_eq!(grads.grad(b1).unwrap().as_slice(), &[3.0, 4.0]);
    }
}
