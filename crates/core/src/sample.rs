//! SubMesh sampling: extracting a concrete PTC design from the trained
//! SuperMesh distribution (paper §4.1, "we sample a SubMesh from the
//! learned distribution P_θ that satisfies the footprint constraints").

use crate::spl;
use crate::supermesh::SuperMeshHandles;
use adept_nn::ParamStore;
use adept_photonics::{BlockMeshTopology, DeviceCount, MeshBlock, Pdk};
use rand::Rng;

/// A concrete sampled design.
#[derive(Debug, Clone)]
pub struct SampledDesign {
    /// Topology of the `U` mesh.
    pub topo_u: BlockMeshTopology,
    /// Topology of the `V` mesh.
    pub topo_v: BlockMeshTopology,
    /// Device count of the full PTC.
    pub device_count: DeviceCount,
    /// Footprint in 1000 µm².
    pub footprint_kum2: f64,
}

struct BlockChoice {
    exec_prob: f64,
    pinned: bool,
    block: MeshBlock,
}

fn side_choices(store: &ParamStore, handles: &SuperMeshHandles, is_u: bool) -> Vec<BlockChoice> {
    let side = if is_u { &handles.u } else { &handles.v };
    (0..handles.n_blocks)
        .map(|b| {
            let exec_prob = match side.theta[b] {
                Some(id) => {
                    let th = store.value(id);
                    let (a, e) = (th.as_slice()[0], th.as_slice()[1]);
                    let m = a.max(e);
                    ((e - m).exp()) / ((a - m).exp() + (e - m).exp())
                }
                None => 1.0,
            };
            let perm = spl::greedy_assign(store.value(side.perm[b]));
            let couplers: Vec<bool> = store
                .value(side.t[b])
                .as_slice()
                .iter()
                .map(|&t| t < 0.0)
                .collect();
            BlockChoice {
                exec_prob,
                pinned: side.theta[b].is_none(),
                block: MeshBlock {
                    dc_start: side.dc_start[b],
                    couplers,
                    perm,
                },
            }
        })
        .collect()
}

fn design_from_selection(
    k: usize,
    choices_u: &[BlockChoice],
    choices_v: &[BlockChoice],
    sel_u: &[bool],
    sel_v: &[bool],
    pdk: &Pdk,
) -> SampledDesign {
    let pick = |choices: &[BlockChoice], sel: &[bool]| -> Vec<MeshBlock> {
        choices
            .iter()
            .zip(sel)
            .filter(|(_, &s)| s)
            .map(|(c, _)| c.block.clone())
            .collect()
    };
    let topo_u = BlockMeshTopology::new(k, pick(choices_u, sel_u));
    let topo_v = BlockMeshTopology::new(k, pick(choices_v, sel_v));
    let device_count = topo_u.ptc_device_count(&topo_v);
    let footprint_kum2 = device_count.footprint_kum2(pdk);
    SampledDesign {
        topo_u,
        topo_v,
        device_count,
        footprint_kum2,
    }
}

/// Samples a SubMesh from the learned block distribution that honors the
/// footprint window; falls back to a greedy repair (drop the least likely
/// block while over budget, add the most likely while under) if no random
/// sample lands inside within `max_tries`.
///
/// # Panics
///
/// Panics if the window is invalid.
pub fn sample_topology<R: Rng + ?Sized>(
    store: &ParamStore,
    handles: &SuperMeshHandles,
    pdk: &Pdk,
    f_min_kum2: f64,
    f_max_kum2: f64,
    rng: &mut R,
    max_tries: usize,
) -> SampledDesign {
    assert!(f_max_kum2 > f_min_kum2, "invalid footprint window");
    let choices_u = side_choices(store, handles, true);
    let choices_v = side_choices(store, handles, false);
    let k = handles.k;
    // Random sampling phase.
    for _ in 0..max_tries {
        let draw = |choices: &[BlockChoice], rng: &mut R| -> Vec<bool> {
            choices
                .iter()
                .map(|c| c.pinned || rng.gen_bool(c.exec_prob.clamp(0.0, 1.0)))
                .collect()
        };
        let sel_u = draw(&choices_u, rng);
        let sel_v = draw(&choices_v, rng);
        if !sel_u.iter().any(|&s| s) || !sel_v.iter().any(|&s| s) {
            continue;
        }
        let d = design_from_selection(k, &choices_u, &choices_v, &sel_u, &sel_v, pdk);
        if d.footprint_kum2 >= f_min_kum2 && d.footprint_kum2 <= f_max_kum2 {
            return d;
        }
    }
    // Greedy repair from the maximum-likelihood selection.
    let mut sel_u: Vec<bool> = choices_u
        .iter()
        .map(|c| c.pinned || c.exec_prob >= 0.5)
        .collect();
    let mut sel_v: Vec<bool> = choices_v
        .iter()
        .map(|c| c.pinned || c.exec_prob >= 0.5)
        .collect();
    if !sel_u.iter().any(|&s| s) {
        sel_u[handles.n_blocks - 1] = true;
    }
    if !sel_v.iter().any(|&s| s) {
        sel_v[handles.n_blocks - 1] = true;
    }
    for _ in 0..(4 * handles.n_blocks) {
        let d = design_from_selection(k, &choices_u, &choices_v, &sel_u, &sel_v, pdk);
        if d.footprint_kum2 > f_max_kum2 {
            // Drop the least-probable removable block.
            let worst = choices_u
                .iter()
                .zip(sel_u.iter())
                .enumerate()
                .filter(|(_, (c, &s))| s && !c.pinned)
                .map(|(i, (c, _))| (false, i, c.exec_prob))
                .chain(
                    choices_v
                        .iter()
                        .zip(sel_v.iter())
                        .enumerate()
                        .filter(|(_, (c, &s))| s && !c.pinned)
                        .map(|(i, (c, _))| (true, i, c.exec_prob)),
                )
                .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            match worst {
                Some((true, i, _)) => sel_v[i] = false,
                Some((false, i, _)) => sel_u[i] = false,
                None => break, // only pinned blocks left
            }
        } else if d.footprint_kum2 < f_min_kum2 {
            // Add the most-probable excluded block.
            let best = choices_u
                .iter()
                .zip(sel_u.iter())
                .enumerate()
                .filter(|(_, (_, &s))| !s)
                .map(|(i, (c, _))| (false, i, c.exec_prob))
                .chain(
                    choices_v
                        .iter()
                        .zip(sel_v.iter())
                        .enumerate()
                        .filter(|(_, (_, &s))| !s)
                        .map(|(i, (c, _))| (true, i, c.exec_prob)),
                )
                .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            match best {
                Some((true, i, _)) => sel_v[i] = true,
                Some((false, i, _)) => sel_u[i] = true,
                None => break, // everything already selected
            }
        } else {
            return d;
        }
    }
    design_from_selection(k, &choices_u, &choices_v, &sel_u, &sel_v, pdk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(k: usize, n: usize, pinned: usize) -> (ParamStore, SuperMeshHandles) {
        let mut store = ParamStore::new();
        let h = SuperMeshHandles::register(&mut store, k, n, pinned, 1);
        (store, h)
    }

    #[test]
    fn pinned_blocks_always_selected() {
        let (mut store, h) = setup(8, 4, 2);
        // Push all searchable thetas to "skip".
        for b in 0..2 {
            for side in [&h.u, &h.v] {
                *store.value_mut(side.theta[b].unwrap()) =
                    Tensor::from_vec(vec![10.0, -10.0], &[2]);
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let d = sample_topology(&store, &h, &Pdk::amf(), 1.0, 1e9, &mut rng, 8);
        // Only the 2 pinned blocks per unitary survive.
        assert_eq!(d.topo_u.blocks().len(), 2);
        assert_eq!(d.topo_v.blocks().len(), 2);
        assert_eq!(d.device_count.blocks, 4);
    }

    #[test]
    fn footprint_window_respected_with_repair() {
        let (store, h) = setup(8, 6, 1);
        let mut rng = StdRng::seed_from_u64(3);
        // A window of roughly 3–5 blocks' footprint per PTC.
        let per_block = 8.0 * Pdk::amf().ps_kum2() + 2.0 * Pdk::amf().dc_kum2();
        let d = sample_topology(
            &store,
            &h,
            &Pdk::amf(),
            3.0 * per_block,
            5.0 * per_block,
            &mut rng,
            16,
        );
        assert!(
            d.footprint_kum2 >= 2.0 * per_block && d.footprint_kum2 <= 6.0 * per_block,
            "footprint {} not near window",
            d.footprint_kum2
        );
        assert!(d.device_count.blocks >= 2);
    }

    #[test]
    fn couplers_follow_raw_sign() {
        let (mut store, h) = setup(8, 1, 1);
        let slots = store.value(h.u.t[0]).len();
        let mut t = Tensor::full(&[slots], 1.0);
        t.as_mut_slice()[0] = -1.0;
        *store.value_mut(h.u.t[0]) = t;
        let mut rng = StdRng::seed_from_u64(4);
        let d = sample_topology(&store, &h, &Pdk::amf(), 1.0, 1e9, &mut rng, 4);
        assert_eq!(d.topo_u.blocks()[0].dc_count(), 1);
    }

    #[test]
    fn device_count_consistency() {
        let (store, h) = setup(8, 3, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let d = sample_topology(&store, &h, &Pdk::amf(), 1.0, 1e9, &mut rng, 4);
        let manual = d.topo_u.ptc_device_count(&d.topo_v);
        assert_eq!(d.device_count, manual);
        assert!((d.footprint_kum2 - manual.footprint_kum2(&Pdk::amf())).abs() < 1e-9);
    }
}
