//! Fine-grained optimization traces for the paper's ablation studies
//! (Fig. 5a: ALM ρ₀ scan; Fig. 5b: footprint-penalty β scan).
//!
//! Both traces train a single-tile SuperMesh on a *matrix representability*
//! objective — fit `W(α)` to a fixed random target — which isolates the
//! studied mechanism from dataset noise while exercising the identical
//! code path as the full search.

use crate::alm::AlmState;
use crate::fpen::FootprintPenalty;
use crate::supermesh::{build_mesh_frame, ArchSample, SuperMeshHandles, SuperPtcWeight};
use adept_autodiff::Graph;
use adept_nn::optim::Adam;
use adept_nn::{ForwardCtx, ParamStore};
use adept_photonics::Pdk;
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of an ALM trace (Fig. 5a).
#[derive(Debug, Clone)]
pub struct AlmTraceConfig {
    /// PTC size.
    pub k: usize,
    /// Blocks per unitary (all pinned — depth search is disabled to isolate
    /// permutation learning).
    pub n_blocks: usize,
    /// Initial quadratic coefficient ρ₀.
    pub rho0: f64,
    /// Optimization steps.
    pub steps: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlmTraceConfig {
    fn default() -> Self {
        Self {
            k: 16,
            n_blocks: 3,
            rho0: 1e-7 * 16.0 / 8.0,
            steps: 400,
            lr: 5e-3,
            seed: 0,
        }
    }
}

/// One point of an ALM trace.
#[derive(Debug, Clone, Copy)]
pub struct AlmTracePoint {
    /// Step index.
    pub step: usize,
    /// Mean |λ| (red curves of Fig. 5a).
    pub mean_lambda: f64,
    /// Mean permutation error Δ (blue curves of Fig. 5a).
    pub mean_delta: f64,
    /// Current ρ.
    pub rho: f64,
}

/// Runs the ALM trace: SuperMesh weight training on a matrix-fitting task
/// with the permutation ALM, recording λ and Δ per step.
pub fn alm_trace(cfg: &AlmTraceConfig) -> Vec<AlmTracePoint> {
    let mut store = ParamStore::new();
    let handles =
        SuperMeshHandles::register(&mut store, cfg.k, cfg.n_blocks, cfg.n_blocks, cfg.seed);
    let weight = SuperPtcWeight::new(
        &mut store,
        "w",
        cfg.k,
        cfg.k,
        cfg.k,
        cfg.n_blocks,
        cfg.seed + 1,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
    let target = Tensor::rand_uniform(&mut rng, &[cfg.k, cfg.k], -0.5, 0.5);
    let mut alm = AlmState::new(2 * cfg.n_blocks, cfg.k, cfg.rho0, cfg.steps);
    let params: Vec<_> = handles
        .topo_params()
        .into_iter()
        .chain(weight.param_ids())
        .collect();
    let mut opt = Adam::new(cfg.lr);
    let mut out = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, cfg.seed.wrapping_add(step as u64));
        let fu = build_mesh_frame(&ctx, &handles.u, cfg.k, &vec![[0.0; 2]; cfg.n_blocks], 1.0);
        let fv = build_mesh_frame(&ctx, &handles.v, cfg.k, &vec![[0.0; 2]; cfg.n_blocks], 1.0);
        let w = weight.build(&ctx, &fu, &fv);
        let t = ctx.constant(target.clone());
        let mut loss = w.sub(t).square().mean();
        if let Some(p) = alm.penalty(&fu, 0) {
            loss = loss.add(p);
        }
        if let Some(p) = alm.penalty(&fv, cfg.n_blocks) {
            loss = loss.add(p);
        }
        let grads = graph.backward_parallel(loss);
        out.push(AlmTracePoint {
            step,
            mean_lambda: alm.mean_lambda(),
            mean_delta: AlmState::mean_delta(&[&fu, &fv]),
            rho: alm.rho(),
        });
        alm.update(&[(&fu, 0), (&fv, cfg.n_blocks)]);
        let updates = ctx.into_param_grads(&grads);
        store.zero_grads();
        store.accumulate_many(&updates);
        opt.step(&mut store, &params);
    }
    out
}

/// Configuration of a footprint-penalty trace (Fig. 5b).
#[derive(Debug, Clone)]
pub struct FpenTraceConfig {
    /// PTC size.
    pub k: usize,
    /// Super blocks per unitary.
    pub n_blocks: usize,
    /// Pinned blocks per unitary.
    pub pinned: usize,
    /// Foundry PDK.
    pub pdk: Pdk,
    /// Footprint window lower bound (1000 µm²).
    pub f_min_kum2: f64,
    /// Footprint window upper bound (1000 µm²).
    pub f_max_kum2: f64,
    /// Penalty weight β.
    pub beta: f64,
    /// Optimization steps.
    pub steps: usize,
    /// Adam learning rate for θ.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FpenTraceConfig {
    fn default() -> Self {
        Self {
            k: 16,
            n_blocks: 6,
            pinned: 1,
            pdk: Pdk::amf(),
            f_min_kum2: 480.0,
            f_max_kum2: 600.0,
            beta: 10.0,
            steps: 300,
            lr: 2e-2,
            seed: 0,
        }
    }
}

/// One point of a footprint trace.
#[derive(Debug, Clone, Copy)]
pub struct FpenTracePoint {
    /// Step index.
    pub step: usize,
    /// Expected footprint `E[F]` in 1000 µm² (red curves of Fig. 5b).
    pub expected_f_kum2: f64,
    /// Normalized penalty `L_F / β` (black curves of Fig. 5b).
    pub penalty_over_beta: f64,
}

/// Runs the footprint trace: architecture training on a matrix-fitting task
/// under the probabilistic footprint penalty, recording `E[F]` and `L_F/β`.
pub fn footprint_trace(cfg: &FpenTraceConfig) -> Vec<FpenTracePoint> {
    let mut store = ParamStore::new();
    let handles = SuperMeshHandles::register(&mut store, cfg.k, cfg.n_blocks, cfg.pinned, cfg.seed);
    let weight = SuperPtcWeight::new(
        &mut store,
        "w",
        cfg.k,
        cfg.k,
        cfg.k,
        cfg.n_blocks,
        cfg.seed + 1,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF00D);
    let target = Tensor::rand_uniform(&mut rng, &[cfg.k, cfg.k], -0.5, 0.5);
    let mut fpen = FootprintPenalty::new(cfg.pdk.clone(), cfg.f_min_kum2, cfg.f_max_kum2);
    fpen.beta = cfg.beta;
    let arch_params = handles.arch_params();
    let weight_params: Vec<_> = handles
        .topo_params()
        .into_iter()
        .chain(weight.param_ids())
        .collect();
    let mut opt_a = Adam::new(cfg.lr);
    let mut opt_w = Adam::new(5e-3);
    let mut out = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let tau = 5.0 * (0.5f64 / 5.0).powf(step as f64 / cfg.steps.max(2) as f64);
        let arch = ArchSample::draw(&mut rng, cfg.n_blocks, tau);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, cfg.seed.wrapping_add(step as u64));
        let fu = build_mesh_frame(&ctx, &handles.u, cfg.k, &arch.gumbel_u, tau);
        let fv = build_mesh_frame(&ctx, &handles.v, cfg.k, &arch.gumbel_v, tau);
        let w = weight.build(&ctx, &fu, &fv);
        let t = ctx.constant(target.clone());
        let mut loss = w.sub(t).square().mean();
        let feval = fpen.evaluate(&[&fu, &fv]);
        let penalty_value = feval
            .penalty
            .as_ref()
            .map(|p| p.value().item())
            .unwrap_or(0.0);
        if let Some(p) = feval.penalty {
            loss = loss.add(p);
        }
        out.push(FpenTracePoint {
            step,
            expected_f_kum2: feval.expected_kum2,
            penalty_over_beta: penalty_value / cfg.beta,
        });
        let grads = graph.backward_parallel(loss);
        let updates = ctx.into_param_grads(&grads);
        store.zero_grads();
        store.accumulate_many(&updates);
        opt_a.step(&mut store, &arch_params);
        opt_w.step(&mut store, &weight_params);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alm_trace_converges_to_permutations() {
        let cfg = AlmTraceConfig {
            k: 8,
            n_blocks: 2,
            rho0: 1e-4,
            steps: 150,
            lr: 1e-2,
            seed: 1,
        };
        let trace = alm_trace(&cfg);
        assert_eq!(trace.len(), 150);
        let first = trace.first().unwrap();
        let last = trace.last().unwrap();
        // Δ decreases substantially; λ grows from zero; ρ grows 1e4×.
        assert!(
            last.mean_delta < 0.5 * first.mean_delta,
            "Δ {} → {}",
            first.mean_delta,
            last.mean_delta
        );
        assert_eq!(first.mean_lambda, 0.0);
        assert!(last.mean_lambda > 0.0);
        assert!(last.rho > 1e3 * first.rho);
    }

    #[test]
    fn alm_trace_insensitive_to_rho0_order_of_magnitude() {
        // Paper claim: the method is insensitive to ρ₀ over decades.
        let run = |rho0: f64| {
            let cfg = AlmTraceConfig {
                k: 8,
                n_blocks: 2,
                rho0,
                steps: 150,
                lr: 1e-2,
                seed: 2,
            };
            alm_trace(&cfg).last().unwrap().mean_delta
        };
        let a = run(1e-5);
        let b = run(1e-3);
        assert!(a < 0.2 && b < 0.2, "Δ end values {a}, {b}");
    }

    #[test]
    fn footprint_trace_strong_beta_enters_window() {
        let cfg = FpenTraceConfig {
            k: 8,
            n_blocks: 4,
            pinned: 1,
            pdk: Pdk::amf(),
            f_min_kum2: 220.0,
            f_max_kum2: 280.0,
            beta: 10.0,
            steps: 200,
            lr: 3e-2,
            seed: 3,
        };
        let trace = footprint_trace(&cfg);
        let last = trace.last().unwrap();
        // With β = 10, E[F] settles near/inside the (hatted) window.
        assert!(
            last.expected_f_kum2 <= 1.1 * cfg.f_max_kum2
                && last.expected_f_kum2 >= 0.8 * cfg.f_min_kum2,
            "E[F] ended at {}",
            last.expected_f_kum2
        );
    }

    #[test]
    fn footprint_trace_weak_beta_ignores_window() {
        // With β ≈ 0, the penalty is too weak to move E[F] into a far-away
        // window.
        let cfg = FpenTraceConfig {
            k: 8,
            n_blocks: 4,
            pinned: 4, // depth fixed: E[F] cannot move at all
            pdk: Pdk::amf(),
            f_min_kum2: 100.0,
            f_max_kum2: 120.0,
            beta: 1e-6,
            steps: 50,
            lr: 3e-2,
            seed: 4,
        };
        let trace = footprint_trace(&cfg);
        let last = trace.last().unwrap();
        assert!(last.expected_f_kum2 > 1.5 * cfg.f_max_kum2);
    }
}
