//! The two-stage ADEPT search flow (paper Fig. 2).
//!
//! Stage 1 (*SuperMesh warmup*) trains only weights — phases, Σ, couplers
//! and relaxed permutations — for initial exploration. Stage 2 (*SuperMesh
//! search*) alternates weight steps and architecture steps (ratio 3:1) with
//! an annealed Gumbel-softmax temperature, the ALM permutation penalty and
//! the probabilistic footprint penalty. Midway, stochastic permutation
//! legalization (SPL) snaps every crossing layer to a legal permutation and
//! training continues. Finally a SubMesh honoring the footprint window is
//! sampled from the learned distribution.

use crate::alm::AlmState;
use crate::fpen::FootprintPenalty;
use crate::sample::{sample_topology, SampledDesign};
use crate::spl;
use crate::supermesh::{
    build_mesh_frame, prebuild_super_ptc_weights, ArchSample, MeshFrame, SuperMeshHandles,
    SuperPtcWeight,
};
use adept_autodiff::{Graph, Var};
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_nn::layers::{cols_to_nchw, im2col_var_scratch, BatchNorm2d, Layer};
use adept_nn::optim::{Adam, CosineLr};
use adept_nn::{ForwardCtx, ParamId, ParamStore};
use adept_photonics::{block_count_bounds, Pdk};
use adept_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Full configuration of one ADEPT search run.
#[derive(Debug, Clone)]
pub struct AdeptConfig {
    /// PTC size `K`.
    pub k: usize,
    /// Foundry PDK.
    pub pdk: Pdk,
    /// Footprint window lower bound (1000 µm²).
    pub f_min_kum2: f64,
    /// Footprint window upper bound (1000 µm²).
    pub f_max_kum2: f64,
    /// Total epochs (paper: 90).
    pub epochs: usize,
    /// Warmup epochs training weights only (paper: 10).
    pub warmup_epochs: usize,
    /// Epoch at which SPL legalizes the permutations (paper: 50).
    pub spl_epoch: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight learning rate (paper: 1e-3 with cosine decay).
    pub lr: f64,
    /// Architecture learning rate.
    pub lr_arch: f64,
    /// Gumbel-softmax temperature at epoch 0 (paper: 5).
    pub tau_start: f64,
    /// Gumbel-softmax temperature at the last epoch (paper: 0.5).
    pub tau_end: f64,
    /// Weight steps per architecture step in the search stage (paper: 3).
    pub weight_steps_per_arch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Proxy dataset image size (square).
    pub image_size: usize,
    /// Proxy CNN channel count (paper: 32; repro default is smaller).
    pub channels: usize,
    /// Number of classes.
    pub classes: usize,
    /// Proxy training-set size.
    pub n_train: usize,
    /// Proxy test-set size.
    pub n_test: usize,
    /// Upper cap on super blocks per unitary (compute guard; the analytic
    /// `B_max/2` is used when smaller).
    pub max_blocks_per_side: usize,
    /// Initial ALM coefficient ρ₀. The paper's value (`1e-7·K/8`) is tuned
    /// for its ~10⁵-step schedule; shorter schedules need a larger ρ₀ so
    /// the permutations harden before SPL.
    pub alm_rho0: f64,
    /// Ablation switches (all off for the paper's full method).
    pub ablation: AblationFlags,
}

/// Ablation switches for the design choices the paper calls out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AblationFlags {
    /// Drop the ALM penalty and multiplier updates (permutations are only
    /// legalized by SPL / the final projection).
    pub no_alm: bool,
    /// Skip the mid-training SPL step (legalization happens only once, at
    /// export time).
    pub no_spl: bool,
    /// Pin every super block on (disables the Gumbel-softmax depth search;
    /// the design always uses `B_max/2` blocks per unitary).
    pub fixed_depth: bool,
}

impl Default for AdeptConfig {
    /// The CPU-friendly [`AdeptConfig::quick`] schedule at `K = 8` on the
    /// AMF PDK with the paper's Table 1 "a1" footprint window
    /// (240–300 kµm²).
    fn default() -> Self {
        Self::quick(8, Pdk::amf(), 240.0, 300.0)
    }
}

impl AdeptConfig {
    /// A CPU-friendly configuration that still exercises every mechanism:
    /// small proxy CNN, short schedule.
    pub fn quick(k: usize, pdk: Pdk, f_min_kum2: f64, f_max_kum2: f64) -> Self {
        Self {
            k,
            pdk,
            f_min_kum2,
            f_max_kum2,
            epochs: 18,
            warmup_epochs: 3,
            spl_epoch: 10,
            batch_size: 16,
            lr: 4e-3,
            lr_arch: 8e-3,
            tau_start: 5.0,
            tau_end: 0.5,
            weight_steps_per_arch: 3,
            seed: 0,
            image_size: 10,
            channels: 6,
            classes: 10,
            n_train: 320,
            n_test: 160,
            max_blocks_per_side: 10,
            alm_rho0: 1e-3 * k as f64 / 8.0,
            ablation: AblationFlags::default(),
        }
    }

    /// A configuration close to the paper's schedule (expensive on CPU).
    pub fn paper_like(k: usize, pdk: Pdk, f_min_kum2: f64, f_max_kum2: f64) -> Self {
        Self {
            epochs: 90,
            warmup_epochs: 10,
            spl_epoch: 50,
            batch_size: 32,
            lr: 1e-3,
            lr_arch: 2e-3,
            image_size: 12,
            channels: 8,
            n_train: 512,
            n_test: 256,
            max_blocks_per_side: 12,
            alm_rho0: 1e-5 * k as f64 / 8.0,
            ..Self::quick(k, pdk, f_min_kum2, f_max_kum2)
        }
    }
}

/// Per-epoch search statistics.
#[derive(Debug, Clone)]
pub struct SearchEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Gumbel temperature used.
    pub tau: f64,
    /// Mean task loss.
    pub train_loss: f64,
    /// Mean permutation error Δ (paper Fig. 5a blue).
    pub mean_delta: f64,
    /// Mean |λ| (paper Fig. 5a red).
    pub mean_lambda: f64,
    /// Current ρ.
    pub rho: f64,
    /// Expected footprint `E[F]` (1000 µm²).
    pub expected_f_kum2: f64,
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The sampled concrete design.
    pub design: SampledDesign,
    /// Analytic total-block bounds used (Eq. 16).
    pub b_min: usize,
    /// Analytic upper bound.
    pub b_max: usize,
    /// Super blocks per unitary actually used.
    pub blocks_per_side: usize,
    /// Per-epoch statistics.
    pub history: Vec<SearchEpochStats>,
    /// Proxy-task accuracy of the SuperMesh model after search (deterministic
    /// gates, clean phases).
    pub proxy_accuracy: f64,
}

impl SearchOutcome {
    /// Footprint of the sampled design in 1000 µm².
    pub fn footprint_kum2(&self) -> f64 {
        self.design.footprint_kum2
    }

    /// Device count of the sampled design.
    pub fn device_count(&self) -> adept_photonics::DeviceCount {
        self.design.device_count
    }

    /// The frozen design as an `adept_nn` model backend: every conv/linear
    /// weight becomes a trainable `PtcWeight` whose unitaries walk the
    /// searched topologies through the same batched builder as every other
    /// mesh family.
    pub fn backend(&self) -> adept_nn::models::Backend {
        adept_nn::models::Backend::topology(self.design.topo_u.clone(), self.design.topo_v.clone())
    }

    /// Instantiates the proxy CNN on the searched backend, registering
    /// fresh parameters in `store`. This is the frozen-design export path:
    /// the returned model trains like any other, and because its layers
    /// lower (`adept_nn::lower_model`), it can be compiled straight into a
    /// tape-free `adept-infer` execution plan for serving.
    pub fn frozen_proxy_cnn(
        &self,
        store: &mut ParamStore,
        input: adept_nn::models::InputShape,
        channels: usize,
        classes: usize,
        seed: u64,
    ) -> adept_nn::layers::Sequential {
        adept_nn::models::proxy_cnn(store, input, channels, classes, &self.backend(), seed)
    }

    /// Freezes a trained frozen-design model into a versioned
    /// [`adept_nn::Checkpoint`]: the searched topology descriptor, every
    /// parameter as exact bits, the BN running statistics, and the serving
    /// noise seed / fault scenario. `model`/`store` must come from
    /// [`SearchOutcome::frozen_proxy_cnn`] with the same
    /// `input`/`channels`/`classes`/`seed`, so a later
    /// `Checkpoint::instantiate` re-registers parameters identically.
    #[allow(clippy::too_many_arguments)]
    pub fn freeze_checkpoint(
        &self,
        model: &adept_nn::layers::Sequential,
        store: &ParamStore,
        input: adept_nn::models::InputShape,
        channels: usize,
        classes: usize,
        seed: u64,
        noise_seed: u64,
        fault: Option<&adept_photonics::FaultScenario>,
    ) -> adept_nn::Checkpoint {
        adept_nn::Checkpoint::capture(
            adept_nn::ModelArch::ProxyCnn {
                input,
                channels,
                classes,
                seed,
            },
            &self.backend(),
            model,
            store,
            noise_seed,
            fault,
        )
    }
}

/// The proxy 2-layer CNN whose conv/FC weights are SuperMesh PTCs.
struct SearchModel {
    handles: SuperMeshHandles,
    conv1: SuperPtcWeight,
    b1: ParamId,
    bn1: BatchNorm2d,
    conv2: SuperPtcWeight,
    b2: ParamId,
    bn2: BatchNorm2d,
    fc: SuperPtcWeight,
    bfc: ParamId,
    g1: Conv2dGeometry,
    g2: Conv2dGeometry,
    pool: usize,
    channels: usize,
    /// Patch-matrix scratch buffers reused across search steps.
    cols1: Tensor,
    cols2: Tensor,
}

impl SearchModel {
    fn new(store: &mut ParamStore, cfg: &AdeptConfig, handles: SuperMeshHandles) -> Self {
        let n_blocks = handles.n_blocks;
        let k = cfg.k;
        let g1 = Conv2dGeometry {
            in_channels: 1,
            in_h: cfg.image_size,
            in_w: cfg.image_size,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let g2 = Conv2dGeometry {
            in_channels: cfg.channels,
            in_h: g1.out_h(),
            in_w: g1.out_w(),
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let pool = (g2.out_h() / 3).max(1);
        let fh = g2.out_h() / pool;
        let fw = g2.out_w() / pool;
        let conv1 = SuperPtcWeight::new(
            store,
            "conv1",
            g1.col_rows(),
            cfg.channels,
            k,
            n_blocks,
            cfg.seed + 10,
        );
        let b1 = store.register("conv1.b", Tensor::zeros(&[cfg.channels]), 0.0);
        let bn1 = BatchNorm2d::new(store, "bn1", cfg.channels);
        let conv2 = SuperPtcWeight::new(
            store,
            "conv2",
            g2.col_rows(),
            cfg.channels,
            k,
            n_blocks,
            cfg.seed + 11,
        );
        let b2 = store.register("conv2.b", Tensor::zeros(&[cfg.channels]), 0.0);
        let bn2 = BatchNorm2d::new(store, "bn2", cfg.channels);
        let fc = SuperPtcWeight::new(
            store,
            "fc",
            cfg.channels * fh * fw,
            cfg.classes,
            k,
            n_blocks,
            cfg.seed + 12,
        );
        let bfc = store.register("fc.b", Tensor::zeros(&[cfg.classes]), 0.0);
        Self {
            handles,
            conv1,
            b1,
            bn1,
            conv2,
            b2,
            bn2,
            fc,
            bfc,
            g1,
            g2,
            pool,
            channels: cfg.channels,
            cols1: Tensor::default(),
            cols2: Tensor::default(),
        }
    }

    /// Weight-group parameters (everything except θ).
    fn weight_params(&self) -> Vec<ParamId> {
        let mut ids = self.handles.topo_params();
        ids.extend(self.conv1.param_ids());
        ids.extend(self.conv2.param_ids());
        ids.extend(self.fc.param_ids());
        ids.push(self.b1);
        ids.push(self.b2);
        ids.push(self.bfc);
        ids.extend(self.bn1.param_ids());
        ids.extend(self.bn2.param_ids());
        ids
    }

    /// Forward pass; returns logits plus the step's mesh frames.
    fn forward<'g>(
        &mut self,
        ctx: &ForwardCtx<'g, '_>,
        x: Var<'g>,
        arch: &ArchSample,
    ) -> (Var<'g>, MeshFrame<'g>, MeshFrame<'g>) {
        let k = self.handles.k;
        let fu = build_mesh_frame(ctx, &self.handles.u, k, &arch.gumbel_u, arch.tau);
        let fv = build_mesh_frame(ctx, &self.handles.v, k, &arch.gumbel_v, arch.tau);
        // All three weights depend only on the frames, not on activations:
        // build their mesh walks concurrently, spliced in layer order.
        prebuild_super_ptc_weights(ctx, &[&self.conv1, &self.conv2, &self.fc], &fu, &fv);
        let n = x.shape()[0];
        // conv1 → bn → relu
        let w1 = self.conv1.build(ctx, &fu, &fv);
        let cols = im2col_var_scratch(x, self.g1, &mut self.cols1);
        let y = w1.matmul(cols);
        let y = cols_to_nchw(y, n, self.channels, self.g1.out_h(), self.g1.out_w());
        let y = y.add(ctx.param(self.b1).reshape(&[self.channels, 1, 1]));
        let y = self.bn1.forward(ctx, y).relu();
        // conv2 → bn → relu
        let w2 = self.conv2.build(ctx, &fu, &fv);
        let cols = im2col_var_scratch(y, self.g2, &mut self.cols2);
        let y = w2.matmul(cols);
        let y = cols_to_nchw(y, n, self.channels, self.g2.out_h(), self.g2.out_w());
        let y = y.add(ctx.param(self.b2).reshape(&[self.channels, 1, 1]));
        let y = self.bn2.forward(ctx, y).relu();
        // pool → flatten → fc
        let mut pool = adept_nn::layers::AvgPool2d::new(self.pool);
        let y = pool.forward(ctx, y);
        let feat: usize = y.shape()[1..].iter().product();
        let y = y.reshape(&[n, feat]);
        let wf = self.fc.build(ctx, &fu, &fv);
        let logits = y.matmul(wf.transpose()).add(ctx.param(self.bfc));
        (logits, fu, fv)
    }
}

/// Runs the full ADEPT search.
///
/// # Panics
///
/// Panics on inconsistent configuration (empty footprint window, zero
/// epochs, image too small).
pub fn search(cfg: &AdeptConfig) -> SearchOutcome {
    assert!(cfg.epochs > 0, "need at least one epoch");
    let bounds = block_count_bounds(cfg.k, &cfg.pdk, cfg.f_min_kum2, cfg.f_max_kum2);
    let blocks_per_side = (bounds.b_max / 2).clamp(1, cfg.max_blocks_per_side);
    let pinned = if cfg.ablation.fixed_depth {
        blocks_per_side
    } else {
        (bounds.b_min / 2).clamp(1, blocks_per_side)
    };

    let mut store = ParamStore::new();
    let handles = SuperMeshHandles::register(&mut store, cfg.k, blocks_per_side, pinned, cfg.seed);
    let mut model = SearchModel::new(&mut store, cfg, handles.clone());

    let data_cfg = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(cfg.image_size)
        .with_classes(cfg.classes)
        .with_sizes(cfg.n_train, cfg.n_test);
    let (train, test) = data_cfg.generate(cfg.seed ^ 0xDA7A);

    let steps_per_epoch = cfg.n_train.div_ceil(cfg.batch_size).max(1);
    let mut alm = AlmState::new(
        2 * blocks_per_side,
        cfg.k,
        cfg.alm_rho0,
        // ρ should reach its ceiling around the SPL epoch, when the
        // permutations must have hardened.
        (cfg.spl_epoch.max(1) * steps_per_epoch).max(1),
    );
    let fpen = FootprintPenalty::new(cfg.pdk.clone(), cfg.f_min_kum2, cfg.f_max_kum2);

    let weight_params = model.weight_params();
    let arch_params = handles.arch_params();
    let mut opt_w = Adam::new(cfg.lr);
    let mut opt_a = Adam::new(cfg.lr_arch);
    let sched = CosineLr::new(cfg.lr, cfg.lr * 0.1, cfg.epochs * steps_per_epoch);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;
    let mut phase_counter = 0usize;

    for epoch in 0..cfg.epochs {
        // Exponential τ anneal.
        let frac = if cfg.epochs > 1 {
            epoch as f64 / (cfg.epochs - 1) as f64
        } else {
            1.0
        };
        let tau = cfg.tau_start * (cfg.tau_end / cfg.tau_start).powf(frac);

        // SPL at the configured epoch.
        if epoch == cfg.spl_epoch && !cfg.ablation.no_spl {
            legalize_all(&mut store, &handles, &mut rng);
        }

        let data = train.shuffled(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut last_expected = 0.0;
        let mut start = 0;
        while start < data.len() {
            let count = cfg.batch_size.min(data.len() - start);
            let (images, labels) = data.batch(start, count);
            start += count;
            let arch_phase = epoch >= cfg.warmup_epochs
                && phase_counter % (cfg.weight_steps_per_arch + 1) == cfg.weight_steps_per_arch;
            phase_counter += 1;

            let arch = ArchSample::draw(&mut rng, blocks_per_side, tau);
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, cfg.seed.wrapping_add(step as u64));
            let x = graph.constant(images);
            let (logits, fu, fv) = model.forward(&ctx, x, &arch);
            let task = logits.cross_entropy_logits(&labels);
            epoch_loss += task.value().item();
            batches += 1;
            let mut loss = task;
            if !cfg.ablation.no_alm {
                if let Some(p) = alm.penalty(&fu, 0) {
                    loss = loss.add(p);
                }
                if let Some(p) = alm.penalty(&fv, blocks_per_side) {
                    loss = loss.add(p);
                }
            }
            let feval = fpen.evaluate(&[&fu, &fv]);
            last_expected = feval.expected_kum2;
            if let Some(p) = feval.penalty {
                loss = loss.add(p);
            }
            // Per-weight build segments replay concurrently; bit-identical
            // to the serial backward at any thread count.
            let grads = graph.backward_parallel(loss);
            if !arch_phase && !cfg.ablation.no_alm {
                alm.update(&[(&fu, 0), (&fv, blocks_per_side)]);
            }
            let updates = ctx.into_param_grads(&grads);
            store.zero_grads();
            store.accumulate_many(&updates);
            if arch_phase {
                opt_a.step(&mut store, &arch_params);
            } else {
                opt_w.set_lr(sched.lr(step));
                opt_w.step(&mut store, &weight_params);
            }
            step += 1;
        }
        // Epoch stats from a fresh deterministic frame.
        let (mean_delta, mean_lambda) = {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, false, 0);
            let fu = build_mesh_frame(
                &ctx,
                &handles.u,
                cfg.k,
                &vec![[0.0; 2]; blocks_per_side],
                tau,
            );
            let fv = build_mesh_frame(
                &ctx,
                &handles.v,
                cfg.k,
                &vec![[0.0; 2]; blocks_per_side],
                tau,
            );
            (AlmState::mean_delta(&[&fu, &fv]), alm.mean_lambda())
        };
        history.push(SearchEpochStats {
            epoch,
            tau,
            train_loss: epoch_loss / batches.max(1) as f64,
            mean_delta,
            mean_lambda,
            rho: alm.rho(),
            expected_f_kum2: last_expected,
        });
    }

    // Ensure legality even when spl_epoch >= epochs.
    legalize_all(&mut store, &handles, &mut rng);

    // Proxy accuracy with deterministic gates.
    let proxy_accuracy = {
        let arch = ArchSample::deterministic(blocks_per_side, cfg.tau_end);
        let mut correct = 0usize;
        let mut startb = 0;
        while startb < test.len() {
            let count = cfg.batch_size.min(test.len() - startb);
            let (images, labels) = test.batch(startb, count);
            startb += count;
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, false, 0);
            let x = graph.constant(images);
            let (logits, _, _) = model.forward(&ctx, x, &arch);
            let lv = logits.value();
            for (i, &label) in labels.iter().enumerate() {
                let row = lv.row(i);
                if row.argmax() == label {
                    correct += 1;
                }
            }
        }
        correct as f64 / test.len().max(1) as f64
    };

    let design = sample_topology(
        &store,
        &handles,
        &cfg.pdk,
        cfg.f_min_kum2,
        cfg.f_max_kum2,
        &mut rng,
        64,
    );
    SearchOutcome {
        design,
        b_min: bounds.b_min,
        b_max: bounds.b_max,
        blocks_per_side,
        history,
        proxy_accuracy,
    }
}

/// Applies SPL to every block's relaxed permutation and writes the legal
/// permutation matrix back into the raw parameter.
fn legalize_all(store: &mut ParamStore, handles: &SuperMeshHandles, rng: &mut StdRng) {
    let sides: Vec<Vec<ParamId>> = vec![handles.u.perm.clone(), handles.v.perm.clone()];
    for perms in sides {
        for id in perms {
            let relaxed = {
                let graph = Graph::new();
                let ctx = ForwardCtx::new(&graph, store, false, 0);
                crate::supermesh::relaxed_permutation(&ctx, ctx.param(id)).value()
            };
            let legal = spl::legalize(&relaxed, rng, 64, 0.05);
            *store.value_mut(id) = legal.to_matrix();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_linalg::Permutation;

    fn tiny_cfg() -> AdeptConfig {
        let mut cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
        cfg.epochs = 4;
        cfg.warmup_epochs = 1;
        cfg.spl_epoch = 2;
        cfg.n_train = 48;
        cfg.n_test = 24;
        cfg.batch_size = 16;
        cfg.image_size = 6;
        cfg.channels = 3;
        cfg.classes = 4;
        cfg.max_blocks_per_side = 3;
        cfg
    }

    #[test]
    fn search_produces_legal_in_window_design() {
        let cfg = tiny_cfg();
        let out = search(&cfg);
        // Every crossing layer is a legal permutation.
        for topo in [&out.design.topo_u, &out.design.topo_v] {
            for b in topo.blocks() {
                assert!(Permutation::matrix_is_permutation(
                    &b.perm.to_matrix(),
                    1e-9
                ));
            }
        }
        // Block count within the analytic bounds (paper Eq. 16) and at
        // least the pinned minimum.
        assert!(out.design.device_count.blocks >= 2);
        assert!(out.design.device_count.blocks <= out.b_max);
        // Footprint reported consistently.
        assert!(
            (out.footprint_kum2() - out.design.device_count.footprint_kum2(&cfg.pdk)).abs() < 1e-9
        );
        assert_eq!(out.history.len(), cfg.epochs);
        // Training makes progress at some point (SPL mid-run may bump the
        // loss back up, so compare the best epoch against the first).
        let best = out
            .history
            .iter()
            .map(|h| h.train_loss)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < out.history[0].train_loss,
            "{:?}",
            out.history.iter().map(|h| h.train_loss).collect::<Vec<_>>()
        );
    }

    #[test]
    fn search_permutation_error_vanishes_after_spl() {
        let cfg = tiny_cfg();
        let out = search(&cfg);
        let after_spl = &out.history[cfg.spl_epoch];
        assert!(
            after_spl.mean_delta < 1e-6,
            "Δ after SPL is {}",
            after_spl.mean_delta
        );
    }

    #[test]
    fn tau_anneals_downward() {
        let cfg = tiny_cfg();
        let out = search(&cfg);
        assert!(out.history[0].tau > out.history.last().unwrap().tau);
        assert!((out.history[0].tau - cfg.tau_start).abs() < 1e-9);
    }
}
