//! ADEPT: automatic differentiable design of photonic tensor cores.
//!
//! This crate is the reproduction of the paper's core contribution (Gu et
//! al., DAC 2022): a fully differentiable search over photonic tensor core
//! (PTC) circuit topologies under foundry footprint constraints.
//!
//! The search space is the PS→DC→CR block mesh of `adept-photonics`; the
//! searched quantities are
//!
//! * the number of blocks `B_U`, `B_V` — relaxed with per-block
//!   Gumbel-softmax *skip gates* over a probabilistic [`supermesh`]
//!   (paper Eq. 5–7), bounded analytically from the footprint window
//!   (Eq. 16);
//! * the crossing permutations `P` — learned with a reparametrized
//!   doubly-stochastic relaxation plus an augmented-Lagrangian penalty
//!   ([`alm`], Eq. 8–12), legalized by stochastic permutation legalization
//!   ([`spl`], Eq. 13);
//! * the coupler placements `T` — binarization-aware training with a
//!   clipped straight-through estimator (Eq. 14);
//!
//! under the probabilistic footprint penalty of [`fpen`] (Eq. 15) for a
//! given PDK. [`search()`](search::search) ties everything together in the two-stage
//! warmup/search flow of the paper's Fig. 2 and exports the winning design
//! as a [`adept_photonics::BlockMeshTopology`] ready for variation-aware
//! retraining with `adept-nn`.
//!
//! # Examples
//!
//! ```no_run
//! use adept::search::{AdeptConfig, search};
//! use adept_photonics::Pdk;
//!
//! let cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
//! let outcome = search(&cfg);
//! println!(
//!     "searched PTC: {} blocks, footprint {:.0} kµm²",
//!     outcome.device_count().blocks,
//!     outcome.footprint_kum2()
//! );
//! ```

pub mod alm;
pub mod fpen;
pub mod sample;
pub mod search;
pub mod spl;
pub mod supermesh;
pub mod traces;

pub use sample::{sample_topology, SampledDesign};
pub use search::{search, AblationFlags, AdeptConfig, SearchOutcome};
pub use supermesh::{ArchSample, BoundSuperWeight, MeshFrame, SuperMeshHandles, SuperPtcWeight};
