//! PDK-adaptive probabilistic footprint penalty (paper Eq. 15).
//!
//! The expected PTC footprint under the block-sampling distribution is
//! `E[F] = Σ_b m_{b,2}·F_b`. Crossing counting is non-differentiable, so
//! the penalty uses the proxy `β_CR·‖P̃_b − I‖²_F·F_CR` while the *branch
//! decision* (over / under / inside the constraint window) is made on the
//! true expectation with exact crossing counts.

use crate::spl;
use crate::supermesh::MeshFrame;
use adept_autodiff::Var;
use adept_photonics::Pdk;
use adept_tensor::Tensor;

/// Configuration of the penalty.
#[derive(Debug, Clone)]
pub struct FootprintPenalty {
    /// Penalty weight β (paper uses 10).
    pub beta: f64,
    /// Crossing-proxy weight β_CR (paper uses 100).
    pub beta_cr: f64,
    /// Lower footprint bound in 1000 µm².
    pub f_min_kum2: f64,
    /// Upper footprint bound in 1000 µm².
    pub f_max_kum2: f64,
    /// Device footprints.
    pub pdk: Pdk,
}

/// Result of evaluating the penalty for one step.
pub struct FootprintEval<'g> {
    /// True expected footprint `E[F]` (exact crossing counts), in 1000 µm².
    pub expected_kum2: f64,
    /// The differentiable penalty term (`None` inside the window).
    pub penalty: Option<Var<'g>>,
    /// Which branch fired: +1 over budget, −1 under budget, 0 inside.
    pub branch: i8,
}

impl FootprintPenalty {
    /// Creates the penalty with the paper's default weights.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn new(pdk: Pdk, f_min_kum2: f64, f_max_kum2: f64) -> Self {
        assert!(
            f_max_kum2 > f_min_kum2 && f_min_kum2 > 0.0,
            "invalid window [{f_min_kum2}, {f_max_kum2}]"
        );
        Self {
            beta: 10.0,
            beta_cr: 100.0,
            f_min_kum2,
            f_max_kum2,
            pdk,
        }
    }

    /// The differentiable expected-footprint proxy `E[F_prox]` over all
    /// frames, in 1000 µm².
    pub fn expected_proxy<'g>(&self, frames: &[&MeshFrame<'g>]) -> Var<'g> {
        let mut total: Option<Var<'g>> = None;
        for frame in frames {
            let k = frame.k;
            for block in &frame.blocks {
                let graph = block.p_relaxed.graph();
                // #DC as a differentiable function of the binarized t
                // (Eq. 15): Σ 2Q(t)/(√2−2) + 2/(2−√2) — 1 per placed DC.
                let s2 = std::f64::consts::SQRT_2;
                let dc_count = block
                    .t_binary
                    .mul_scalar(2.0 / (s2 - 2.0))
                    .add_scalar(2.0 / (2.0 - s2))
                    .sum();
                // Crossing proxy: β_CR·‖P̃ − I‖²_F.
                let eye = graph.constant(Tensor::eye(k));
                let cr_proxy = block
                    .p_relaxed
                    .sub(eye)
                    .square()
                    .sum()
                    .mul_scalar(self.beta_cr);
                let f_b = dc_count
                    .mul_scalar(self.pdk.dc_kum2())
                    .add(cr_proxy.mul_scalar(self.pdk.cr_kum2()))
                    .add_scalar(k as f64 * self.pdk.ps_kum2());
                let weighted = block.exec_prob.reshape(&[]).mul(f_b);
                total = Some(match total {
                    Some(t) => t.add(weighted),
                    None => weighted,
                });
            }
        }
        total.expect("at least one block")
    }

    /// The true expected footprint with exact crossing counts, in 1000 µm².
    pub fn expected_exact(&self, frames: &[&MeshFrame<'_>]) -> f64 {
        let mut total = 0.0;
        for frame in frames {
            let k = frame.k;
            for block in &frame.blocks {
                let p = block.exec_prob.value().item();
                let dc = block
                    .t_binary
                    .value()
                    .as_slice()
                    .iter()
                    .filter(|&&t| t < 0.9)
                    .count();
                let perm = spl::greedy_assign(&block.p_relaxed.value());
                let cr = perm.crossing_count();
                let f_b = k as f64 * self.pdk.ps_kum2()
                    + dc as f64 * self.pdk.dc_kum2()
                    + cr as f64 * self.pdk.cr_kum2();
                total += p * f_b;
            }
        }
        total
    }

    /// Evaluates the penalty (Eq. 15) for one step.
    pub fn evaluate<'g>(&self, frames: &[&MeshFrame<'g>]) -> FootprintEval<'g> {
        let expected = self.expected_exact(frames);
        let f_max_hat = 0.95 * self.f_max_kum2;
        let f_min_hat = 1.05 * self.f_min_kum2;
        let (penalty, branch) = if expected > f_max_hat {
            let prox = self.expected_proxy(frames);
            (Some(prox.mul_scalar(self.beta / f_max_hat)), 1)
        } else if expected < f_min_hat {
            let prox = self.expected_proxy(frames);
            (Some(prox.mul_scalar(-self.beta / f_min_hat)), -1)
        } else {
            (None, 0)
        };
        FootprintEval {
            expected_kum2: expected,
            penalty,
            branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supermesh::{build_mesh_frame, SuperMeshHandles};
    use adept_autodiff::Graph;
    use adept_nn::{ForwardCtx, ParamStore};
    use adept_photonics::DeviceCount;

    fn setup(k: usize, n: usize, pinned: usize) -> (ParamStore, SuperMeshHandles) {
        let mut store = ParamStore::new();
        let h = SuperMeshHandles::register(&mut store, k, n, pinned, 1);
        (store, h)
    }

    #[test]
    fn exact_expectation_matches_manual_count() {
        let (mut store, h) = setup(8, 2, 2); // all pinned → probabilities 1
                                             // Set couplers: block 0 all present (t<0), block 1 none (t>0).
        let slots0 = store.value(h.u.t[0]).len();
        *store.value_mut(h.u.t[0]) = Tensor::full(&[slots0], -1.0);
        let slots1 = store.value(h.u.t[1]).len();
        *store.value_mut(h.u.t[1]) = Tensor::full(&[slots1], 1.0);
        let pen = FootprintPenalty::new(Pdk::amf(), 100.0, 200.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 8, &[[0.0; 2]; 2], 1.0);
        let got = pen.expected_exact(&[&frame]);
        // Identity perms → 0 crossings. PS = 8 per block.
        let want = DeviceCount::new(16, slots0, 0, 2).footprint_kum2(&Pdk::amf());
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn branch_selection() {
        let (store, h) = setup(8, 3, 3);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 8, &[[0.0; 2]; 3], 1.0);
        // Expected F with 3 pinned blocks ≈ 3·(8·6.8 + ~2·1.5) ≈ 170 kµm².
        let over = FootprintPenalty::new(Pdk::amf(), 10.0, 50.0).evaluate(&[&frame]);
        assert_eq!(over.branch, 1);
        assert!(over.penalty.unwrap().value().item() > 0.0);
        let under = FootprintPenalty::new(Pdk::amf(), 900.0, 1000.0).evaluate(&[&frame]);
        assert_eq!(under.branch, -1);
        assert!(under.penalty.unwrap().value().item() < 0.0);
        let inside = FootprintPenalty::new(Pdk::amf(), 100.0, 300.0).evaluate(&[&frame]);
        assert_eq!(inside.branch, 0);
        assert!(inside.penalty.is_none());
    }

    #[test]
    fn over_budget_penalty_reduces_execute_probability() {
        // Gradient of the over-budget penalty must push θ toward skipping.
        let (mut store, h) = setup(8, 2, 0);
        // A budget so tiny the over branch stays active: the equilibrium
        // point (E[F] entering the window) must lie below the 0.4 check.
        let pen = FootprintPenalty::new(Pdk::amf(), 2.0, 6.0);
        for _ in 0..80 {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let frame = build_mesh_frame(&ctx, &h.u, 8, &[[0.0; 2]; 2], 1.0);
            let eval = pen.evaluate(&[&frame]);
            let Some(p) = eval.penalty else { break };
            let grads = graph.backward(p);
            let updates = ctx.into_param_grads(&grads);
            store.zero_grads();
            store.accumulate_many(&updates);
            for b in 0..2 {
                let id = h.u.theta[b].unwrap();
                let g = store.grad(id).clone();
                store.apply_delta(id, &g.scale(-0.5));
            }
        }
        // Execute probabilities must have dropped below the 0.5 start.
        for b in 0..2 {
            let th = store.value(h.u.theta[b].unwrap());
            let p_exec = th.as_slice()[1].exp() / (th.as_slice()[0].exp() + th.as_slice()[1].exp());
            assert!(p_exec < 0.4, "block {b} exec prob {p_exec}");
        }
    }

    #[test]
    fn proxy_tracks_dc_count_direction() {
        // More couplers → larger differentiable proxy.
        let (mut store, h) = setup(8, 1, 1);
        let pen = FootprintPenalty::new(Pdk::amf(), 10.0, 20.0);
        let slots = store.value(h.u.t[0]).len();
        let eval_proxy = |store: &ParamStore| -> f64 {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, store, true, 0);
            let frame = build_mesh_frame(&ctx, &h.u, 8, &[[0.0; 2]], 1.0);
            pen.expected_proxy(&[&frame]).value().item()
        };
        *store.value_mut(h.u.t[0]) = Tensor::full(&[slots], 1.0); // none
        let none = eval_proxy(&store);
        *store.value_mut(h.u.t[0]) = Tensor::full(&[slots], -1.0); // all
        let all = eval_proxy(&store);
        assert!(all > none + (slots as f64 - 0.5) * Pdk::amf().dc_kum2());
    }
}
