//! Stochastic permutation legalization (SPL, paper Eq. 13 and Fig. 3).
//!
//! ALM does not guarantee convergence to a legal permutation — the
//! relaxation can stall on saddle points such as rows tying between two
//! columns. SPL forces legality: sharpen (hardmax), project onto the
//! orthogonal manifold via the SVD polar factor to escape the saddle, add
//! small Gaussian tie-breaking noise, and re-sharpen; repeat until the
//! result is a legal permutation without inflating the crossing count.

use adept_linalg::{polar_orthogonal, Permutation};
use adept_tensor::Tensor;
use rand::Rng;

/// Row-wise hardmax: each row becomes one-hot at its argmax (softmax with
/// τ→0⁺ in the paper's notation). The result may be column-illegal.
pub fn row_hardmax(p: &Tensor) -> Tensor {
    let (r, c) = (p.shape()[0], p.shape()[1]);
    let mut out = Tensor::zeros(&[r, c]);
    for i in 0..r {
        let j = p.row(i).argmax();
        out.as_mut_slice()[i * c + j] = 1.0;
    }
    out
}

/// Whether a 0/1 matrix is a legal permutation matrix.
pub fn is_legal(p: &Tensor) -> bool {
    Permutation::matrix_is_permutation(p, 1e-9)
}

/// Legalizes a relaxed permutation via SPL.
///
/// Returns the legal permutation with the smallest crossing count found
/// within `max_tries` stochastic proposals (σ is the tie-breaking noise
/// scale, 0.05–0.1 works well). Falls back to the optimal Hungarian
/// assignment ([`adept_linalg::max_weight_permutation`]) if no stochastic
/// proposal is legal — the fallback always succeeds.
///
/// # Panics
///
/// Panics if `p` is not square.
pub fn legalize<R: Rng + ?Sized>(
    p: &Tensor,
    rng: &mut R,
    max_tries: usize,
    sigma: f64,
) -> Permutation {
    assert_eq!(p.rank(), 2, "legalize expects a matrix");
    let k = p.shape()[0];
    assert_eq!(k, p.shape()[1], "legalize expects a square matrix");
    // Fast path: already legal after sharpening.
    let sharp = row_hardmax(p);
    if is_legal(&sharp) {
        return Permutation::try_from_matrix(&sharp, 1e-9).expect("checked legal");
    }
    // SVD projection away from the saddle.
    let q = polar_orthogonal(&sharp);
    let q_abs = q.abs();
    let mut best: Option<Permutation> = None;
    for _ in 0..max_tries {
        let mut noisy = q_abs.clone();
        for v in noisy.as_mut_slice() {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *v += sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
        let candidate = row_hardmax(&noisy);
        if is_legal(&candidate) {
            let perm = Permutation::try_from_matrix(&candidate, 1e-9).expect("checked legal");
            let better = match &best {
                Some(b) => perm.crossing_count() < b.crossing_count(),
                None => true,
            };
            if better {
                best = Some(perm);
            }
        }
    }
    // Optimal fallback: the Hungarian assignment maximizing Σᵢ P[i, σ(i)]
    // is the best possible legalization when no stochastic proposal works.
    best.unwrap_or_else(|| adept_linalg::max_weight_permutation(p))
}

/// Deterministic fallback: assign each row (in order of confidence) to its
/// best still-free column.
pub fn greedy_assign(p: &Tensor) -> Permutation {
    let k = p.shape()[0];
    // Rows with the highest max go first.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        p.row(b)
            .max()
            .partial_cmp(&p.row(a).max())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut used = vec![false; k];
    let mut image = vec![usize::MAX; k];
    for &i in &order {
        let row = p.row(i);
        let mut best_j = usize::MAX;
        let mut best_v = f64::NEG_INFINITY;
        for j in 0..k {
            if !used[j] && row.as_slice()[j] > best_v {
                best_v = row.as_slice()[j];
                best_j = j;
            }
        }
        used[best_j] = true;
        image[i] = best_j;
    }
    Permutation::from_vec(image).expect("greedy assignment is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hardmax_one_hot_rows() {
        let p = Tensor::from_vec(vec![0.2, 0.5, 0.3, 0.9, 0.05, 0.05], &[2, 3]);
        let h = row_hardmax(&p);
        assert_eq!(h.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn already_legal_is_returned_unchanged() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Permutation::random(&mut rng, 8);
        // A soft version of a legal permutation.
        let soft = &p.to_matrix().scale(0.9) + 0.0125;
        let got = legalize(&soft, &mut rng, 16, 0.05);
        assert_eq!(got, p);
    }

    #[test]
    fn saddle_point_with_tied_rows_is_legalized() {
        // Two rows fully tied on the same column — the example of Fig. 3.
        let p = Tensor::from_vec(
            vec![
                0.0, 1.0, 0.0, //
                0.0, 0.9, 0.1, //
                0.0, 0.0, 1.0,
            ],
            &[3, 3],
        );
        assert!(!is_legal(&row_hardmax(&p)));
        let mut rng = StdRng::seed_from_u64(2);
        let got = legalize(&p, &mut rng, 64, 0.1);
        assert_eq!(got.len(), 3);
        // Row 2 strongly prefers column 2; the tie on column 1 must break
        // between rows 0 and 1, giving a legal permutation.
        assert!(Permutation::matrix_is_permutation(&got.to_matrix(), 1e-9));
    }

    #[test]
    fn uniform_matrix_legalizes_via_fallback_or_noise() {
        let p = Tensor::full(&[6, 6], 1.0 / 6.0);
        let mut rng = StdRng::seed_from_u64(3);
        let got = legalize(&p, &mut rng, 8, 0.05);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn greedy_assign_respects_strong_preferences() {
        let p = Tensor::from_vec(
            vec![
                0.9, 0.1, 0.0, //
                0.8, 0.9, 0.0, //
                0.0, 0.0, 1.0,
            ],
            &[3, 3],
        );
        let got = greedy_assign(&p);
        assert_eq!(got.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn legalization_prefers_fewer_crossings() {
        // Near-identity relaxation with mild ties should legalize close to
        // the identity (low crossing count), not to a random permutation.
        let mut p = Tensor::eye(8).scale(0.6);
        for v in p.as_mut_slice() {
            *v += 0.05;
        }
        let mut rng = StdRng::seed_from_u64(4);
        let got = legalize(&p, &mut rng, 32, 0.05);
        assert!(
            got.crossing_count() <= 2,
            "crossings {}",
            got.crossing_count()
        );
    }
}
