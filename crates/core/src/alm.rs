//! Augmented Lagrangian permutation learning (paper Eq. 8–12).
//!
//! Relaxed permutations live in the Birkhoff polytope; the difference
//! `Δ = ‖·‖₁ − ‖·‖₂` per row/column vanishes exactly on one-hot vectors, so
//! pushing `Δ → 0` drives the relaxation toward a real permutation. The ALM
//! variant here matches the paper: the quadratic term is also weighted by
//! the multipliers (`λ`-controlled), so the task loss dominates early and
//! the constraint takes over as `λ` grows.

use crate::supermesh::MeshFrame;
use adept_autodiff::Var;
use adept_tensor::Tensor;

/// Per-block multiplier state and the ρ schedule.
#[derive(Debug, Clone)]
pub struct AlmState {
    /// Row multipliers, `[n_blocks, K]`.
    lambda_r: Tensor,
    /// Column multipliers, `[n_blocks, K]`.
    lambda_c: Tensor,
    rho: f64,
    gamma: f64,
}

impl AlmState {
    /// Creates the state for `n_blocks` permutations of size `k`.
    ///
    /// `rho0` is the initial quadratic coefficient (the paper uses
    /// `1e-7·K/8`); `gamma` is chosen so that `ρ_T ≈ 1e4·ρ₀` after
    /// `total_updates` multiplier updates.
    ///
    /// # Panics
    ///
    /// Panics if `rho0 ≤ 0` or `total_updates == 0`.
    pub fn new(n_blocks: usize, k: usize, rho0: f64, total_updates: usize) -> Self {
        assert!(rho0 > 0.0, "rho0 must be positive");
        assert!(total_updates > 0, "need at least one update");
        let gamma = 1e4f64.powf(1.0 / total_updates as f64);
        Self {
            lambda_r: Tensor::zeros(&[n_blocks, k]),
            lambda_c: Tensor::zeros(&[n_blocks, k]),
            rho: rho0,
            gamma,
        }
    }

    /// The paper's default `ρ₀ = 1e-7·K/8`.
    pub fn default_rho0(k: usize) -> f64 {
        1e-7 * k as f64 / 8.0
    }

    /// Current ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Mean multiplier magnitude (the red curves of paper Fig. 5a).
    pub fn mean_lambda(&self) -> f64 {
        (self.lambda_r.abs().sum() + self.lambda_c.abs().sum())
            / (self.lambda_r.len() + self.lambda_c.len()) as f64
    }

    /// The differentiable ALM penalty `L_P` (Eq. 10) over the relaxed
    /// permutations of one mesh frame, with blocks offset by `block0` into
    /// the multiplier tensors (so U and V can share one state).
    ///
    /// # Panics
    ///
    /// Panics if the frame exceeds the registered block count.
    pub fn penalty<'g>(&self, frame: &MeshFrame<'g>, block0: usize) -> Option<Var<'g>> {
        let k = frame.k;
        let mut total: Option<Var<'g>> = None;
        for (b, block) in frame.blocks.iter().enumerate() {
            let bi = block0 + b;
            assert!(bi < self.lambda_r.shape()[0], "block index out of range");
            let p = block.p_relaxed;
            let graph = p.graph();
            // Row Δ: ‖row‖₁ − ‖row‖₂ (entries are ≥ 0 after reparam).
            let row_l1 = p.abs().sum_axis(1);
            let row_l2 = p.square().sum_axis(1).add_scalar(1e-24).sqrt();
            let d_row = row_l1.sub(row_l2);
            let col_l1 = p.abs().sum_axis(0);
            let col_l2 = p.square().sum_axis(0).add_scalar(1e-24).sqrt();
            let d_col = col_l1.sub(col_l2);
            let lr = graph.constant(self.lambda_r.row(bi));
            let lc = graph.constant(self.lambda_c.row(bi));
            let linear = lr.mul(d_row).sum().add(lc.mul(d_col).sum());
            let quad = lr
                .mul(d_row.square())
                .sum()
                .add(lc.mul(d_col.square()).sum())
                .mul_scalar(self.rho / 2.0);
            let term = linear.add(quad);
            total = Some(match total {
                Some(t) => t.add(term),
                None => term,
            });
        }
        let _ = k;
        total
    }

    /// Mean permutation error `Δ` of a frame (the blue curves of Fig. 5a).
    pub fn mean_delta(frames: &[&MeshFrame<'_>]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for frame in frames {
            for block in &frame.blocks {
                let v = block.p_relaxed.value();
                let k = frame.k;
                for i in 0..k {
                    let row = v.row(i);
                    sum += row.abs().sum() - row.norm();
                    let col = v.col(i);
                    sum += col.abs().sum() - col.norm();
                    count += 2;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Multiplier update (Eq. 12): `λ += ρ·(Δ + Δ²/2)`, evaluated on the
    /// current relaxed permutations; then advances the ρ schedule.
    ///
    /// Both terms are scaled by ρ so that λ growth is governed entirely by
    /// the ρ schedule — the paper's stated design is that "the optimization
    /// is dominated by the task-specific loss at the beginning and
    /// gradually honors the constraint", which requires λ ≈ 0 early on.
    pub fn update(&mut self, frames: &[(&MeshFrame<'_>, usize)]) {
        for (frame, block0) in frames {
            let k = frame.k;
            for (b, block) in frame.blocks.iter().enumerate() {
                let bi = block0 + b;
                let v = block.p_relaxed.value();
                for i in 0..k {
                    let row = v.row(i);
                    let d = row.abs().sum() - row.norm();
                    self.lambda_r.as_mut_slice()[bi * k + i] += self.rho * (d + 0.5 * d * d);
                    let col = v.col(i);
                    let dc = col.abs().sum() - col.norm();
                    self.lambda_c.as_mut_slice()[bi * k + i] += self.rho * (dc + 0.5 * dc * dc);
                }
            }
        }
        self.rho *= self.gamma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supermesh::{build_mesh_frame, SuperMeshHandles};
    use adept_autodiff::Graph;
    use adept_nn::{ForwardCtx, ParamStore};

    fn frame_setup(k: usize, n: usize) -> (ParamStore, SuperMeshHandles) {
        let mut store = ParamStore::new();
        let h = SuperMeshHandles::register(&mut store, k, n, n, 1);
        (store, h)
    }

    #[test]
    fn rho_schedule_reaches_1e4() {
        let mut alm = AlmState::new(1, 4, 1e-7, 100);
        let rho0 = alm.rho();
        let (store, h) = frame_setup(4, 1);
        for _ in 0..100 {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let frame = build_mesh_frame(&ctx, &h.u, 4, &[[0.0; 2]], 1.0);
            alm.update(&[(&frame, 0)]);
        }
        let ratio = alm.rho() / rho0;
        assert!((ratio / 1e4 - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn penalty_zero_for_legal_permutation() {
        let (mut store, h) = frame_setup(4, 1);
        *store.value_mut(h.u.perm[0]) = adept_linalg::Permutation::from_vec(vec![1, 0, 3, 2])
            .unwrap()
            .to_matrix();
        let mut alm = AlmState::new(1, 4, 1e-3, 10);
        // Non-zero multipliers so the test is meaningful.
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 4, &[[0.0; 2]], 1.0);
        alm.update(&[(&frame, 0)]);
        let p = alm.penalty(&frame, 0).unwrap();
        assert!(p.value().item().abs() < 1e-9);
        assert!(AlmState::mean_delta(&[&frame]) < 1e-9);
    }

    #[test]
    fn penalty_positive_for_smoothed_identity() {
        let (store, h) = frame_setup(6, 2);
        let mut alm = AlmState::new(2, 6, 1e-3, 10);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 6, &[[0.0; 2]; 2], 1.0);
        // After one multiplier update, λ > 0 and the penalty is positive.
        alm.update(&[(&frame, 0)]);
        assert!(alm.mean_lambda() > 0.0);
        let p = alm.penalty(&frame, 0).unwrap();
        assert!(p.value().item() > 0.0);
        assert!(AlmState::mean_delta(&[&frame]) > 0.01);
    }

    #[test]
    fn penalty_gradient_pushes_toward_permutation() {
        // Descending the ALM penalty must reduce the mean Δ.
        let (mut store, h) = frame_setup(5, 1);
        let mut alm = AlmState::new(1, 5, 1e-2, 50);
        let mut deltas = Vec::new();
        for _ in 0..60 {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let frame = build_mesh_frame(&ctx, &h.u, 5, &[[0.0; 2]], 1.0);
            deltas.push(AlmState::mean_delta(&[&frame]));
            let p = alm.penalty(&frame, 0).unwrap();
            let grads = graph.backward(p);
            alm.update(&[(&frame, 0)]);
            let updates = ctx.into_param_grads(&grads);
            store.zero_grads();
            store.accumulate_many(&updates);
            // Plain gradient step.
            let id = h.u.perm[0];
            let g = store.grad(id).clone();
            let delta = g.scale(-5.0);
            store.apply_delta(id, &delta);
        }
        let first = deltas[0];
        let last = *deltas.last().unwrap();
        assert!(
            last < first * 0.9,
            "Δ did not decrease: {first} → {last} ({deltas:?})"
        );
    }
}
