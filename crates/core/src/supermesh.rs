//! The probabilistic photonic SuperMesh (paper Fig. 1 and §3.3).
//!
//! A SuperMesh holds `B_max/2` super blocks per unitary. Every block owns a
//! relaxed permutation (crossing layer), raw coupler transmissions (DC
//! layer, binarized with a straight-through estimator) and — unless pinned —
//! a two-way architecture logit deciding *skip vs execute* through a
//! Gumbel-softmax gate. Phases and Σ are ordinary per-tile weights.
//!
//! Search weights build through the unified mesh-weight engine:
//! [`SuperPtcWeight::bind`] pairs a weight with the step's frames into a
//! [`BoundSuperWeight`] implementing [`adept_nn::mesh::MeshWeight`], so the
//! same stage→record→splice scheduler (and the parallel backward replay)
//! drives fixed-topology and searched meshes alike.

use adept_autodiff::{
    batched_phase_rotate, batched_tile_product, batched_tile_product_grid, record_segment,
    record_segment_pair, stack, Graph, ImportSpec, TapeSegment, Var,
};
use adept_nn::mesh::{build_mesh_weight, prebuild_mesh_weights, MeshWeight, StagedBuild};
use adept_nn::{next_weight_uid, ForwardCtx, ParamId, ParamStore};
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// STE scale of Eq. 14: `(2 − √2)/4`.
pub const DC_STE_SCALE: f64 = (2.0 - std::f64::consts::SQRT_2) / 4.0;

/// Soft-projection threshold ε of Eq. 11.
pub const PROJECTION_EPS: f64 = 0.05;

/// Handles of one unitary's super blocks.
#[derive(Debug, Clone)]
pub struct MeshSideHandles {
    /// Relaxed `K×K` permutation parameter per block.
    pub perm: Vec<ParamId>,
    /// Raw coupler transmissions per block (`⌊(K − s_b)/2⌋` slots).
    pub t: Vec<ParamId>,
    /// Architecture logits `[skip, execute]`; `None` for pinned blocks.
    pub theta: Vec<Option<ParamId>>,
    /// Coupler column offset `s_b` per block (0 or 1, interleaved).
    pub dc_start: Vec<usize>,
}

/// All shared (cross-tile, cross-layer) SuperMesh parameters.
#[derive(Debug, Clone)]
pub struct SuperMeshHandles {
    /// PTC size.
    pub k: usize,
    /// Super blocks per unitary (`B_max/2`).
    pub n_blocks: usize,
    /// Number of trailing blocks pinned on (`B_min/2`).
    pub pinned: usize,
    /// The `U` mesh.
    pub u: MeshSideHandles,
    /// The `V` mesh.
    pub v: MeshSideHandles,
}

impl SuperMeshHandles {
    /// Registers all shared parameters.
    ///
    /// The permutations start from the smoothed identity
    /// `P₀ = I(1/2 − 1/(2K−2)) + 1/(2K−2)` (paper §3.3.2), architecture
    /// logits start at zero (50/50), raw couplers start uniformly in
    /// `[-0.1, 0.1]`.
    ///
    /// # Panics
    ///
    /// Panics if `pinned > n_blocks`, `n_blocks == 0`, or `k < 4`.
    pub fn register(
        store: &mut ParamStore,
        k: usize,
        n_blocks: usize,
        pinned: usize,
        seed: u64,
    ) -> Self {
        assert!(k >= 4, "supermesh needs k ≥ 4");
        assert!(n_blocks > 0, "need at least one super block");
        assert!(pinned <= n_blocks, "cannot pin more blocks than exist");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut side = |name: &str, rng: &mut StdRng| -> MeshSideHandles {
            let mut perm = Vec::new();
            let mut t = Vec::new();
            let mut theta = Vec::new();
            let mut dc_start = Vec::new();
            for b in 0..n_blocks {
                // Paper convention: s_b = 0 for odd (1-indexed), 1 for even.
                let s = if (b + 1) % 2 == 0 { 1 } else { 0 };
                dc_start.push(s);
                // P0 = I(1/2 − off) + off ⇒ diag = 1/2, off-diag = off
                // (paper §3.3.2), plus a small symmetry-breaking jitter so
                // short schedules can still discover non-identity routings.
                let off = 1.0 / (2.0 * k as f64 - 2.0);
                let mut p0 = Tensor::full(&[k, k], off);
                for i in 0..k {
                    p0.as_mut_slice()[i * k + i] = 0.5;
                }
                for v in p0.as_mut_slice() {
                    *v += rng.gen_range(0.0..0.5 * off);
                }
                perm.push(store.register(format!("{name}.p{b}"), p0, 0.0));
                let slots = (k - s) / 2;
                t.push(store.register(
                    format!("{name}.t{b}"),
                    Tensor::rand_uniform(rng, &[slots], -0.1, 0.1),
                    0.0,
                ));
                if b >= n_blocks - pinned {
                    theta.push(None);
                } else {
                    theta.push(Some(store.register(
                        format!("{name}.theta{b}"),
                        Tensor::zeros(&[2]),
                        5e-4,
                    )));
                }
            }
            MeshSideHandles {
                perm,
                t,
                theta,
                dc_start,
            }
        };
        let u = side("supermesh.u", &mut rng);
        let v = side("supermesh.v", &mut rng);
        Self {
            k,
            n_blocks,
            pinned,
            u,
            v,
        }
    }

    /// Architecture parameters (θ of both meshes).
    pub fn arch_params(&self) -> Vec<ParamId> {
        self.u
            .theta
            .iter()
            .chain(&self.v.theta)
            .filter_map(|t| *t)
            .collect()
    }

    /// Topology weights (permutations and couplers of both meshes).
    pub fn topo_params(&self) -> Vec<ParamId> {
        self.u
            .perm
            .iter()
            .chain(&self.u.t)
            .chain(&self.v.perm)
            .chain(&self.v.t)
            .copied()
            .collect()
    }
}

/// One step's architecture randomness: Gumbel noise per block and the
/// current softmax temperature.
#[derive(Debug, Clone)]
pub struct ArchSample {
    /// Gumbel noise pairs for `U` blocks (indexed like `theta`).
    pub gumbel_u: Vec<[f64; 2]>,
    /// Gumbel noise pairs for `V` blocks.
    pub gumbel_v: Vec<[f64; 2]>,
    /// Softmax temperature τ.
    pub tau: f64,
}

impl ArchSample {
    /// Samples fresh Gumbel noise for every block.
    pub fn draw<R: Rng + ?Sized>(rng: &mut R, n_blocks: usize, tau: f64) -> Self {
        let g = |rng: &mut R| -> Vec<[f64; 2]> {
            (0..n_blocks)
                .map(|_| {
                    let mut pair = [0.0; 2];
                    for p in &mut pair {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        *p = -(-u.ln()).ln();
                    }
                    pair
                })
                .collect()
        };
        Self {
            gumbel_u: g(rng),
            gumbel_v: g(rng),
            tau,
        }
    }

    /// A deterministic sample (zero noise) — expectation-style forward.
    pub fn deterministic(n_blocks: usize, tau: f64) -> Self {
        Self {
            gumbel_u: vec![[0.0; 2]; n_blocks],
            gumbel_v: vec![[0.0; 2]; n_blocks],
            tau,
        }
    }
}

/// Per-block tape variables of one step.
pub struct BlockFrame<'g> {
    /// Relaxed (reparametrized, soft-projected) permutation `P̃` (`K×K`).
    pub p_relaxed: Var<'g>,
    /// Binarized transmissions `t_q ∈ {√2/2, 1}` per slot.
    pub t_binary: Var<'g>,
    /// Coupler-presence kappa `κ ∈ {√2/2, 0}` per slot.
    pub kappa: Var<'g>,
    /// Gumbel-softmax gate `[skip, execute]` used in the forward pass.
    pub gate: Var<'g>,
    /// Noise-free execute probability (`softmax(θ)[1]`) for expectations.
    pub exec_prob: Var<'g>,
    /// DC column offset.
    pub dc_start: usize,
}

/// One unitary's per-step variables.
pub struct MeshFrame<'g> {
    /// Per-block frames, leftmost factor first.
    pub blocks: Vec<BlockFrame<'g>>,
    /// PTC size.
    pub k: usize,
}

/// The reparametrization chain of Eq. 11: `abs → column normalize → row
/// normalize → ε-soft row projection (stop-gradient rounding)`.
pub fn relaxed_permutation<'g>(ctx: &ForwardCtx<'g, '_>, raw: Var<'g>) -> Var<'g> {
    let k = raw.shape()[0];
    let abs = raw.abs();
    let col_sums = abs.sum_axis(0); // [K] broadcasts over rows
    let p1 = abs.div(col_sums);
    let row_sums = p1.sum_axis(1).reshape(&[k, 1]);
    let p2 = p1.div(row_sums);
    // Soft projection: rows that are ε-close to one-hot are rounded with
    // stopped gradients, preventing exploding ALM terms (paper §3.3.2).
    let v = p2.value();
    let mut mask = Tensor::zeros(&[k, 1]);
    let mut rounded = Tensor::zeros(&[k, k]);
    for i in 0..k {
        let row = v.row(i);
        let maxv = row.max();
        if maxv >= 1.0 - PROJECTION_EPS {
            mask.as_mut_slice()[i] = 1.0;
            let j = row.argmax();
            rounded.as_mut_slice()[i * k + j] = 1.0;
        }
    }
    let rounded = ctx.constant(rounded);
    rounded.select_const(&mask, p2)
}

/// Binarization-aware coupler transmission (Eq. 14): forward quantizes the
/// raw value to `{√2/2, 1}`, backward is the clipped straight-through
/// estimator `clip(g·(2−√2)/4, −1, 1)`.
pub fn binarize_couplers<'g>(raw: Var<'g>) -> Var<'g> {
    raw.map_custom(
        |x| if x >= 0.0 { 1.0 } else { FRAC_1_SQRT_2 },
        |_x, g| (g * DC_STE_SCALE).clamp(-1.0, 1.0),
    )
}

/// Coupling coefficient `κ = √(1 − t_q²) ∈ {0, √2/2}`, also with a clipped
/// straight-through gradient (the analytic `dκ/dt` is unbounded at the
/// quantization points, so the surrogate mirrors Eq. 14 with opposite sign).
pub fn binarize_kappa<'g>(raw: Var<'g>) -> Var<'g> {
    raw.map_custom(
        |x| if x >= 0.0 { 0.0 } else { FRAC_1_SQRT_2 },
        |_x, g| (-g * DC_STE_SCALE).clamp(-1.0, 1.0),
    )
}

/// Builds the per-step frame of one mesh side.
pub fn build_mesh_frame<'g>(
    ctx: &ForwardCtx<'g, '_>,
    side: &MeshSideHandles,
    k: usize,
    gumbel: &[[f64; 2]],
    tau: f64,
) -> MeshFrame<'g> {
    let n = side.perm.len();
    assert_eq!(gumbel.len(), n, "one gumbel pair per block");
    let mut blocks = Vec::with_capacity(n);
    for b in 0..n {
        let p_relaxed = relaxed_permutation(ctx, ctx.param(side.perm[b]));
        let t_raw = ctx.param(side.t[b]);
        let t_binary = binarize_couplers(t_raw);
        let kappa = binarize_kappa(t_raw);
        let (gate, exec_prob) = match side.theta[b] {
            Some(theta) => {
                let th = ctx.param(theta);
                let noise = ctx.constant(Tensor::from_vec(gumbel[b].to_vec(), &[2]));
                let gate = th.add(noise).mul_scalar(1.0 / tau).softmax();
                let exec_prob = th.softmax().gather(&[1]);
                (gate, exec_prob)
            }
            None => {
                let gate = ctx.constant(Tensor::from_vec(vec![0.0, 1.0], &[2]));
                let exec_prob = ctx.constant(Tensor::ones(&[1]));
                (gate, exec_prob)
            }
        };
        blocks.push(BlockFrame {
            p_relaxed,
            t_binary,
            kappa,
            gate,
            exec_prob,
            dc_start: side.dc_start[b],
        });
    }
    MeshFrame { blocks, k }
}

/// Builds the coupler-column complex transfer matrix `(T_re, T_im)` from
/// binarized slot variables.
fn coupler_column_vars<'g>(
    graph: &'g Graph,
    frame: &BlockFrame<'g>,
    k: usize,
) -> (Var<'g>, Var<'g>) {
    let s = frame.dc_start;
    let slots = (k - s) / 2;
    let mut diag_a = Vec::with_capacity(slots);
    let mut diag_b = Vec::with_capacity(slots);
    let mut off_ab = Vec::with_capacity(slots);
    let mut off_ba = Vec::with_capacity(slots);
    let mut covered = vec![false; k];
    for i in 0..slots {
        let a = s + 2 * i;
        let b = a + 1;
        covered[a] = true;
        covered[b] = true;
        diag_a.push(a * k + a);
        diag_b.push(b * k + b);
        off_ab.push(a * k + b);
        off_ba.push(b * k + a);
    }
    let mut rest = Tensor::zeros(&[k, k]);
    for (i, &cov) in covered.iter().enumerate() {
        if !cov {
            rest.as_mut_slice()[i * k + i] = 1.0;
        }
    }
    let t_re = frame
        .t_binary
        .scatter(&[k, k], &diag_a)
        .add(frame.t_binary.scatter(&[k, k], &diag_b))
        .add(graph.constant(rest));
    let t_im = frame
        .kappa
        .scatter(&[k, k], &off_ab)
        .add(frame.kappa.scatter(&[k, k], &off_ba));
    (t_re, t_im)
}

/// Builds a super-mesh unitary from a frame and a `[n_blocks, K]` phase
/// variable: `U = Π_b (m_{b,1}·I + m_{b,2}·P̃_b·T_b·R(Φ_b))`, followed by
/// stabilizing ℓ2 normalization (`rows` selects row- vs column-wise, used
/// for `U` and `V` respectively).
///
/// This is the **scalar reference implementation** (one node chain per
/// tile); the search inner loop uses [`batched_super_unitary`], which is
/// pinned bit-equivalent.
pub fn super_unitary<'g>(
    ctx: &ForwardCtx<'g, '_>,
    frame: &MeshFrame<'g>,
    phases: Var<'g>,
    normalize_rows: bool,
) -> (Var<'g>, Var<'g>) {
    let k = frame.k;
    let n = frame.blocks.len();
    assert_eq!(phases.shape(), vec![n, k], "phases must be [n_blocks, K]");
    let mut m_re = ctx.constant(Tensor::eye(k));
    let mut m_im = ctx.constant(Tensor::zeros(&[k, k]));
    for (bi, block) in frame.blocks.iter().enumerate().rev() {
        // R(Φ_b).
        let positions: Vec<usize> = (0..k).map(|j| bi * k + j).collect();
        let phi = phases.reshape(&[n * k]).gather(&positions).reshape(&[k, 1]);
        let c = phi.cos();
        let s = phi.sin();
        let r_re = c.mul(m_re).add(s.mul(m_im));
        let r_im = c.mul(m_im).sub(s.mul(m_re));
        // T_b.
        let (t_re, t_im) = coupler_column_vars(ctx.graph, block, k);
        let tr_re = t_re.matmul(r_re).sub(t_im.matmul(r_im));
        let tr_im = t_re.matmul(r_im).add(t_im.matmul(r_re));
        // P̃_b (real).
        let e_re = block.p_relaxed.matmul(tr_re);
        let e_im = block.p_relaxed.matmul(tr_im);
        // Gate: M ← m1·M + m2·(P̃TR·M).
        let m1 = block.gate.gather(&[0]);
        let m2 = block.gate.gather(&[1]);
        m_re = m1.mul(m_re).add(m2.mul(e_re));
        m_im = m1.mul(m_im).add(m2.mul(e_im));
    }
    // Stabilizing ℓ2 normalization (paper §3.3.2).
    let sq = m_re.square().add(m_im.square());
    if normalize_rows {
        let norms = sq.sum_axis(1).sqrt().add_scalar(1e-12).reshape(&[k, 1]);
        (m_re.div(norms), m_im.div(norms))
    } else {
        let norms = sq.sum_axis(0).sqrt().add_scalar(1e-12); // [K] over columns
        (m_re.div(norms), m_im.div(norms))
    }
}

/// Builds the super-mesh unitaries of **all** `T` tiles at once from one
/// frame and a stacked `[T, n_blocks, K]` phase variable, returning
/// `(re, im)` stacks of shape `[T, K, K]`.
///
/// One walk over the super blocks updates every tile's running product:
/// the phase rotation is a two-node batched row broadcast, the shared
/// (differentiable) coupler and relaxed-permutation factors are broadcast-
/// left GEMM sweeps whose backward pass *sums* the per-tile gradients into
/// the shared block parameters, and the Gumbel gate mixes the whole stack
/// through two scalar broadcasts. The tape holds `O(n_blocks)` nodes
/// regardless of `T`; values are bit-identical to per-tile
/// [`super_unitary`] calls.
///
/// # Panics
///
/// Panics if the phase variable shape does not match the frame.
pub fn batched_super_unitary<'g>(
    ctx: &ForwardCtx<'g, '_>,
    frame: &MeshFrame<'g>,
    phases: Var<'g>,
    normalize_rows: bool,
) -> (Var<'g>, Var<'g>) {
    batched_super_unitary_on(ctx.graph, frame, phases, normalize_rows)
}

/// [`batched_super_unitary`] against a bare [`Graph`] — the form the
/// parallel build scheduler records onto private sub-tapes, where the frame
/// variables arrive as segment imports instead of `ForwardCtx` parameters.
pub fn batched_super_unitary_on<'g>(
    graph: &'g Graph,
    frame: &MeshFrame<'g>,
    phases: Var<'g>,
    normalize_rows: bool,
) -> (Var<'g>, Var<'g>) {
    let k = frame.k;
    let n = frame.blocks.len();
    let shape = phases.shape();
    assert_eq!(shape.len(), 3, "phases must be [T, n_blocks, K]");
    assert_eq!(&shape[1..], &[n, k], "phases must be [T, n_blocks, K]");
    let t = shape[0];
    let mut m_re = graph.constant(Tensor::eye_batched(t, k));
    let mut m_im = graph.constant(Tensor::zeros(&[t, k, k]));
    for (bi, block) in frame.blocks.iter().enumerate().rev() {
        // R(Φ_b) on the whole stack.
        let phi = phases.index_axis1(bi);
        let (r_re, r_im) = batched_phase_rotate(phi, m_re, m_im);
        // T_b: one differentiable coupler column shared across tiles.
        let (t_re, t_im) = coupler_column_vars(graph, block, k);
        let tr_re = t_re
            .matmul_bcast_left(r_re)
            .sub(t_im.matmul_bcast_left(r_im));
        let tr_im = t_re
            .matmul_bcast_left(r_im)
            .add(t_im.matmul_bcast_left(r_re));
        // P̃_b (real, relaxed — a dense matrix, not a permutation).
        let e_re = block.p_relaxed.matmul_bcast_left(tr_re);
        let e_im = block.p_relaxed.matmul_bcast_left(tr_im);
        // Gate: M ← m1·M + m2·(P̃TR·M), broadcast over the stack.
        let m1 = block.gate.gather(&[0]);
        let m2 = block.gate.gather(&[1]);
        m_re = m1.mul(m_re).add(m2.mul(e_re));
        m_im = m1.mul(m_im).add(m2.mul(e_im));
    }
    // Stabilizing ℓ2 normalization (paper §3.3.2), batched per tile.
    let sq = m_re.square().add(m_im.square());
    if normalize_rows {
        let norms = sq
            .reshape(&[t * k, k])
            .sum_axis(1)
            .sqrt()
            .add_scalar(1e-12)
            .reshape(&[t, k, 1]);
        (m_re.div(norms), m_im.div(norms))
    } else {
        // Column sums as a ones-row broadcast GEMM: Σ_i sq[t, i, j]
        // accumulates in the same i-order as `sum_axis(0)`, keeping the
        // batched values bit-identical to the scalar reference.
        let ones = graph.constant(Tensor::ones(&[1, k]));
        let norms = ones.matmul_bcast_left(sq).sqrt().add_scalar(1e-12); // [T, 1, K]
        (m_re.div(norms), m_im.div(norms))
    }
}

/// Variables of one [`MeshFrame`] block imported into a segment build.
const FRAME_VARS_PER_BLOCK: usize = 5;

/// Exports every per-block frame variable for import into a sub-tape build
/// (order: `p_relaxed, t_binary, kappa, gate, exec_prob` per block).
fn frame_imports(frame: &MeshFrame<'_>) -> Vec<ImportSpec> {
    frame
        .blocks
        .iter()
        .flat_map(|b| {
            [
                b.p_relaxed.export_import(),
                b.t_binary.export_import(),
                b.kappa.export_import(),
                b.gate.export_import(),
                b.exec_prob.export_import(),
            ]
        })
        .collect()
}

/// Fingerprint of the frame pair a search weight is built against: the
/// fold of every block variable's tape id. Stored alongside the prebuilt
/// cache entry so a `build` call presenting *different* frames (e.g.
/// rebuilt with a fresh Gumbel sample) panics instead of silently wiring
/// the cached weight to the wrong variables.
fn frames_tag(frame_u: &MeshFrame<'_>, frame_v: &MeshFrame<'_>) -> u64 {
    let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
    for block in frame_u.blocks.iter().chain(&frame_v.blocks) {
        for id in [
            block.p_relaxed.id(),
            block.t_binary.id(),
            block.kappa.id(),
            block.gate.id(),
        ] {
            tag = (tag ^ id as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    tag
}

/// Rebuilds a [`MeshFrame`] over segment import proxies (inverse of
/// [`frame_imports`]).
fn frame_from_proxies<'s>(proxies: &[Var<'s>], k: usize, dc_start: &[usize]) -> MeshFrame<'s> {
    assert_eq!(proxies.len(), FRAME_VARS_PER_BLOCK * dc_start.len());
    let blocks = proxies
        .chunks_exact(FRAME_VARS_PER_BLOCK)
        .zip(dc_start)
        .map(|(c, &s)| BlockFrame {
            p_relaxed: c[0],
            t_binary: c[1],
            kappa: c[2],
            gate: c[3],
            exec_prob: c[4],
            dc_start: s,
        })
        .collect();
    MeshFrame { blocks, k }
}

/// A search-time PTC-tiled weight: like `adept_nn::onn::PtcWeight` but the
/// topology factors come from the shared SuperMesh frame.
pub struct SuperPtcWeight {
    uid: u64,
    k: usize,
    in_features: usize,
    out_features: usize,
    grid_rows: usize,
    grid_cols: usize,
    phases_u: Vec<ParamId>,
    phases_v: Vec<ParamId>,
    sigma: Vec<ParamId>,
}

/// A [`SuperPtcWeight`] bound to the step's SuperMesh frames — the
/// [`MeshWeight`] form the unified build engine schedules.
///
/// Binding captures the frame variables as segment imports and the
/// per-block coupler offsets as plain values, so the binding itself is
/// `Sync` and its mesh walks can record on pool workers while the
/// non-`Sync` tape stays on the main thread. Create one with
/// [`SuperPtcWeight::bind`].
pub struct BoundSuperWeight<'w> {
    weight: &'w SuperPtcWeight,
    /// U-frame then V-frame variables, in [`frame_imports`] order.
    frame_vars: Vec<ImportSpec>,
    dc_start_u: Vec<usize>,
    dc_start_v: Vec<usize>,
    tag: u64,
}

impl SuperPtcWeight {
    /// Registers per-tile phases/Σ for an `out × in` weight searched over a
    /// SuperMesh with `n_blocks` blocks per unitary.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        k: usize,
        n_blocks: usize,
        seed: u64,
    ) -> Self {
        let grid_rows = out_features.div_ceil(k);
        let grid_cols = in_features.div_ceil(k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut phases_u = Vec::new();
        let mut phases_v = Vec::new();
        let mut sigma = Vec::new();
        let sig_bound = (6.0 * k as f64 / in_features.max(1) as f64).sqrt().min(2.0);
        for tile in 0..grid_rows * grid_cols {
            phases_u.push(store.register(
                format!("{name}.u{tile}"),
                Tensor::rand_uniform(&mut rng, &[n_blocks, k], -PI, PI),
                1e-4,
            ));
            phases_v.push(store.register(
                format!("{name}.v{tile}"),
                Tensor::rand_uniform(&mut rng, &[n_blocks, k], -PI, PI),
                1e-4,
            ));
            sigma.push(store.register(
                format!("{name}.s{tile}"),
                Tensor::rand_uniform(&mut rng, &[k], -sig_bound, sig_bound),
                1e-4,
            ));
        }
        Self {
            uid: next_weight_uid(),
            k,
            in_features,
            out_features,
            grid_rows,
            grid_cols,
            phases_u,
            phases_v,
            sigma,
        }
    }

    /// Process-unique id of this weight (key of the per-step prebuilt
    /// cache; see [`prebuild_super_ptc_weights`]).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// All parameter handles (phases and Σ).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.phases_u
            .iter()
            .chain(&self.phases_v)
            .chain(&self.sigma)
            .copied()
            .collect()
    }

    /// Materializes the `[out, in]` weight under the given frames.
    ///
    /// Like `adept_nn::onn::PtcWeight::build`, the whole construction is
    /// batched over the tile axis: all tiles' phases are stacked into
    /// `[T, B, K]`, both unitaries come from one [`batched_super_unitary`]
    /// walk each (`O(B)` tape nodes, independent of `T`), and every tile
    /// product lands in its grid cell — edge tiles cropped in place —
    /// through one ragged batched GEMM sweep. The stage-2 search inner loop
    /// never extracts or copies an individual tile; values are pinned
    /// bit-equal to [`SuperPtcWeight::build_per_tile`].
    ///
    /// Internally this binds the weight to the frames
    /// ([`SuperPtcWeight::bind`]) and runs the unified [`MeshWeight`]
    /// engine ([`build_mesh_weight`]) — the same three-phase walk every
    /// mesh family uses. The prebuilt cache is consulted before binding:
    /// the hot post-prebuild path pays only the frame-tag fold, not the
    /// full frame export.
    pub fn build<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        frame_u: &MeshFrame<'g>,
        frame_v: &MeshFrame<'g>,
    ) -> Var<'g> {
        if let Some(prebuilt) = ctx.take_prebuilt(self.uid, frames_tag(frame_u, frame_v)) {
            return prebuilt;
        }
        build_mesh_weight(ctx, &self.bind(frame_u, frame_v))
    }

    /// Binds this weight to the step's SuperMesh frames, producing the
    /// [`MeshWeight`] the unified build engine schedules. Binding only
    /// reads the frames (variable exports, coupler offsets, the cache
    /// tag) — it records nothing, so tapes are unaffected.
    pub fn bind<'w>(
        &'w self,
        frame_u: &MeshFrame<'_>,
        frame_v: &MeshFrame<'_>,
    ) -> BoundSuperWeight<'w> {
        let mut frame_vars = frame_imports(frame_u);
        frame_vars.extend(frame_imports(frame_v));
        BoundSuperWeight {
            weight: self,
            frame_vars,
            dc_start_u: frame_u.blocks.iter().map(|b| b.dc_start).collect(),
            dc_start_v: frame_v.blocks.iter().map(|b| b.dc_start).collect(),
            tag: frames_tag(frame_u, frame_v),
        }
    }

    /// The per-tile **reference-only** build (one [`super_unitary`] chain
    /// per tile). It exists to pin the batched path bit-equal to the
    /// paper's literal per-tile construction and is never on a hot path —
    /// the search inner loop always goes through [`SuperPtcWeight::build`]
    /// / the unified [`MeshWeight`] engine.
    pub fn build_per_tile<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        frame_u: &MeshFrame<'g>,
        frame_v: &MeshFrame<'g>,
    ) -> Var<'g> {
        let k = self.k;
        let n_tiles = self.grid_rows * self.grid_cols;
        let mut us_re_tiles = Vec::with_capacity(n_tiles);
        let mut us_im_tiles = Vec::with_capacity(n_tiles);
        let mut v_re_tiles = Vec::with_capacity(n_tiles);
        let mut v_im_tiles = Vec::with_capacity(n_tiles);
        for tile in 0..n_tiles {
            let (u_re, u_im) = super_unitary(ctx, frame_u, ctx.param(self.phases_u[tile]), true);
            let (v_re, v_im) = super_unitary(ctx, frame_v, ctx.param(self.phases_v[tile]), false);
            let sig = ctx.param(self.sigma[tile]);
            us_re_tiles.push(u_re.mul(sig));
            us_im_tiles.push(u_im.mul(sig));
            v_re_tiles.push(v_re);
            v_im_tiles.push(v_im);
        }
        let full = batched_tile_product(
            &us_re_tiles,
            &us_im_tiles,
            &v_re_tiles,
            &v_im_tiles,
            self.grid_rows,
            self.grid_cols,
        );
        if self.grid_rows * k == self.out_features && self.grid_cols * k == self.in_features {
            full
        } else {
            full.crop2d(self.out_features, self.in_features)
        }
    }
}

impl<'g> MeshWeight<'g> for BoundSuperWeight<'_> {
    fn uid(&self) -> u64 {
        self.weight.uid
    }

    fn param_ids(&self) -> Vec<ParamId> {
        self.weight.param_ids()
    }

    /// The fold of the bound frame variables' tape ids: a `build` call
    /// presenting *different* frames (e.g. rebuilt with a fresh Gumbel
    /// sample) than the scheduler used panics instead of silently wiring
    /// the cached weight to the wrong variables.
    fn build_tag(&self) -> u64 {
        self.tag
    }

    /// Build phase 1 (main thread): creates the phase-parameter leaves on
    /// the shared tape in the serial walk's order, followed by the bound
    /// frame variables as segment imports.
    fn stage(&self, ctx: &ForwardCtx<'g, '_>) -> StagedBuild {
        let w = self.weight;
        let n_tiles = w.grid_rows * w.grid_cols;
        let mut imports = Vec::with_capacity(2 * n_tiles + self.frame_vars.len());
        for &id in &w.phases_u {
            imports.push(ctx.param(id).export_import());
        }
        for &id in &w.phases_v {
            imports.push(ctx.param(id).export_import());
        }
        imports.extend(self.frame_vars.iter().cloned());
        StagedBuild {
            imports,
            ..StagedBuild::default()
        }
    }

    /// Build phase 2 (any thread): records `[stack, stack, U-walk, V-walk]`
    /// on a private sub-tape; with `parallel_uv` the two mesh walks record
    /// as concurrent sub-tape builds spliced back in U-then-V order.
    fn record_build_segment(&self, staged: &StagedBuild, parallel_uv: bool) -> TapeSegment {
        let w = self.weight;
        let k = w.k;
        let n_tiles = w.grid_rows * w.grid_cols;
        record_segment(&staged.imports, |g, proxies| {
            let (pu, rest) = proxies.split_at(n_tiles);
            let (pv, rest) = rest.split_at(n_tiles);
            let (fu_vars, fv_vars) = rest.split_at(FRAME_VARS_PER_BLOCK * self.dc_start_u.len());
            let su = stack(pu); // [T, B, K]
            let sv = stack(pv);
            let (u_re, u_im, v_re, v_im) = if parallel_uv {
                let mut imports_u = vec![su.export_import()];
                imports_u.extend(fu_vars.iter().map(Var::export_import));
                let mut imports_v = vec![sv.export_import()];
                imports_v.extend(fv_vars.iter().map(Var::export_import));
                let (dcu, dcv) = (&self.dc_start_u, &self.dc_start_v);
                let (seg_u, seg_v) = record_segment_pair(
                    &imports_u,
                    |g2, v| {
                        let frame = frame_from_proxies(&v[1..], k, dcu);
                        let (re, im) = batched_super_unitary_on(g2, &frame, v[0], true);
                        vec![re, im]
                    },
                    &imports_v,
                    |g2, v| {
                        let frame = frame_from_proxies(&v[1..], k, dcv);
                        let (re, im) = batched_super_unitary_on(g2, &frame, v[0], false);
                        vec![re, im]
                    },
                );
                let u = g.splice(seg_u);
                let v = g.splice(seg_v);
                (u[0], u[1], v[0], v[1])
            } else {
                let frame_u = frame_from_proxies(fu_vars, k, &self.dc_start_u);
                let frame_v = frame_from_proxies(fv_vars, k, &self.dc_start_v);
                let (u_re, u_im) = batched_super_unitary_on(g, &frame_u, su, true);
                let (v_re, v_im) = batched_super_unitary_on(g, &frame_v, sv, false);
                (u_re, u_im, v_re, v_im)
            };
            vec![u_re, u_im, v_re, v_im]
        })
    }

    /// Build phase 3 (main thread): splices the mesh-walk segment into the
    /// step tape and records the Σ product and fused grid assembly.
    fn finish_build(&self, ctx: &ForwardCtx<'g, '_>, segment: TapeSegment) -> Var<'g> {
        let w = self.weight;
        let k = w.k;
        let n_tiles = w.grid_rows * w.grid_cols;
        let spliced = ctx.graph.splice(segment);
        let (u_re, u_im, v_re, v_im) = (spliced[0], spliced[1], spliced[2], spliced[3]);
        let sigs: Vec<Var<'g>> = w.sigma.iter().map(|&id| ctx.param(id)).collect();
        let sig = stack(&sigs).reshape(&[n_tiles, 1, k]);
        let us_re = u_re.mul(sig);
        let us_im = u_im.mul(sig);
        batched_tile_product_grid(
            us_re,
            us_im,
            v_re,
            v_im,
            w.grid_rows,
            w.grid_cols,
            w.out_features,
            w.in_features,
        )
    }
}

/// Builds every search weight's mesh-unitary segment concurrently against
/// the step's shared SuperMesh frames and registers the finished variables
/// in `ctx`'s prebuilt cache — the frame-bound convenience form of the
/// unified [`prebuild_mesh_weights`] engine (staging, splicing and the Σ
/// products run on the main thread in layer-index order, so the resulting
/// tape is bit-identical to the serial walk at any thread count).
pub fn prebuild_super_ptc_weights<'g>(
    ctx: &ForwardCtx<'g, '_>,
    weights: &[&SuperPtcWeight],
    frame_u: &MeshFrame<'g>,
    frame_v: &MeshFrame<'g>,
) {
    let bound: Vec<BoundSuperWeight<'_>> =
        weights.iter().map(|w| w.bind(frame_u, frame_v)).collect();
    let dyns: Vec<&dyn MeshWeight<'g>> = bound.iter().map(|b| b as _).collect();
    prebuild_mesh_weights(ctx, &dyns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_autodiff::Graph;
    use adept_linalg::Permutation;

    fn setup(k: usize, n: usize, pinned: usize) -> (ParamStore, SuperMeshHandles) {
        let mut store = ParamStore::new();
        let h = SuperMeshHandles::register(&mut store, k, n, pinned, 1);
        (store, h)
    }

    #[test]
    fn registration_counts() {
        let (store, h) = setup(8, 5, 2);
        assert_eq!(h.arch_params().len(), 2 * (5 - 2));
        assert_eq!(h.topo_params().len(), 2 * (5 + 5));
        assert!(store.len() >= 20);
        // Interleaved offsets.
        assert_eq!(h.u.dc_start, vec![0, 1, 0, 1, 0]);
        // Pinned blocks have no theta.
        assert!(h.u.theta[3].is_none() && h.u.theta[4].is_none());
        assert!(h.u.theta[0].is_some());
    }

    #[test]
    fn smoothed_identity_initialization() {
        let (store, h) = setup(8, 2, 1);
        let p0 = store.value(h.u.perm[0]);
        let off = 1.0 / 14.0;
        // Smoothed identity plus a jitter within [0, off/2).
        assert!(p0.at(&[0, 0]) >= 0.5 && p0.at(&[0, 0]) < 0.5 + 0.5 * off);
        assert!(p0.at(&[0, 1]) >= off && p0.at(&[0, 1]) < 1.5 * off);
        // Rows and columns sum approximately to one (doubly stochastic up
        // to the jitter).
        for i in 0..8 {
            assert!((p0.row(i).sum() - 1.0).abs() < 8.0 * 0.5 * off);
            assert!((p0.col(i).sum() - 1.0).abs() < 8.0 * 0.5 * off);
        }
    }

    #[test]
    fn relaxed_permutation_is_doubly_stochastic_ish() {
        let (store, h) = setup(6, 1, 0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let p = relaxed_permutation(&ctx, ctx.param(h.u.perm[0]));
        let v = p.value();
        for i in 0..6 {
            assert!((v.row(i).sum() - 1.0).abs() < 1e-9, "row {i}");
        }
        assert!(v.min() >= 0.0);
    }

    #[test]
    fn relaxed_permutation_rounds_near_permutations() {
        let mut store = ParamStore::new();
        let perm = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        let mut near = perm.to_matrix();
        near.as_mut_slice()[0] = 0.02; // small off-one-hot perturbation
        let id = store.register("p", near, 0.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let p = relaxed_permutation(&ctx, ctx.param(id));
        // Rounded to the exact permutation with stopped gradients.
        assert!(p.value().allclose(&perm.to_matrix(), 1e-12));
        let loss = p.square().sum();
        let grads = graph.backward(loss);
        let g = grads.grad(ctx.param(id));
        assert!(
            g.is_none() || g.unwrap().norm() < 1e-12,
            "gradient must stop"
        );
    }

    #[test]
    fn coupler_binarization_values_and_gradient_clip() {
        let mut store = ParamStore::new();
        let id = store.register("t", Tensor::from_vec(vec![-0.5, 0.5, -0.01], &[3]), 0.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let tq = binarize_couplers(ctx.param(id));
        assert!(tq.value().allclose(
            &Tensor::from_vec(vec![FRAC_1_SQRT_2, 1.0, FRAC_1_SQRT_2], &[3]),
            1e-12
        ));
        let kappa = binarize_kappa(ctx.param(id));
        assert!(kappa.value().allclose(
            &Tensor::from_vec(vec![FRAC_1_SQRT_2, 0.0, FRAC_1_SQRT_2], &[3]),
            1e-12
        ));
        // Gradient is scaled and clipped.
        let loss = tq.mul_scalar(100.0).sum();
        let grads = graph.backward(loss);
        let g = grads.grad(ctx.param(id)).unwrap();
        assert!(g.as_slice().iter().all(|&x| x.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn super_unitary_with_pinned_identity_gates_is_unitary() {
        // All blocks pinned (deterministic execute), relaxed perms start
        // near identity → result must be (approximately) unitary thanks to
        // the soft projection + normalization.
        let (mut store, h) = setup(6, 3, 3);
        let phases = store.register(
            "phi",
            Tensor::rand_uniform(&mut StdRng::seed_from_u64(3), &[3, 6], -1.0, 1.0),
            0.0,
        );
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 6, &[[0.0; 2]; 3], 1.0);
        let (re, im) = super_unitary(&ctx, &frame, ctx.param(phases), true);
        // Row norms must be exactly 1 after normalization.
        let sq = re.square().add(im.square()).value();
        for i in 0..6 {
            assert!((sq.row(i).sum() - 1.0).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn super_unitary_exact_when_perms_legal() {
        // Force raw perms to exact permutations and couplers to decided
        // signs: then the super unitary (pinned gates) must be exactly
        // unitary and match the BlockMeshTopology reference.
        let k = 6;
        let (mut store, h) = setup(k, 2, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut perms = Vec::new();
        for b in 0..2 {
            let p = Permutation::random(&mut rng, k);
            *store.value_mut(h.u.perm[b]) = p.to_matrix();
            perms.push(p);
            let slots = (k - h.u.dc_start[b]) / 2;
            *store.value_mut(h.u.t[b]) = Tensor::from_vec(
                (0..slots)
                    .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
                    .collect(),
                &[slots],
            );
        }
        let phases_t = Tensor::rand_uniform(&mut rng, &[2, k], -2.0, 2.0);
        let phases = store.register("phi", phases_t.clone(), 0.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, k, &[[0.0; 2]; 2], 1.0);
        let (re, im) = super_unitary(&ctx, &frame, ctx.param(phases), true);
        let got = adept_linalg::CMatrix::from_re_im(&re.value(), &im.value());
        assert!(got.is_unitary(1e-9), "error {}", got.unitarity_error());
        // Reference through the photonics crate.
        let blocks: Vec<adept_photonics::MeshBlock> = (0..2)
            .map(|b| adept_photonics::MeshBlock {
                dc_start: h.u.dc_start[b],
                couplers: {
                    let slots = (k - h.u.dc_start[b]) / 2;
                    (0..slots).map(|i| i % 2 == 0).collect()
                },
                perm: perms[b].clone(),
            })
            .collect();
        let topo = adept_photonics::BlockMeshTopology::new(k, blocks);
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|b| (0..k).map(|j| phases_t.at(&[b, j])).collect())
            .collect();
        let want = topo.unitary(&cols);
        assert!(got.fro_dist(&want) < 1e-9);
    }

    #[test]
    fn gate_mixes_identity_and_block() {
        // With theta strongly favouring skip, the unitary ≈ identity.
        let (mut store, h) = setup(6, 1, 0);
        *store.value_mut(h.u.theta[0].unwrap()) = Tensor::from_vec(vec![20.0, -20.0], &[2]);
        let phases = store.register("phi", Tensor::ones(&[1, 6]), 0.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let frame = build_mesh_frame(&ctx, &h.u, 6, &[[0.0; 2]], 0.5);
        let (re, im) = super_unitary(&ctx, &frame, ctx.param(phases), true);
        assert!(re.value().allclose(&Tensor::eye(6), 1e-6));
        assert!(im.value().norm() < 1e-6);
        // Execute probability reflects theta.
        assert!(frame.blocks[0].exec_prob.value().item() < 1e-8);
    }

    #[test]
    fn batched_super_unitary_is_bit_equal_to_scalar_reference() {
        let k = 6;
        let (mut store, h) = setup(k, 3, 1);
        let mut rng = StdRng::seed_from_u64(31);
        let tiles = 4;
        let phases_t = Tensor::rand_uniform(&mut rng, &[tiles, 3, k], -2.0, 2.0);
        let phases = store.register("phi", phases_t.clone(), 0.0);
        let gumbel: Vec<[f64; 2]> = (0..3).map(|b| [0.1 * b as f64, -0.2]).collect();
        for normalize_rows in [true, false] {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let frame = build_mesh_frame(&ctx, &h.u, k, &gumbel, 0.7);
            let (re, im) = batched_super_unitary(&ctx, &frame, ctx.param(phases), normalize_rows);
            assert_eq!(re.shape(), vec![tiles, k, k]);
            for t in 0..tiles {
                let (sre, sim) = super_unitary(
                    &ctx,
                    &frame,
                    ctx.constant(phases_t.subtensor(t)),
                    normalize_rows,
                );
                assert_eq!(
                    re.value().subtensor(t).as_slice(),
                    sre.value().as_slice(),
                    "tile {t} (rows={normalize_rows}) real part must match bitwise"
                );
                assert_eq!(
                    im.value().subtensor(t).as_slice(),
                    sim.value().as_slice(),
                    "tile {t} (rows={normalize_rows}) imaginary part must match bitwise"
                );
            }
        }
    }

    #[test]
    fn batched_super_build_matches_per_tile_bitwise_and_in_gradients() {
        let (mut store, h) = setup(4, 2, 1);
        // 6×5 on K=4 → ragged edge tiles join the batched sweep.
        let w = SuperPtcWeight::new(&mut store, "w", 6, 5, 4, 2, 7);
        let run = |batched: bool, store: &ParamStore| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, store, true, 0);
            let fu = build_mesh_frame(&ctx, &h.u, 4, &[[0.1, -0.2], [0.0, 0.0]], 1.0);
            let fv = build_mesh_frame(&ctx, &h.v, 4, &[[0.3, 0.1], [0.0, 0.0]], 1.0);
            let built = if batched {
                w.build(&ctx, &fu, &fv)
            } else {
                w.build_per_tile(&ctx, &fu, &fv)
            };
            let value = built.value();
            let grads = graph.backward(built.square().sum());
            let mut per_param: Vec<(String, Tensor)> = ctx
                .into_param_grads(&grads)
                .into_iter()
                .map(|(id, g)| (store.name(id).to_string(), g))
                .collect();
            per_param.sort_by(|a, b| a.0.cmp(&b.0));
            (value, per_param)
        };
        let (vb, gb) = run(true, &store);
        let (vp, gp) = run(false, &store);
        assert_eq!(vb.as_slice(), vp.as_slice(), "values must be bit-identical");
        assert_eq!(gb.len(), gp.len(), "same parameters must receive grads");
        for ((name, b), (_, p)) in gb.iter().zip(&gp) {
            assert!(
                b.allclose(p, 1e-9),
                "gradient of {name} diverges: max diff {}",
                b.max_abs_diff(p)
            );
        }
    }

    #[test]
    fn prebuild_super_weights_is_bit_identical_across_thread_counts() {
        // Shared frames + two ragged weights: the parallel scheduler must
        // reproduce the serial tape exactly — same node count, values and
        // per-parameter gradients — at every thread count.
        let (mut store, h) = setup(4, 3, 1);
        let w1 = SuperPtcWeight::new(&mut store, "w1", 6, 5, 4, 3, 70);
        let w2 = SuperPtcWeight::new(&mut store, "w2", 9, 7, 4, 3, 71);
        let run = |threads: usize,
                   prebuild: bool|
         -> (usize, Vec<f64>, Vec<(String, adept_tensor::Tensor)>) {
            adept_tensor::set_gemm_threads(threads);
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 5);
            let fu = build_mesh_frame(&ctx, &h.u, 4, &[[0.2, -0.1]; 3], 0.8);
            let fv = build_mesh_frame(&ctx, &h.v, 4, &[[0.1, 0.3]; 3], 0.8);
            if prebuild {
                prebuild_super_ptc_weights(&ctx, &[&w1, &w2], &fu, &fv);
            }
            let b1 = w1.build(&ctx, &fu, &fv);
            let b2 = w2.build(&ctx, &fu, &fv);
            let loss = b1.square().sum().add(b2.square().sum());
            let values: Vec<f64> = b1
                .value()
                .as_slice()
                .iter()
                .chain(b2.value().as_slice())
                .copied()
                .collect();
            let grads = graph.backward(loss);
            let mut per_param: Vec<(String, adept_tensor::Tensor)> = ctx
                .into_param_grads(&grads)
                .into_iter()
                .map(|(id, g)| (store.name(id).to_string(), g))
                .collect();
            per_param.sort_by(|a, b| a.0.cmp(&b.0));
            adept_tensor::set_gemm_threads(0);
            (graph.len(), values, per_param)
        };
        let (len_serial, val_serial, grad_serial) = run(1, false);
        for threads in [1usize, 2, 8] {
            let (len_p, val_p, grad_p) = run(threads, true);
            assert_eq!(len_serial, len_p, "tape length ({threads} threads)");
            assert_eq!(val_serial, val_p, "values ({threads} threads)");
            assert_eq!(grad_serial.len(), grad_p.len());
            for ((name, a), (name2, b)) in grad_serial.iter().zip(&grad_p) {
                assert_eq!(name, name2);
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "gradient of {name} must be bit-identical ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn super_ptc_weight_builds_and_backprops() {
        let (mut store, h) = setup(4, 2, 1);
        let w = SuperPtcWeight::new(&mut store, "w", 6, 5, 4, 2, 7);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let fu = build_mesh_frame(&ctx, &h.u, 4, &[[0.1, -0.2], [0.0, 0.0]], 1.0);
        let fv = build_mesh_frame(&ctx, &h.v, 4, &[[0.3, 0.1], [0.0, 0.0]], 1.0);
        let built = w.build(&ctx, &fu, &fv);
        assert_eq!(built.shape(), vec![5, 6]);
        let grads = graph.backward(built.square().sum());
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        // Phases, sigma, perms, couplers and theta all receive gradient.
        let any_grad = |ids: &[ParamId]| ids.iter().any(|&id| store.grad(id).norm() > 1e-12);
        assert!(any_grad(&w.param_ids()), "tile weights");
        assert!(any_grad(&h.topo_params()), "topology params");
        assert!(any_grad(&h.arch_params()), "arch params");
    }
}
