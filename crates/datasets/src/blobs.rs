//! Low-dimensional Gaussian-blob classification data for fast unit tests of
//! optimizers and training loops.

use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an `n`-sample, `classes`-way Gaussian blob problem in `dim`
/// dimensions: class `c` is centred at a random point with isotropic spread
/// `std`. Returns `(features [n, dim], labels)`.
///
/// # Panics
///
/// Panics if `classes < 2` or `dim == 0`.
///
/// # Examples
///
/// ```
/// use adept_datasets::gaussian_blobs;
///
/// let (x, y) = gaussian_blobs(60, 4, 3, 0.2, 7);
/// assert_eq!(x.shape(), &[60, 4]);
/// assert_eq!(y.len(), 60);
/// ```
pub fn gaussian_blobs(
    n: usize,
    dim: usize,
    classes: usize,
    std: f64,
    seed: u64,
) -> (Tensor, Vec<usize>) {
    assert!(classes >= 2, "need at least two classes");
    assert!(dim > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        for d in 0..dim {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            data.push(centers[c][d] + std * g);
        }
    }
    (Tensor::from_vec(data, &[n, dim]), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_balanced() {
        let (x1, y1) = gaussian_blobs(30, 3, 3, 0.1, 1);
        let (x2, _) = gaussian_blobs(30, 3, 3, 0.1, 1);
        assert_eq!(x1, x2);
        for c in 0..3 {
            assert_eq!(y1.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn tight_blobs_are_separable() {
        let (x, y) = gaussian_blobs(90, 2, 3, 0.05, 2);
        // Nearest-centroid should be near perfect on tight blobs.
        let mut centers = vec![vec![0.0; 2]; 3];
        for i in 0..90 {
            centers[y[i]][0] += x.at(&[i, 0]) / 30.0;
            centers[y[i]][1] += x.at(&[i, 1]) / 30.0;
        }
        let mut correct = 0;
        for i in 0..90 {
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da = (x.at(&[i, 0]) - centers[a][0]).powi(2)
                        + (x.at(&[i, 1]) - centers[a][1]).powi(2);
                    let db = (x.at(&[i, 0]) - centers[b][0]).powi(2)
                        + (x.at(&[i, 1]) - centers[b][1]).powi(2);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == y[i] {
                correct += 1;
            }
        }
        assert!(correct >= 85, "only {correct}/90 correct");
    }
}
