//! Class-prototype synthetic image generation.

use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled image dataset in NCHW layout.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `[N, C, H, W]`, roughly zero-mean unit-scale.
    pub images: Tensor,
    /// One label in `0..num_classes` per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image shape `[C, H, W]`.
    pub fn image_shape(&self) -> [usize; 3] {
        [
            self.images.shape()[1],
            self.images.shape()[2],
            self.images.shape()[3],
        ]
    }

    /// Extracts samples `[start, start+count)` as a batch tensor and label
    /// vector.
    ///
    /// Zero-copy: a contiguous range of the leading axis is a window into
    /// the dataset's storage, so every training step's batch shares the
    /// dataset allocation (copy-on-write protects the dataset if a consumer
    /// mutates the batch).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, count: usize) -> (Tensor, Vec<usize>) {
        assert!(start + count <= self.len(), "batch range out of bounds");
        (
            self.images.view().slice(0, start, count).materialize(),
            self.labels[start..start + count].to_vec(),
        )
    }

    /// Returns a copy with samples shuffled by `rng`.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let [c, h, w] = self.image_shape();
        let stride = c * h * w;
        let mut data = Vec::with_capacity(self.images.len());
        let mut labels = Vec::with_capacity(self.len());
        for &i in &order {
            data.extend_from_slice(&self.images.as_slice()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &[self.len(), c, h, w]),
            labels,
            num_classes: self.num_classes,
        }
    }
}

/// Which benchmark the synthetic set stands in for. Difficulty increases
/// down the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Grayscale digits-like: crisp prototypes, little noise.
    MnistLike,
    /// Grayscale garments-like: more texture noise and mild clutter.
    FashionMnistLike,
    /// RGB street-digits-like: heavy clutter and jitter.
    SvhnLike,
    /// RGB natural-images-like: the hardest profile, overlapping classes.
    Cifar10Like,
}

impl DatasetKind {
    /// Channel count of the profile.
    pub fn channels(self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::FashionMnistLike => 1,
            DatasetKind::SvhnLike | DatasetKind::Cifar10Like => 3,
        }
    }

    /// Short name used in experiment printouts.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST*",
            DatasetKind::FashionMnistLike => "FMNIST*",
            DatasetKind::SvhnLike => "SVHN*",
            DatasetKind::Cifar10Like => "CIFAR10*",
        }
    }

    fn profile(self) -> Difficulty {
        match self {
            DatasetKind::MnistLike => Difficulty {
                pixel_noise: 0.25,
                jitter: 1,
                clutter: 0.0,
                class_overlap: 0.0,
                contrast_jitter: 0.15,
            },
            DatasetKind::FashionMnistLike => Difficulty {
                pixel_noise: 0.45,
                jitter: 1,
                clutter: 0.25,
                class_overlap: 0.25,
                contrast_jitter: 0.3,
            },
            DatasetKind::SvhnLike => Difficulty {
                pixel_noise: 0.65,
                jitter: 2,
                clutter: 0.5,
                class_overlap: 0.45,
                contrast_jitter: 0.4,
            },
            DatasetKind::Cifar10Like => Difficulty {
                pixel_noise: 0.8,
                jitter: 2,
                clutter: 0.7,
                class_overlap: 0.6,
                contrast_jitter: 0.5,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Difficulty {
    pixel_noise: f64,
    jitter: usize,
    clutter: f64,
    /// Fraction of each prototype shared with a common base pattern; higher
    /// means classes are harder to tell apart.
    class_overlap: f64,
    contrast_jitter: f64,
}

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Difficulty profile.
    pub kind: DatasetKind,
    /// Square image size (default 12).
    pub image_size: usize,
    /// Number of classes (default 10).
    pub num_classes: usize,
    /// Training samples (default 512).
    pub n_train: usize,
    /// Test samples (default 256).
    pub n_test: usize,
}

impl SyntheticConfig {
    /// A config with the profile's defaults: 12×12 images, 10 classes,
    /// 512 train / 256 test samples.
    pub fn new(kind: DatasetKind) -> Self {
        Self {
            kind,
            image_size: 12,
            num_classes: 10,
            n_train: 512,
            n_test: 256,
        }
    }

    /// Overrides sample counts.
    pub fn with_sizes(mut self, n_train: usize, n_test: usize) -> Self {
        self.n_train = n_train;
        self.n_test = n_test;
        self
    }

    /// Overrides the square image size.
    pub fn with_image_size(mut self, size: usize) -> Self {
        self.image_size = size;
        self
    }

    /// Overrides the class count.
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.num_classes = classes;
        self
    }

    /// Generates `(train, test)` splits deterministically from `seed`.
    ///
    /// Prototypes depend only on `(kind, seed)`, so train and test samples
    /// are drawn from the same class-conditional distribution.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than 6×6 or there are no classes.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        assert!(self.image_size >= 6, "images must be at least 6x6");
        assert!(self.num_classes >= 2, "need at least two classes");
        let mut proto_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let prototypes = self.make_prototypes(&mut proto_rng);
        let train = self.sample_split(&prototypes, self.n_train, StdRng::seed_from_u64(seed));
        let test = self.sample_split(
            &prototypes,
            self.n_test,
            StdRng::seed_from_u64(seed ^ 0x5151_1515),
        );
        (train, test)
    }

    /// One smooth prototype image per class and channel.
    fn make_prototypes(&self, rng: &mut StdRng) -> Vec<Tensor> {
        let d = self.kind.profile();
        let (s, c) = (self.image_size, self.kind.channels());
        // A base pattern shared across classes controls overlap.
        let base = smooth_pattern(rng, s, c);
        (0..self.num_classes)
            .map(|_| {
                let own = smooth_pattern(rng, s, c);
                let mut p = Tensor::zeros(&[c, s, s]);
                for i in 0..p.len() {
                    p.as_mut_slice()[i] = d.class_overlap * base.as_slice()[i]
                        + (1.0 - d.class_overlap) * own.as_slice()[i];
                }
                normalize(&mut p);
                p
            })
            .collect()
    }

    fn sample_split(&self, prototypes: &[Tensor], n: usize, mut rng: StdRng) -> Dataset {
        let d = self.kind.profile();
        let (s, c) = (self.image_size, self.kind.channels());
        let mut data = Vec::with_capacity(n * c * s * s);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes; // balanced classes
            labels.push(class);
            let proto = &prototypes[class];
            let dx = rng.gen_range(-(d.jitter as isize)..=d.jitter as isize);
            let dy = rng.gen_range(-(d.jitter as isize)..=d.jitter as isize);
            let contrast = 1.0 + rng.gen_range(-d.contrast_jitter..d.contrast_jitter);
            // Clutter: a random smooth bump added on top.
            let clutter = if d.clutter > 0.0 {
                Some((
                    rng.gen_range(0.0..d.clutter),
                    rng.gen_range(0..s),
                    rng.gen_range(0..s),
                    rng.gen_range(1.0..2.5f64),
                ))
            } else {
                None
            };
            for ch in 0..c {
                for y in 0..s {
                    for x in 0..s {
                        let sy = y as isize + dy;
                        let sx = x as isize + dx;
                        let mut v = if sy >= 0 && sy < s as isize && sx >= 0 && sx < s as isize {
                            proto.at(&[ch, sy as usize, sx as usize]) * contrast
                        } else {
                            0.0
                        };
                        if let Some((amp, cy, cx, sigma)) = clutter {
                            let r2 =
                                (y as f64 - cy as f64).powi(2) + (x as f64 - cx as f64).powi(2);
                            v += amp * (-r2 / (2.0 * sigma * sigma)).exp();
                        }
                        v += d.pixel_noise * normal(&mut rng);
                        data.push(v);
                    }
                }
            }
        }
        Dataset {
            images: Tensor::from_vec(data, &[n, c, s, s]),
            labels,
            num_classes: self.num_classes,
        }
    }
}

/// A smooth random pattern: a few Gaussian bumps plus one oriented wave.
fn smooth_pattern(rng: &mut StdRng, s: usize, channels: usize) -> Tensor {
    let mut t = Tensor::zeros(&[channels, s, s]);
    let bumps: Vec<(f64, f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(-1.5..1.5),             // amplitude
                rng.gen_range(0.0..s as f64),         // cy
                rng.gen_range(0.0..s as f64),         // cx
                rng.gen_range(1.0..(s as f64) / 2.5), // sigma
                rng.gen_range(0.0..1.0),              // channel phase
            )
        })
        .collect();
    let (fy, fx, ph) = (
        rng.gen_range(0.2..1.0),
        rng.gen_range(0.2..1.0),
        rng.gen_range(0.0..std::f64::consts::TAU),
    );
    for ch in 0..channels {
        let ch_rot = ch as f64 * 0.8;
        for y in 0..s {
            for x in 0..s {
                let mut v = 0.0;
                for &(a, cy, cx, sigma, cph) in &bumps {
                    let r2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                    v += a * (1.0 - 0.4 * (cph * ch_rot)) * (-r2 / (2.0 * sigma * sigma)).exp();
                }
                v += 0.6 * (fy * y as f64 + fx * x as f64 + ph + ch_rot).sin();
                *t.at_mut(&[ch, y, x]) = v;
            }
        }
    }
    t
}

fn normalize(t: &mut Tensor) {
    let mean = t.mean();
    let std = t.map(|x| (x - mean) * (x - mean)).mean().sqrt().max(1e-9);
    t.map_inplace(|x| (x - mean) / std);
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = SyntheticConfig::new(DatasetKind::MnistLike).with_sizes(40, 20);
        let (tr1, te1) = cfg.generate(7);
        let (tr2, _) = cfg.generate(7);
        assert_eq!(tr1.images.shape(), &[40, 1, 12, 12]);
        assert_eq!(te1.images.shape(), &[20, 1, 12, 12]);
        assert_eq!(tr1.images, tr2.images);
        assert_eq!(tr1.labels, tr2.labels);
        let (tr3, _) = cfg.generate(8);
        assert!(
            tr1.images.max_abs_diff(&tr3.images) > 1e-6,
            "seeds must differ"
        );
    }

    #[test]
    fn rgb_kinds_have_three_channels() {
        let cfg = SyntheticConfig::new(DatasetKind::SvhnLike).with_sizes(10, 4);
        let (tr, _) = cfg.generate(1);
        assert_eq!(tr.image_shape(), [3, 12, 12]);
        assert_eq!(DatasetKind::Cifar10Like.channels(), 3);
        assert_eq!(DatasetKind::FashionMnistLike.channels(), 1);
    }

    #[test]
    fn labels_are_balanced() {
        let cfg = SyntheticConfig::new(DatasetKind::MnistLike)
            .with_sizes(50, 20)
            .with_classes(5);
        let (tr, _) = cfg.generate(3);
        for class in 0..5 {
            assert_eq!(tr.labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }

    #[test]
    fn batch_extraction() {
        let cfg = SyntheticConfig::new(DatasetKind::MnistLike).with_sizes(30, 10);
        let (tr, _) = cfg.generate(5);
        let (images, labels) = tr.batch(10, 5);
        assert_eq!(images.shape(), &[5, 1, 12, 12]);
        assert_eq!(labels, tr.labels[10..15]);
        assert_eq!(images.as_slice()[0], tr.images.as_slice()[10 * 144]);
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let cfg = SyntheticConfig::new(DatasetKind::MnistLike).with_sizes(24, 8);
        let (tr, _) = cfg.generate(9);
        let mut rng = StdRng::seed_from_u64(1);
        let sh = tr.shuffled(&mut rng);
        assert_eq!(sh.len(), tr.len());
        // Same multiset of labels.
        let mut a = tr.labels.clone();
        let mut b = sh.labels.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Image/label pairing preserved: find sample 0 of tr inside sh.
        let stride = 144;
        let target = &tr.images.as_slice()[..stride];
        let found =
            (0..sh.len()).find(|&i| sh.images.as_slice()[i * stride..(i + 1) * stride] == *target);
        let idx = found.expect("shuffled set must contain original sample");
        assert_eq!(sh.labels[idx], tr.labels[0]);
    }

    #[test]
    fn class_signal_exceeds_noise_for_easy_profile() {
        // Nearest-prototype classification on MNIST-like data should beat
        // chance by a wide margin — the task must be learnable.
        let cfg = SyntheticConfig::new(DatasetKind::MnistLike).with_sizes(200, 100);
        let (tr, te) = cfg.generate(11);
        // Estimate class means from train.
        let [c, h, w] = tr.image_shape();
        let stride = c * h * w;
        let mut means = vec![vec![0.0f64; stride]; tr.num_classes];
        let mut counts = vec![0usize; tr.num_classes];
        for i in 0..tr.len() {
            let l = tr.labels[i];
            counts[l] += 1;
            for j in 0..stride {
                means[l][j] += tr.images.as_slice()[i * stride + j];
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= n as f64;
            }
        }
        let mut correct = 0;
        for i in 0..te.len() {
            let img = &te.images.as_slice()[i * stride..(i + 1) * stride];
            let best = (0..te.num_classes)
                .min_by(|&a, &b| {
                    let da: f64 = img
                        .iter()
                        .zip(&means[a])
                        .map(|(x, m)| (x - m) * (x - m))
                        .sum();
                    let db: f64 = img
                        .iter()
                        .zip(&means[b])
                        .map(|(x, m)| (x - m) * (x - m))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == te.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / te.len() as f64;
        assert!(acc > 0.6, "nearest-prototype accuracy too low: {acc}");
    }

    #[test]
    fn difficulty_ordering_holds() {
        // Nearest-prototype accuracy should degrade with the profile.
        let accuracy = |kind: DatasetKind| -> f64 {
            let cfg = SyntheticConfig::new(kind).with_sizes(300, 150);
            let (tr, te) = cfg.generate(13);
            let [c, h, w] = tr.image_shape();
            let stride = c * h * w;
            let mut means = vec![vec![0.0f64; stride]; tr.num_classes];
            let mut counts = vec![0usize; tr.num_classes];
            for i in 0..tr.len() {
                let l = tr.labels[i];
                counts[l] += 1;
                for j in 0..stride {
                    means[l][j] += tr.images.as_slice()[i * stride + j];
                }
            }
            for (m, &n) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= n as f64;
                }
            }
            let mut correct = 0;
            for i in 0..te.len() {
                let img = &te.images.as_slice()[i * stride..(i + 1) * stride];
                let best = (0..te.num_classes)
                    .min_by(|&a, &b| {
                        let da: f64 = img
                            .iter()
                            .zip(&means[a])
                            .map(|(x, m)| (x - m) * (x - m))
                            .sum();
                        let db: f64 = img
                            .iter()
                            .zip(&means[b])
                            .map(|(x, m)| (x - m) * (x - m))
                            .sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if best == te.labels[i] {
                    correct += 1;
                }
            }
            correct as f64 / te.len() as f64
        };
        let mnist = accuracy(DatasetKind::MnistLike);
        let cifar = accuracy(DatasetKind::Cifar10Like);
        assert!(
            mnist > cifar + 0.05,
            "difficulty ordering violated: mnist {mnist} vs cifar {cifar}"
        );
    }
}
