//! Synthetic dataset substrate for the ADEPT reproduction.
//!
//! The paper trains on MNIST and transfers to FashionMNIST, SVHN and
//! CIFAR-10. None of those can be downloaded in this environment, so this
//! crate generates deterministic synthetic stand-ins with a controlled
//! *difficulty ordering*: class-prototype images plus per-sample jitter,
//! contrast variation, pixel noise and clutter, with the harder profiles
//! using noisier, more overlapping classes and RGB channels.
//!
//! What the experiments need from the data is (a) a trainable proxy task and
//! (b) the relative difficulty MNIST < FashionMNIST < SVHN ≲ CIFAR-10 so
//! that accuracy *gaps between PTC designs* keep the paper's shape; both are
//! properties of task structure rather than of the original pixels.
//!
//! # Examples
//!
//! ```
//! use adept_datasets::{DatasetKind, SyntheticConfig};
//!
//! let cfg = SyntheticConfig::new(DatasetKind::MnistLike).with_sizes(128, 32);
//! let (train, test) = cfg.generate(42);
//! assert_eq!(train.len(), 128);
//! assert_eq!(test.images.shape()[1..], [1, 12, 12]);
//! ```

mod blobs;
mod images;

pub use blobs::gaussian_blobs;
pub use images::{Dataset, DatasetKind, SyntheticConfig};
