//! Optimal assignment (Hungarian algorithm, O(n³)).
//!
//! Stochastic permutation legalization needs a *best* legal permutation for
//! a relaxed doubly-stochastic matrix when its stochastic proposals fail;
//! maximizing `Σᵢ P[i, σ(i)]` is exactly the linear assignment problem.

use crate::permutation::Permutation;
use adept_tensor::Tensor;

/// Solves the minimum-cost assignment for a square cost matrix, returning
/// the row-to-column map and the total cost.
///
/// Implements the potentials (Kuhn–Munkres/Jonker-Volgenant style) O(n³)
/// algorithm.
///
/// # Panics
///
/// Panics if `cost` is not a square matrix or contains non-finite entries.
///
/// # Examples
///
/// ```
/// use adept_linalg::min_cost_assignment;
/// use adept_tensor::Tensor;
///
/// let cost = Tensor::from_vec(vec![
///     4.0, 1.0, 3.0,
///     2.0, 0.0, 5.0,
///     3.0, 2.0, 2.0,
/// ], &[3, 3]);
/// let (assignment, total) = min_cost_assignment(&cost);
/// assert_eq!(assignment.as_slice(), &[1, 0, 2]); // rows → cols
/// assert_eq!(total, 5.0);
/// ```
pub fn min_cost_assignment(cost: &Tensor) -> (Permutation, f64) {
    assert_eq!(cost.rank(), 2, "assignment expects a matrix");
    let n = cost.shape()[0];
    assert_eq!(n, cost.shape()[1], "assignment expects a square matrix");
    assert!(
        cost.as_slice().iter().all(|x| x.is_finite()),
        "assignment requires finite costs"
    );
    let a = |i: usize, j: usize| cost.as_slice()[(i - 1) * n + (j - 1)];
    // 1-indexed arrays with a virtual 0 row/col (e-maxx formulation).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = a(i0, j) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut image = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        image[p[j] - 1] = j - 1;
        total += a(p[j], j);
    }
    (
        Permutation::from_vec(image).expect("assignment is a bijection"),
        total,
    )
}

/// The permutation maximizing `Σᵢ weight[i, σ(i)]` — the optimal
/// legalization of a relaxed permutation matrix.
///
/// # Panics
///
/// Panics if `weight` is not a square matrix with finite entries.
pub fn max_weight_permutation(weight: &Tensor) -> Permutation {
    let negated = weight.map(|x| -x);
    min_cost_assignment(&negated).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute force over all permutations for reference.
    fn brute_force_min(cost: &Tensor) -> f64 {
        let n = cost.shape()[0];
        let mut best = f64::INFINITY;
        let mut image: Vec<usize> = (0..n).collect();
        permute(&mut image, 0, &mut |perm| {
            let total: f64 = perm
                .iter()
                .enumerate()
                .map(|(i, &j)| cost.as_slice()[i * n + j])
                .sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn identity_cost_prefers_diagonal() {
        // Cost 0 on the diagonal, 1 elsewhere → identity assignment.
        let n = 5;
        let cost = &(-&Tensor::eye(n)) + 1.0;
        let (p, total) = min_cost_assignment(&cost);
        assert!(p.is_identity());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = 2 + (trial % 5);
            let cost = Tensor::rand_uniform(&mut rng, &[n, n], -5.0, 5.0);
            let (_, total) = min_cost_assignment(&cost);
            let want = brute_force_min(&cost);
            assert!(
                (total - want).abs() < 1e-9,
                "trial {trial}: {total} vs brute {want}"
            );
        }
    }

    #[test]
    fn max_weight_recovers_noisy_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let p = Permutation::random(&mut rng, 8);
            // Strong signal on the permutation, small noise elsewhere.
            let mut w = p.to_matrix();
            let noise = Tensor::rand_uniform(&mut rng, &[8, 8], 0.0, 0.3);
            w.axpy(1.0, &noise);
            assert_eq!(max_weight_permutation(&w), p);
        }
    }

    #[test]
    fn max_weight_beats_greedy_on_adversarial_case() {
        // Greedy (highest row max first) picks (0→0)=0.9 forcing (1→1)=0.1;
        // optimal is (0→1)=0.8, (1→0)=0.85 with total 1.65 > 1.0.
        let w = Tensor::from_vec(vec![0.9, 0.8, 0.85, 0.1], &[2, 2]);
        let p = max_weight_permutation(&w);
        assert_eq!(p.as_slice(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_costs() {
        let mut cost = Tensor::eye(3);
        cost.as_mut_slice()[1] = f64::NAN;
        let _ = min_cost_assignment(&cost);
    }
}
