//! Numerical linear algebra for the ADEPT reproduction.
//!
//! Built from scratch (no external linear-algebra crates):
//!
//! * [`C64`] / [`CMatrix`] — complex scalars and dense complex matrices used
//!   by the photonic transfer-matrix substrate;
//! * [`svd`] — one-sided Jacobi singular value decomposition of real
//!   matrices, plus the orthogonal polar factor used by ADEPT's stochastic
//!   permutation legalization (SPL);
//! * [`Permutation`] — permutation algebra including the
//!   adjacent-transposition (= waveguide crossing) count that drives the
//!   footprint model.
//!
//! # Examples
//!
//! ```
//! use adept_linalg::Permutation;
//!
//! let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
//! assert_eq!(p.crossing_count(), 2);
//! ```

mod assignment;
mod complex;
mod permutation;
mod svd;

pub use assignment::{max_weight_permutation, min_cost_assignment};
pub use complex::{CMatrix, C64};
pub use permutation::{ParsePermutationError, Permutation};
pub use svd::{polar_orthogonal, svd, Svd};
