//! Complex scalars and dense complex matrices.
//!
//! The offline dependency set has no complex-number crate, so this module
//! provides the small amount of complex arithmetic the photonic substrate
//! needs: a `Copy` scalar type with the usual field operations, and a dense
//! row-major matrix with products, adjoints and unitarity diagnostics.

use adept_tensor::matmul_into;
use adept_tensor::Tensor;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};
use std::sync::Arc;

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use adept_linalg::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::from_polar(2.0, std::f64::consts::FRAC_PI_2) - 2.0 * i).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·j`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — the phase factor applied by a phase shifter is
    /// `C64::cis(-φ)`.
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self * rhs.re, self * rhs.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::new(re, 0.0)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

/// A dense row-major complex matrix with planar, shared storage.
///
/// # Storage model
///
/// The real and imaginary planes live back-to-back in **one**
/// `Arc<Vec<f64>>` allocation: `[re(0,0) … re(r-1,c-1) | im(0,0) …]`.
/// [`CMatrix::re`] and [`CMatrix::im`] therefore return *zero-copy*
/// [`Tensor`] windows over that allocation — the hot path that feeds
/// transfer-matrix constants onto the autodiff tape never copies a plane.
/// Mutation ([`CMatrix::set`], [`CMatrix::scale_inplace`]) is copy-on-write
/// through the shared `Arc`, so extracted planes are never invalidated.
///
/// # Examples
///
/// ```
/// use adept_linalg::CMatrix;
///
/// let id = CMatrix::identity(4);
/// assert!(id.is_unitary(1e-12));
/// // Planes window one allocation.
/// assert!(id.re().shares_storage(&id.im()));
/// ```
#[derive(Debug, Clone)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    /// `[re plane | im plane]`, each `rows * cols` elements.
    storage: Arc<Vec<f64>>,
}

impl PartialEq for CMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && *self.storage == *other.storage
    }
}

impl CMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            storage: Arc::new(vec![0.0; 2 * rows * cols]),
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, C64::ONE);
        }
        m
    }

    /// Creates a matrix from a row-major element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<C64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "element count mismatch");
        let plane = rows * cols;
        let mut storage = vec![0.0; 2 * plane];
        for (i, z) in data.iter().enumerate() {
            storage[i] = z.re;
            storage[plane + i] = z.im;
        }
        Self {
            rows,
            cols,
            storage: Arc::new(storage),
        }
    }

    /// Creates a diagonal matrix from complex diagonal entries.
    pub fn from_diag(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a complex matrix from separate real/imaginary tensors.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are matrices of identical shape.
    pub fn from_re_im(re: &Tensor, im: &Tensor) -> Self {
        assert_eq!(re.rank(), 2, "re must be a matrix");
        assert_eq!(re.shape(), im.shape(), "re/im shape mismatch");
        let (rows, cols) = (re.shape()[0], re.shape()[1]);
        let plane = rows * cols;
        let mut storage = vec![0.0; 2 * plane];
        storage[..plane].copy_from_slice(re.as_slice());
        storage[plane..].copy_from_slice(im.as_slice());
        Self {
            rows,
            cols,
            storage: Arc::new(storage),
        }
    }

    /// Real plane as a tensor — zero-copy window into this matrix's
    /// allocation.
    pub fn re(&self) -> Tensor {
        Tensor::from_shared(Arc::clone(&self.storage), 0, &[self.rows, self.cols])
    }

    /// Imaginary plane as a tensor — zero-copy window into this matrix's
    /// allocation.
    pub fn im(&self) -> Tensor {
        Tensor::from_shared(
            Arc::clone(&self.storage),
            self.rows * self.cols,
            &[self.rows, self.cols],
        )
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn plane(&self) -> usize {
        self.rows * self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    pub fn at(&self, i: usize, j: usize) -> C64 {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        let off = i * self.cols + j;
        C64::new(self.storage[off], self.storage[self.plane() + off])
    }

    /// Writes element `(i, j)` (copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    pub fn set(&mut self, i: usize, j: usize, v: C64) {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        let off = i * self.cols + j;
        let plane = self.plane();
        let data = Arc::make_mut(&mut self.storage);
        data[off] = v.re;
        data[plane + off] = v.im;
    }

    /// Applies `f` to element `(i, j)` in place (copy-on-write).
    pub fn update(&mut self, i: usize, j: usize, f: impl FnOnce(C64) -> C64) {
        let v = self.at(i, j);
        self.set(i, j, f(v));
    }

    /// Mutable access to the real and imaginary planes at once — a single
    /// copy-on-write detach, for kernels that rewrite many elements (the
    /// Clements rotation loops use this instead of per-element
    /// [`CMatrix::set`]).
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        let plane = self.plane();
        Arc::make_mut(&mut self.storage).split_at_mut(plane)
    }

    /// Matrix product, computed as four real GEMMs over the planar
    /// storage (reusing the threaded real kernel).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let plane = m * n;
        let a_re = &self.storage[..m * k];
        let a_im = &self.storage[m * k..];
        let b_re = &rhs.storage[..k * n];
        let b_im = &rhs.storage[k * n..];
        let mut storage = vec![0.0; 2 * plane];
        let mut tmp = vec![0.0; plane];
        {
            let (out_re, out_im) = storage.split_at_mut(plane);
            // re = a_re·b_re − a_im·b_im.
            matmul_into(a_re, b_re, out_re, m, k, n);
            matmul_into(a_im, b_im, &mut tmp, m, k, n);
            for (o, t) in out_re.iter_mut().zip(&tmp) {
                *o -= t;
            }
            // im = a_re·b_im + a_im·b_re.
            matmul_into(a_re, b_im, out_im, m, k, n);
            matmul_into(a_im, b_re, &mut tmp, m, k, n);
            for (o, t) in out_im.iter_mut().zip(&tmp) {
                *o += t;
            }
        }
        CMatrix {
            rows: m,
            cols: n,
            storage: Arc::new(storage),
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut s = C64::ZERO;
                for (j, &x) in v.iter().enumerate() {
                    s += self.at(i, j) * x;
                }
                s
            })
            .collect()
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        let plane = self.plane();
        let data = Arc::make_mut(&mut out.storage);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let src = i * self.cols + j;
                let dst = j * self.rows + i;
                data[dst] = self.storage[src];
                data[plane + dst] = -self.storage[plane + src];
            }
        }
        out
    }

    /// Frobenius distance to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn fro_dist(&self, other: &CMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.storage
            .iter()
            .zip(other.storage.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Deviation from unitarity: `‖AᴴA − I‖_F`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn unitarity_error(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "unitarity needs a square matrix");
        self.adjoint()
            .matmul(self)
            .fro_dist(&CMatrix::identity(self.rows))
    }

    /// Whether the matrix is unitary within Frobenius tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.unitarity_error() <= tol
    }

    /// Multiplies every element by a complex scalar in place
    /// (copy-on-write).
    pub fn scale_inplace(&mut self, s: C64) {
        let plane = self.plane();
        let data = Arc::make_mut(&mut self.storage);
        for off in 0..plane {
            let z = C64::new(data[off], data[plane + off]) * s;
            data[off] = z.re;
            data[plane + off] = z.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_field_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        assert_eq!(a * C64::ONE, a);
        let prod = a * b;
        assert!((prod.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-15);
        assert!((prod.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-15);
        let q = a / b;
        assert!(((q * b) - a).abs() < 1e-12);
        assert_eq!(-a, C64::new(-1.0, -2.0));
        assert_eq!(C64::from(2.0), C64::new(2.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(3.0, 0.7);
        assert!((z.abs() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
        assert!((C64::cis(1.2).abs() - 1.0).abs() < 1e-12);
        assert!((z.conj().arg() + 0.7).abs() < 1e-12);
    }

    #[test]
    fn matrix_product_and_adjoint() {
        // A 2x2 phase/coupler-like matrix: check (AB)ᴴ = Bᴴ Aᴴ.
        let t = std::f64::consts::FRAC_1_SQRT_2;
        let dc = CMatrix::from_vec(
            vec![
                C64::new(t, 0.0),
                C64::new(0.0, t),
                C64::new(0.0, t),
                C64::new(t, 0.0),
            ],
            2,
            2,
        );
        let ps = CMatrix::from_diag(&[C64::cis(-0.3), C64::ONE]);
        let ab = dc.matmul(&ps);
        let lhs = ab.adjoint();
        let rhs = ps.adjoint().matmul(&dc.adjoint());
        assert!(lhs.fro_dist(&rhs) < 1e-12);
    }

    #[test]
    fn unitarity_diagnostics() {
        let t = std::f64::consts::FRAC_1_SQRT_2;
        let dc = CMatrix::from_vec(
            vec![
                C64::new(t, 0.0),
                C64::new(0.0, t),
                C64::new(0.0, t),
                C64::new(t, 0.0),
            ],
            2,
            2,
        );
        assert!(dc.is_unitary(1e-12));
        let mut not_unitary = dc.clone();
        not_unitary.set(0, 0, C64::new(0.9, 0.0));
        assert!(!not_unitary.is_unitary(1e-6));
    }

    #[test]
    fn re_im_round_trip() {
        let m = CMatrix::from_vec(
            vec![C64::new(1.0, -1.0), C64::new(0.0, 2.0), C64::I, C64::ONE],
            2,
            2,
        );
        let back = CMatrix::from_re_im(&m.re(), &m.im());
        assert!(m.fro_dist(&back) < 1e-15);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = CMatrix::from_vec(
            vec![
                C64::new(1.0, 0.0),
                C64::I,
                C64::new(0.0, -1.0),
                C64::new(2.0, 1.0),
            ],
            2,
            2,
        );
        let v = vec![C64::new(1.0, 1.0), C64::new(-2.0, 0.5)];
        let got = m.matvec(&v);
        let as_mat = CMatrix::from_vec(v.clone(), 2, 1);
        let want = m.matmul(&as_mat);
        assert!((got[0] - want.at(0, 0)).abs() < 1e-14);
        assert!((got[1] - want.at(1, 0)).abs() < 1e-14);
    }
}
