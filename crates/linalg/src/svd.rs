//! Singular value decomposition of real matrices via one-sided Jacobi
//! rotations, and the orthogonal polar factor built on top of it.
//!
//! ADEPT's stochastic permutation legalization (SPL) projects a relaxed
//! permutation onto the orthogonal manifold using `U·Vᵀ` from the SVD; the
//! matrices involved are small (`K ≤ 64`), for which one-sided Jacobi is
//! accurate and simple.

use adept_tensor::Tensor;

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m×n` with orthonormal columns (thin form,
    /// requires `m ≥ n`).
    pub u: Tensor,
    /// Singular values in descending order, length `n`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n×n` orthogonal.
    pub v: Tensor,
}

impl Svd {
    /// Reconstructs `U · diag(S) · Vᵀ`.
    pub fn reconstruct(&self) -> Tensor {
        let n = self.s.len();
        let mut us = self.u.clone();
        let (m, _) = (us.shape()[0], us.shape()[1]);
        for i in 0..m {
            for j in 0..n {
                us.as_mut_slice()[i * n + j] *= self.s[j];
            }
        }
        us.matmul(&self.v.transpose())
    }
}

/// Computes the thin SVD of a real `m×n` matrix with `m ≥ n`.
///
/// Uses one-sided Jacobi: columns of a working copy of `A` are repeatedly
/// rotated until mutually orthogonal; their norms become the singular values
/// and the accumulated rotations form `V`.
///
/// # Panics
///
/// Panics if `a` is not rank 2 or has more columns than rows.
///
/// # Examples
///
/// ```
/// use adept_linalg::svd;
/// use adept_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, -2.0], &[2, 2]);
/// let d = svd(&a);
/// assert!((d.s[0] - 3.0).abs() < 1e-12);
/// assert!((d.s[1] - 2.0).abs() < 1e-12);
/// assert!(d.reconstruct().allclose(&a, 1e-10));
/// ```
pub fn svd(a: &Tensor) -> Svd {
    assert_eq!(a.rank(), 2, "svd expects a matrix");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    assert!(m >= n, "thin svd requires rows >= cols ({m} < {n})");
    let mut w = a.clone(); // working copy whose columns get orthogonalized
    let mut v = Tensor::eye(n);
    let eps = 1e-14;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries over columns p, q.
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    let wp = w.as_slice()[i * n + p];
                    let wq = w.as_slice()[i * n + q];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                off = off.max(apq.abs() / (app.sqrt() * aqq.sqrt() + 1e-300));
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let wd = w.as_mut_slice();
                for i in 0..m {
                    let wp = wd[i * n + p];
                    let wq = wd[i * n + q];
                    wd[i * n + p] = c * wp - s * wq;
                    wd[i * n + q] = s * wp + c * wq;
                }
                let vd = v.as_mut_slice();
                for i in 0..n {
                    let vp = vd[i * n + p];
                    let vq = vd[i * n + q];
                    vd[i * n + p] = c * vp - s * vq;
                    vd[i * n + q] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-13 {
            break;
        }
    }
    // Column norms are the singular values; normalize to get U.
    let mut s: Vec<f64> = (0..n)
        .map(|j| {
            (0..m)
                .map(|i| {
                    let x = w.as_slice()[i * n + j];
                    x * x
                })
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    let mut u = w;
    for j in 0..n {
        let norm = if s[j] > 1e-300 { s[j] } else { 1.0 };
        for i in 0..m {
            u.as_mut_slice()[i * n + j] /= norm;
        }
    }
    // Rank-deficient inputs leave (near-)zero columns in U; complete them to
    // an orthonormal set so U always has orthonormal columns. For each null
    // column, project every basis vector onto the orthogonal complement of
    // the columns fixed so far and keep the longest residual (it is
    // guaranteed to have squared norm ≥ (remaining dimensions)/m > 0).
    let tol = s.iter().cloned().fold(0.0, f64::max).max(1.0) * 1e-12;
    for j in 0..n {
        if s[j] > tol {
            continue;
        }
        let mut best: Option<(f64, Vec<f64>)> = None;
        for seed in 0..m {
            let mut v = vec![0.0f64; m];
            v[seed] = 1.0;
            // Two orthogonalization passes for numerical robustness.
            for _ in 0..2 {
                for jj in 0..n {
                    if jj == j || (s[jj] <= tol && jj > j) {
                        continue; // skip self and not-yet-completed null columns
                    }
                    let dot: f64 = (0..m).map(|i| v[i] * u.as_slice()[i * n + jj]).sum();
                    for (i, vi) in v.iter_mut().enumerate() {
                        *vi -= dot * u.as_slice()[i * n + jj];
                    }
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if best.as_ref().map(|(b, _)| norm > *b).unwrap_or(true) {
                best = Some((norm, v));
            }
            if norm > 0.9 {
                break; // early exit: already essentially orthonormal
            }
        }
        let (norm, v) = best.expect("at least one candidate");
        assert!(norm > 1e-8, "null-space completion failed (norm {norm})");
        for (i, vi) in v.iter().enumerate() {
            u.as_mut_slice()[i * n + j] = vi / norm;
        }
    }
    // Sort singular values descending, permuting U and V columns alike.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).unwrap());
    let permute_cols = |t: &Tensor, rows: usize| {
        let mut out = t.clone();
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..rows {
                out.as_mut_slice()[i * n + new_j] = t.as_slice()[i * n + old_j];
            }
        }
        out
    };
    u = permute_cols(&u, m);
    let v_sorted = permute_cols(&v, n);
    s.sort_by(|a, b| b.partial_cmp(a).unwrap());
    Svd { u, s, v: v_sorted }
}

/// The orthogonal polar factor `Q* = U·Vᵀ` of a square matrix — the closest
/// orthogonal matrix in Frobenius norm (for full-rank inputs).
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use adept_linalg::polar_orthogonal;
/// use adept_tensor::Tensor;
///
/// // A slightly noisy identity projects back to an orthogonal matrix.
/// let mut a = Tensor::eye(3);
/// a.as_mut_slice()[1] = 0.1;
/// let q = polar_orthogonal(&a);
/// let qtq = q.transpose().matmul(&q);
/// assert!(qtq.allclose(&Tensor::eye(3), 1e-10));
/// ```
pub fn polar_orthogonal(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "polar factor expects a matrix");
    assert_eq!(a.shape()[0], a.shape()[1], "polar factor expects square");
    let d = svd(a);
    d.u.matmul(&d.v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(&mut rng, &[m, n], -2.0, 2.0)
    }

    fn is_orthonormal_cols(t: &Tensor, tol: f64) -> bool {
        let g = t.transpose().matmul(t);
        g.allclose(&Tensor::eye(t.shape()[1]), tol)
    }

    #[test]
    fn reconstructs_random_square() {
        for seed in 0..5 {
            let a = rand_mat(8, 8, seed);
            let d = svd(&a);
            assert!(d.reconstruct().allclose(&a, 1e-9), "seed {seed}");
            assert!(is_orthonormal_cols(&d.u, 1e-9));
            assert!(is_orthonormal_cols(&d.v, 1e-9));
        }
    }

    #[test]
    fn reconstructs_rectangular() {
        let a = rand_mat(10, 6, 42);
        let d = svd(&a);
        assert_eq!(d.u.shape(), &[10, 6]);
        assert_eq!(d.v.shape(), &[6, 6]);
        assert!(d.reconstruct().allclose(&a, 1e-9));
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = rand_mat(7, 7, 3);
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_deficient_handled() {
        // Two identical columns → one zero singular value.
        let mut a = rand_mat(6, 3, 4);
        for i in 0..6 {
            let v = a.as_slice()[i * 3];
            a.as_mut_slice()[i * 3 + 1] = v;
        }
        let d = svd(&a);
        assert!(d.s[2] < 1e-10, "smallest singular value {}", d.s[2]);
        assert!(d.reconstruct().allclose(&a, 1e-9));
        // U columns stay orthonormal even in the null space.
        assert!(is_orthonormal_cols(&d.u, 1e-9));
    }

    #[test]
    fn zero_padded_square_keeps_orthogonal_factors() {
        // A square matrix with zero rows (as produced by tile padding) must
        // still yield fully orthogonal U and V.
        let mut a = Tensor::zeros(&[4, 4]);
        a.set_block(0, 0, &rand_mat(2, 4, 5));
        let d = svd(&a);
        assert!(is_orthonormal_cols(&d.u, 1e-9));
        assert!(is_orthonormal_cols(&d.v, 1e-9));
        assert!(d.reconstruct().allclose(&a, 1e-9));
    }

    #[test]
    fn known_diagonal_case() {
        let a = Tensor::from_diag(&Tensor::from_vec(vec![1.0, -5.0, 2.0], &[3]));
        let d = svd(&a);
        assert!((d.s[0] - 5.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn polar_factor_of_orthogonal_is_itself() {
        // A rotation matrix is its own polar factor.
        let th = 0.6f64;
        let r = Tensor::from_vec(vec![th.cos(), -th.sin(), th.sin(), th.cos()], &[2, 2]);
        assert!(polar_orthogonal(&r).allclose(&r, 1e-10));
    }

    #[test]
    fn polar_factor_nearest_orthogonal_property() {
        // ‖A − Q*‖ ≤ ‖A − P‖ for sampled orthogonal (permutation) P.
        let a = rand_mat(5, 5, 7);
        let q = polar_orthogonal(&a);
        let dq = (&a - &q).norm();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let p = crate::Permutation::random(&mut rng, 5).to_matrix();
            assert!(dq <= (&a - &p).norm() + 1e-9);
        }
    }
}
