//! Permutation algebra.
//!
//! Waveguide-crossing layers in a photonic tensor core implement permutation
//! matrices, and their hardware cost is the number of pairwise crossings —
//! exactly the minimum number of adjacent transpositions needed to sort the
//! permutation, i.e. its inversion count. This module provides the
//! permutation type, the inversion counter, conversions to/from matrices and
//! sampling utilities used across the workspace.

use adept_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Error produced when a vector is not a valid permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePermutationError {
    /// The offending image vector.
    pub image: Vec<usize>,
}

impl fmt::Display for ParsePermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vector {:?} is not a permutation of 0..{}",
            self.image,
            self.image.len()
        )
    }
}

impl std::error::Error for ParsePermutationError {}

/// A permutation of `0..n`, stored as its image: `perm[i]` is where index
/// `i` maps to.
///
/// Acting on a vector `x`, the associated permutation matrix `P` (see
/// [`Permutation::to_matrix`]) produces `y[i] = x[perm[i]]`.
///
/// # Examples
///
/// ```
/// use adept_linalg::Permutation;
///
/// let p = Permutation::from_vec(vec![1, 0, 2]).unwrap();
/// assert_eq!(p.crossing_count(), 1); // one adjacent swap = one crossing
/// assert_eq!(p.inverse().as_slice(), &[1, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    image: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Self {
            image: (0..n).collect(),
        }
    }

    /// Validates and wraps an image vector.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePermutationError`] if `image` is not a bijection of
    /// `0..image.len()`.
    pub fn from_vec(image: Vec<usize>) -> Result<Self, ParsePermutationError> {
        let n = image.len();
        let mut seen = vec![false; n];
        for &v in &image {
            if v >= n || seen[v] {
                return Err(ParsePermutationError { image });
            }
            seen[v] = true;
        }
        Ok(Self { image })
    }

    /// Samples a uniformly random permutation.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let mut image: Vec<usize> = (0..n).collect();
        image.shuffle(rng);
        Self { image }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.image.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// The image vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.image
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.image.len()];
        for (i, &v) in self.image.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { image: inv }
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "size mismatch in compose");
        Permutation {
            image: self.image.iter().map(|&i| other.image[i]).collect(),
        }
    }

    /// Applies the permutation to a slice: `out[i] = x[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn apply<T: Clone>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(self.len(), x.len(), "length mismatch in apply");
        self.image.iter().map(|&i| x[i].clone()).collect()
    }

    /// Number of inversions — the minimum number of adjacent transpositions
    /// needed to sort the permutation, which equals the number of waveguide
    /// crossings required to route it photonically.
    ///
    /// Runs in `O(n log n)` via merge counting.
    pub fn crossing_count(&self) -> usize {
        fn merge_count(v: &mut Vec<usize>) -> usize {
            let n = v.len();
            if n <= 1 {
                return 0;
            }
            let mid = n / 2;
            let mut left = v[..mid].to_vec();
            let mut right = v[mid..].to_vec();
            let mut inv = merge_count(&mut left) + merge_count(&mut right);
            let (mut i, mut j, mut k) = (0, 0, 0);
            while i < left.len() && j < right.len() {
                if left[i] <= right[j] {
                    v[k] = left[i];
                    i += 1;
                } else {
                    v[k] = right[j];
                    j += 1;
                    inv += left.len() - i;
                }
                k += 1;
            }
            while i < left.len() {
                v[k] = left[i];
                i += 1;
                k += 1;
            }
            while j < right.len() {
                v[k] = right[j];
                j += 1;
                k += 1;
            }
            inv
        }
        let mut v = self.image.clone();
        merge_count(&mut v)
    }

    /// The permutation matrix `P` with `P[i, perm[i]] = 1`, so that
    /// `P · x` computes `x[perm[i]]` at output `i`.
    pub fn to_matrix(&self) -> Tensor {
        let n = self.len();
        let mut m = Tensor::zeros(&[n, n]);
        for (i, &v) in self.image.iter().enumerate() {
            m.as_mut_slice()[i * n + v] = 1.0;
        }
        m
    }

    /// Recovers a permutation from a 0/1 matrix within tolerance `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePermutationError`] (with the row-argmax image) if the
    /// matrix is not a permutation matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square.
    pub fn try_from_matrix(m: &Tensor, tol: f64) -> Result<Self, ParsePermutationError> {
        assert_eq!(m.rank(), 2, "expected a matrix");
        let n = m.shape()[0];
        assert_eq!(n, m.shape()[1], "expected a square matrix");
        let mut image = Vec::with_capacity(n);
        for i in 0..n {
            let row = m.row(i);
            let j = row.argmax();
            image.push(j);
            for (k, &v) in row.as_slice().iter().enumerate() {
                let expect = if k == j { 1.0 } else { 0.0 };
                if (v - expect).abs() > tol {
                    return Err(ParsePermutationError { image });
                }
            }
        }
        Self::from_vec(image)
    }

    /// Whether `m` is a permutation matrix within tolerance `tol`.
    pub fn matrix_is_permutation(m: &Tensor, tol: f64) -> bool {
        m.rank() == 2 && m.shape()[0] == m.shape()[1] && Self::try_from_matrix(m, tol).is_ok()
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{:?}", self.image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Permutation::from_vec(vec![0, 1, 2]).is_ok());
        assert!(Permutation::from_vec(vec![2, 0, 1]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_vec(vec![0, 3, 1]).is_err());
        let err = Permutation::from_vec(vec![1, 1]).unwrap_err();
        assert!(err.to_string().contains("not a permutation"));
    }

    #[test]
    fn inverse_and_compose() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).is_identity());
        assert!(inv.compose(&p).is_identity());
        let id = Permutation::identity(4);
        assert_eq!(p.compose(&id), p);
    }

    #[test]
    fn apply_matches_matrix_action() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let x = [10.0, 20.0, 30.0];
        let applied = p.apply(&x);
        assert_eq!(applied, vec![30.0, 10.0, 20.0]);
        let m = p.to_matrix();
        let got = m.matvec(&Tensor::from_vec(x.to_vec(), &[3]));
        assert_eq!(got.as_slice(), applied.as_slice());
    }

    #[test]
    fn crossing_counts() {
        assert_eq!(Permutation::identity(8).crossing_count(), 0);
        assert_eq!(
            Permutation::from_vec(vec![1, 0]).unwrap().crossing_count(),
            1
        );
        // Full reversal of n elements needs n(n-1)/2 crossings.
        let rev = Permutation::from_vec((0..6).rev().collect()).unwrap();
        assert_eq!(rev.crossing_count(), 15);
        // Crossing count of p equals that of its inverse.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let p = Permutation::random(&mut rng, 16);
            assert_eq!(p.crossing_count(), p.inverse().crossing_count());
        }
    }

    #[test]
    fn crossing_count_matches_bubble_sort() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let p = Permutation::random(&mut rng, 12);
            // Count adjacent swaps performed by bubble sort.
            let mut v = p.as_slice().to_vec();
            let mut swaps = 0;
            for i in 0..v.len() {
                for j in 0..v.len() - 1 - i {
                    if v[j] > v[j + 1] {
                        v.swap(j, j + 1);
                        swaps += 1;
                    }
                }
            }
            assert_eq!(p.crossing_count(), swaps);
        }
    }

    #[test]
    fn matrix_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let p = Permutation::random(&mut rng, 9);
            let m = p.to_matrix();
            assert!(Permutation::matrix_is_permutation(&m, 1e-9));
            let q = Permutation::try_from_matrix(&m, 1e-9).unwrap();
            assert_eq!(p, q);
        }
        let not_perm = Tensor::full(&[2, 2], 0.5);
        assert!(!Permutation::matrix_is_permutation(&not_perm, 1e-9));
    }

    #[test]
    fn permutation_matrix_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = Permutation::random(&mut rng, 8);
        let m = p.to_matrix();
        let prod = m.matmul(&m.transpose());
        assert!(prod.allclose(&Tensor::eye(8), 1e-12));
    }
}
