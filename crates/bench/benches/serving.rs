//! Serving benchmarks: tape forward vs compiled `ExecPlan`, plus the
//! batching runtime's throughput and latency percentiles.
//!
//! Writes `BENCH_serving.json` with the standard `ns_per_iter` schema.
//! The `serving/{tape,compiled}` pair is the acceptance gate of the
//! compiled-inference PR (compiled single-sample forward ≥5× faster than
//! the tape on the quickstart-scale proxy CNN); `serving_latency/p50`,
//! `serving_latency/p99` and `serving_throughput/per_request` come from a
//! real serve session and use nanoseconds in the same schema. The
//! `f32_vs_f64/{f64,f32}` pair compares the same compiled forward at both
//! plan precisions (`ONN_INFER_DTYPE` axis).

use adept_autodiff::Graph;
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_infer::{serve, ExecPlan, PlanPrecision, ServeConfig};
use adept_nn::layers::Layer;
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::{prebuild_mesh_weights, ForwardCtx, ParamStore};
use adept_tensor::Tensor;
use criterion::{black_box, Criterion};

/// Quickstart-scale proxy CNN: butterfly(8) backend, 12×12 inputs,
/// 8 channels, 10 classes — the shape `examples/quickstart.rs` retrains.
fn quickstart_model() -> (ParamStore, adept_nn::layers::Sequential, usize) {
    let image = 12;
    let mut store = ParamStore::new();
    let model = proxy_cnn(
        &mut store,
        InputShape::new(1, image, image),
        8,
        10,
        &Backend::butterfly(8),
        42,
    );
    (store, model, image)
}

/// One eval-mode tape forward, as `evaluate_seeded` runs it per batch:
/// fresh graph, mesh prebuild, layer walk, value readout.
fn tape_forward(model: &mut dyn Layer, store: &ParamStore, x: &Tensor) -> Tensor {
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, store, false, 0);
    prebuild_mesh_weights(&ctx, &model.mesh_weights());
    let xv = graph.constant(x.clone());
    model.forward(&ctx, xv).value()
}

fn main() {
    let mut c = Criterion::new();
    let (store, mut model, image) = quickstart_model();
    let sample_shape = [1usize, image, image];
    let elems = image * image;
    let input: Vec<f64> = (0..elems)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 50.5 - 1.0)
        .collect();
    let x = Tensor::from_vec(input.clone(), &[1, 1, image, image]);

    {
        let mut group = c.benchmark_group("serving");
        group.bench_function("tape", |b| {
            b.iter(|| black_box(tape_forward(&mut model, &store, &x)));
        });
        let mut plan =
            ExecPlan::compile(&model, &store, &sample_shape, 16, 0, PlanPrecision::F64).unwrap();
        let mut out = vec![0.0; plan.output_features()];
        plan.run_batch(&input, 1, &mut out); // warm the slabs
        group.bench_function("compiled", |b| {
            b.iter(|| {
                plan.run_batch(black_box(&input), 1, &mut out);
                black_box(out[0])
            });
        });
        group.finish();
    }

    // Same compiled forward at both plan precisions: how much the f32
    // storage/compute mode buys on the quickstart-scale CNN (weights
    // quantized once at freeze; the run_batch interface stays f64).
    {
        let mut group = c.benchmark_group("f32_vs_f64");
        for precision in [PlanPrecision::F64, PlanPrecision::F32] {
            let mut plan =
                ExecPlan::compile(&model, &store, &sample_shape, 16, 0, precision).unwrap();
            let mut out = vec![0.0; plan.output_features()];
            plan.run_batch(&input, 1, &mut out); // warm the slabs
            group.bench_function(precision.dtype_name(), |b| {
                b.iter(|| {
                    plan.run_batch(black_box(&input), 1, &mut out);
                    black_box(out[0])
                });
            });
        }
        group.finish();
    }

    // Batched serving over a synthetic request stream.
    let plan = ExecPlan::compile(&model, &store, &sample_shape, 16, 0, PlanPrecision::F64).unwrap();
    let (_, test) = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(image)
        .with_classes(10)
        .with_sizes(8, 64)
        .generate(42);
    let n_requests = 256;
    let in_elems = plan.input_elems();
    let mut inputs = vec![0.0; n_requests * in_elems];
    let src = test.images.as_slice();
    for r in 0..n_requests {
        let s = r % test.len();
        inputs[r * in_elems..(r + 1) * in_elems]
            .copy_from_slice(&src[s * in_elems..(s + 1) * in_elems]);
    }
    let mut report = None;
    {
        let mut group = c.benchmark_group("serving_batched");
        group.bench_function("serve_256", |b| {
            b.iter(|| {
                let (out, rep) = serve(&plan, &inputs, n_requests, &ServeConfig::auto());
                black_box(out.len());
                report = Some(rep);
            });
        });
        group.finish();
    }
    c.export_json();

    // Append the serve session's latency percentiles and per-request
    // throughput in the same `ns_per_iter` schema the CI gate reads.
    let rep = report.expect("serve ran");
    eprintln!(
        "serve session: {:.0} req/s, p50 {:?}, p99 {:?}, {} batches",
        rep.req_per_sec, rep.p50_latency, rep.p99_latency, rep.batches
    );
    let path = "BENCH_serving.json";
    let json = std::fs::read_to_string(path).expect("bench json written");
    let mut body = json.trim_end().trim_end_matches('}').trim_end().to_string();
    body.push_str(&format!(
        ",\n  \"serving_latency/p50\": {{\"ns_per_iter\": {:.1}}},\n  \"serving_latency/p99\": {{\"ns_per_iter\": {:.1}}},\n  \"serving_throughput/per_request\": {{\"ns_per_iter\": {:.1}}}\n}}\n",
        rep.p50_latency.as_secs_f64() * 1e9,
        rep.p99_latency.as_secs_f64() * 1e9,
        1e9 / rep.req_per_sec.max(1e-9),
    ));
    std::fs::write(path, body).expect("rewrite bench json");
    println!("appended serving latency/throughput to {path}");
}
