//! Microbenchmarks of the numeric substrate: GEMM, im2col, SVD,
//! permutation algebra and the Clements decomposition.

use adept_linalg::{polar_orthogonal, svd, Permutation};
use adept_photonics::clements::decompose;
use adept_photonics::devices::crossing_matrix;
use adept_tensor::{im2col, Conv2dGeometry, Tensor};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 12,
        in_w: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::rand_uniform(&mut rng, &[16, 8, 12, 12], -1.0, 1.0);
    c.bench_function("im2col_16x8x12x12_k3", |b| {
        b.iter(|| black_box(im2col(&x, &geom)));
    });
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    for &n in &[8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(svd(&a)));
        });
    }
    group.finish();
}

fn bench_polar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = Tensor::rand_uniform(&mut rng, &[16, 16], -1.0, 1.0);
    c.bench_function("polar_orthogonal_16", |b| {
        b.iter(|| black_box(polar_orthogonal(&a)));
    });
}

fn bench_crossing_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossing_count");
    for &n in &[16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Permutation::random(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(p.crossing_count()));
        });
    }
    group.finish();
}

fn bench_clements(c: &mut Criterion) {
    let mut group = c.benchmark_group("clements");
    for &n in &[8usize, 16] {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Permutation::random(&mut rng, n);
        let u = crossing_matrix(&p);
        group.bench_with_input(BenchmarkId::new("decompose", n), &n, |bench, _| {
            bench.iter(|| black_box(decompose(&u)));
        });
        let d = decompose(&u);
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &n, |bench, _| {
            bench.iter(|| black_box(d.reconstruct()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_im2col,
    bench_svd,
    bench_polar,
    bench_crossing_count,
    bench_clements
);
criterion_main!(benches);
