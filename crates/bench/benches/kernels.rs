//! Microbenchmarks of the numeric substrate: GEMM, im2col, SVD,
//! permutation algebra and the Clements decomposition.

use adept_autodiff::Graph;
use adept_linalg::{polar_orthogonal, svd, Permutation};
use adept_nn::onn::PtcWeight;
use adept_nn::{prebuild_ptc_weights, ForwardCtx, ParamStore};
use adept_photonics::clements::decompose;
use adept_photonics::devices::crossing_matrix;
use adept_photonics::BlockMeshTopology;
use adept_tensor::{
    batched_matmul_into, gemm_micro_into, gemm_scalar_ref_into, im2col, im2col_into, matmul_into,
    matmul_into_one_axis_partition, set_gemm_threads, set_wide_gemm_cols, Conv2dGeometry, Tensor,
    Tile,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 12,
        in_w: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::rand_uniform(&mut rng, &[16, 8, 12, 12], -1.0, 1.0);
    c.bench_function("im2col_16x8x12x12_k3", |b| {
        b.iter(|| black_box(im2col(&x, &geom)));
    });
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    for &n in &[8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(svd(&a)));
        });
    }
    group.finish();
}

fn bench_polar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = Tensor::rand_uniform(&mut rng, &[16, 16], -1.0, 1.0);
    c.bench_function("polar_orthogonal_16", |b| {
        b.iter(|| black_box(polar_orthogonal(&a)));
    });
}

fn bench_crossing_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossing_count");
    for &n in &[16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Permutation::random(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(p.crossing_count()));
        });
    }
    group.finish();
}

fn bench_clements(c: &mut Criterion) {
    let mut group = c.benchmark_group("clements");
    for &n in &[8usize, 16] {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Permutation::random(&mut rng, n);
        let u = crossing_matrix(&p);
        group.bench_with_input(BenchmarkId::new("decompose", n), &n, |bench, _| {
            bench.iter(|| black_box(decompose(&u)));
        });
        let d = decompose(&u);
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &n, |bench, _| {
            bench.iter(|| black_box(d.reconstruct()));
        });
    }
    group.finish();
}

/// Per-tile vs batched PTC tile assembly: the acceptance benchmark of the
/// zero-copy substrate. Both paths compute the 64 tile products of a 64x64
/// K=8 weight (`W_t = A_t · B_t`) and lay them out as an 8x8 grid; the
/// per-tile path extracts/copies every tile, the batched path addresses
/// them through [`Tile`] descriptors in one sweep.
fn bench_tile_assembly(c: &mut Criterion) {
    let k = 8usize;
    let grid = 8usize;
    let tiles = grid * grid;
    let mut rng = StdRng::seed_from_u64(7);
    let lhs = Tensor::rand_uniform(&mut rng, &[grid * k, grid * k], -1.0, 1.0);
    let rhs = Tensor::rand_uniform(&mut rng, &[tiles, k, k], -1.0, 1.0);
    let mut group = c.benchmark_group("tile_assembly_k8_64x64");

    group.bench_function("per_tile", |b| {
        b.iter(|| {
            let mut out = Tensor::zeros(&[grid * k, grid * k]);
            for t in 0..tiles {
                let (gr, gc) = (t / grid, t % grid);
                let a = lhs.block(gr * k, gc * k, k, k);
                let prod = a.matmul(&rhs.subtensor(t));
                out.set_block(gr * k, gc * k, &prod);
            }
            black_box(out)
        });
    });

    let a_tiles: Vec<Tile> = (0..tiles)
        .map(|t| Tile {
            offset: (t / grid) * k * (grid * k) + (t % grid) * k,
            row_stride: grid * k,
            col_stride: 1,
        })
        .collect();
    let b_tiles: Vec<Tile> = (0..tiles).map(|t| Tile::contiguous(t * k * k, k)).collect();
    let c_tiles = a_tiles.clone();
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut out = Tensor::zeros(&[grid * k, grid * k]);
            // SAFETY: c tiles are the disjoint K x K cells of the grid.
            unsafe {
                batched_matmul_into(
                    lhs.as_slice(),
                    &a_tiles,
                    rhs.as_slice(),
                    &b_tiles,
                    out.as_mut_slice(),
                    &c_tiles,
                    k,
                    k,
                    k,
                );
            }
            black_box(out)
        });
    });
    group.finish();
}

/// Per-tile vs batched PTC *unitary construction*: the acceptance benchmark
/// of the batched builder. Both paths materialize the full 64x64 K=8
/// `PtcWeight` (64 tiles, FFT butterfly topology) on a fresh tape; the
/// per-tile path records one `tile_unitary` node chain per tile, the
/// batched path walks the mesh blocks once over stacked `[T, K, K]`
/// buffers.
fn bench_unitary_build(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 64, 64, topo.clone(), topo, 8);
    let mut group = c.benchmark_group("unitary_build");
    group.bench_function("per_tile", |b| {
        b.iter(|| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, false, 0);
            black_box(w.build_per_tile(&ctx).value())
        });
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, false, 0);
            black_box(w.build(&ctx).value())
        });
    });
    group.finish();
}

/// Fresh-allocation vs scratch-reusing `im2col`: the per-step patch matrix
/// was the training loop's largest allocation before the reuse path.
fn bench_im2col_reuse(c: &mut Criterion) {
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 12,
        in_w: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let x = Tensor::rand_uniform(&mut rng, &[16, 8, 12, 12], -1.0, 1.0);
    let mut group = c.benchmark_group("im2col_reuse");
    group.bench_function("fresh", |b| {
        b.iter(|| black_box(im2col(&x, &geom)));
    });
    let mut scratch = Tensor::default();
    im2col_into(&x, &geom, &mut scratch);
    group.bench_function("reused", |b| {
        b.iter(|| {
            im2col_into(&x, &geom, &mut scratch);
            black_box(scratch.at(&[0, 0]))
        });
    });
    group.finish();
}

/// The parallel weight-build scheduler on a 4-layer 64×64 K=8 model: one
/// full multi-layer build (forward values materialized) per iteration.
/// `serial` pins one thread (the legacy serial walk); `parallel` uses the
/// configured thread count — on 2+ cores the layer- and U/V-level fan-out
/// should cut wall-clock ≥1.5×. Both schedules produce bit-identical tapes.
fn bench_weight_build_sched(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let layers: Vec<PtcWeight> = (0..4)
        .map(|i| {
            PtcWeight::new(
                &mut store,
                &format!("w{i}"),
                64,
                64,
                topo.clone(),
                topo.clone(),
                8 + i as u64,
            )
        })
        .collect();
    let weights: Vec<&PtcWeight> = layers.iter().collect();
    let step = |store: &ParamStore, weights: &[&PtcWeight]| -> f64 {
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, store, false, 0);
        prebuild_ptc_weights(&ctx, weights);
        weights
            .iter()
            .map(|w| w.build(&ctx).value().at(&[0, 0]))
            .sum()
    };
    let mut group = c.benchmark_group("weight_build_sched");
    group.bench_function("serial", |b| {
        set_gemm_threads(1);
        b.iter(|| black_box(step(&store, &weights)));
        set_gemm_threads(0);
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(step(&store, &weights)));
    });
    group.finish();
}

/// The parallel backward scheduler on the `weight_build_sched` model (4
/// prebuilt 64×64 K=8 weights feeding one scalar loss): `serial` replays
/// the tape with `Graph::backward` at one pinned thread, `parallel` with
/// `Graph::backward_parallel` at the configured count, which evaluates
/// the four spliced mesh-walk segments' gradient subtrees concurrently.
/// Both replays produce bit-identical gradients (root `parallel_backward`
/// suite); on 2+ cores the span fan-out should cut the reverse-pass
/// wall-clock the way the forward scheduler cut the build.
fn bench_backward_replay(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let layers: Vec<PtcWeight> = (0..4)
        .map(|i| {
            PtcWeight::new(
                &mut store,
                &format!("w{i}"),
                64,
                64,
                topo.clone(),
                topo.clone(),
                90 + i as u64,
            )
        })
        .collect();
    let weights: Vec<&PtcWeight> = layers.iter().collect();
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, true, 0);
    prebuild_ptc_weights(&ctx, &weights);
    let mut loss: Option<adept_autodiff::Var<'_>> = None;
    for w in &weights {
        let term = w.build(&ctx).square().sum();
        loss = Some(match loss {
            None => term,
            Some(acc) => acc.add(term),
        });
    }
    let loss = loss.expect("four weights");
    let mut group = c.benchmark_group("backward_replay");
    group.bench_function("serial", |b| {
        set_gemm_threads(1);
        b.iter(|| black_box(graph.backward(loss)));
        set_gemm_threads(0);
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(graph.backward_parallel(loss)));
    });
    group.finish();
}

/// The im2col'd conv forward shape `W·cols` (few output rows, thousands of
/// output-pixel columns): the legacy one-axis partition vs the ragged
/// [`adept_tensor::GemmSpec`] sweep over (row-slab × column-block) cells.
fn bench_conv_forward(c: &mut Criterion) {
    // VGG-style lowered conv: 16 output channels, C·k·k = 144, 64 images
    // of 8×8 output pixels → [16, 144] · [144, 4096].
    let (m, k, n) = (16usize, 144usize, 4096usize);
    let mut rng = StdRng::seed_from_u64(10);
    let w = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
    let cols = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
    let mut out = Tensor::zeros(&[m, n]);
    // Pin 4 threads so both partition strategies run their parallel paths
    // even on small build machines (with auto=1 both would degrade to the
    // same serial kernel and the comparison would be vacuous).
    set_gemm_threads(4);
    let mut group = c.benchmark_group("conv_forward");
    group.bench_function("one_axis_partition", |b| {
        b.iter(|| {
            matmul_into_one_axis_partition(
                w.as_slice(),
                cols.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
            );
            black_box(out.at(&[0, 0]))
        });
    });
    group.bench_function("ragged_sweep", |b| {
        b.iter(|| {
            matmul_into(w.as_slice(), cols.as_slice(), out.as_mut_slice(), m, k, n);
            black_box(out.at(&[0, 0]))
        });
    });
    // Cache-level tuning sweep of the ragged sweep's column-block width
    // (the `ONN_WIDE_COLS` knob). Every width produces bit-identical
    // results — chunking only repartitions disjoint output blocks — so the
    // fastest width is purely a cache/balance trade-off; the swept winner
    // is baked in as the auto default (`WIDE_COL_CHUNK_DEFAULT`).
    for &cols_chunk in &[128usize, 256, 512, 1024, 2048] {
        set_wide_gemm_cols(cols_chunk);
        group.bench_function(format!("wide_cols_{cols_chunk}"), |b| {
            b.iter(|| {
                matmul_into(w.as_slice(), cols.as_slice(), out.as_mut_slice(), m, k, n);
                black_box(out.at(&[0, 0]))
            });
        });
    }
    set_wide_gemm_cols(0);
    group.finish();
    set_gemm_threads(0);
}

/// Scalar reference kernel vs the register-blocked packed microkernel on
/// the same serial contiguous GEMMs: the conv-lowered wide shape
/// `[16,144]·[144,4096]` plus square shapes. Both produce bit-identical
/// results (pinned by `tests/mixed_precision.rs`); the CI bench gate
/// requires `micro` to be no slower than `scalar` on these shapes.
fn bench_gemm_micro(c: &mut Criterion) {
    let shapes: [(usize, usize, usize); 3] = [(16, 144, 4096), (128, 128, 128), (256, 256, 256)];
    let mut group = c.benchmark_group("gemm_micro");
    for &(m, k, n) in &shapes {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let mut out = vec![0.0; m * n];
        let tag = format!("{m}x{k}x{n}");
        group.bench_function(format!("scalar_{tag}"), |bench| {
            bench.iter(|| {
                gemm_scalar_ref_into(a.as_slice(), b.as_slice(), &mut out, m, k, n, 1.0, false);
                black_box(out[0])
            });
        });
        group.bench_function(format!("micro_{tag}"), |bench| {
            bench.iter(|| {
                gemm_micro_into(a.as_slice(), b.as_slice(), &mut out, m, k, n, 1.0, false);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_micro,
    bench_im2col,
    bench_svd,
    bench_polar,
    bench_crossing_count,
    bench_clements,
    bench_tile_assembly,
    bench_unitary_build,
    bench_im2col_reuse,
    bench_weight_build_sched,
    bench_backward_replay,
    bench_conv_forward
);
criterion_main!(benches);
