//! Benchmarks of the photonic substrate: mesh transfer-matrix construction
//! (complex reference and autodiff versions) and SPL legalization.

use adept::spl;
use adept_autodiff::Graph;
use adept_nn::onn::{tile_unitary, PtcWeight};
use adept_nn::{ForwardCtx, ParamStore};
use adept_photonics::BlockMeshTopology;
use adept_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_butterfly_unitary(c: &mut Criterion) {
    let mut group = c.benchmark_group("butterfly_unitary");
    for &k in &[8usize, 16, 32] {
        let topo = BlockMeshTopology::butterfly(k);
        let mut rng = StdRng::seed_from_u64(1);
        let phases: Vec<Vec<f64>> = (0..topo.blocks().len())
            .map(|_| (0..k).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(topo.unitary(&phases)));
        });
    }
    group.finish();
}

fn bench_tile_unitary_autodiff(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_unitary_autodiff");
    for &k in &[8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = BlockMeshTopology::random(&mut rng, k, 6);
        let phases = Tensor::rand_uniform(&mut rng, &[6, k], -3.0, 3.0);
        let store = ParamStore::new();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let graph = Graph::new();
                let ctx = ForwardCtx::new(&graph, &store, false, 0);
                let pv = graph.constant(phases.clone());
                black_box(tile_unitary(&ctx, &topo, pv).0.value())
            });
        });
    }
    group.finish();
}

fn bench_ptc_weight_build_and_backward(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(16);
    let w = PtcWeight::new(&mut store, "w", 64, 16, topo.clone(), topo, 3);
    c.bench_function("ptc_weight_build_bwd_16x64", |b| {
        b.iter(|| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let built = w.build(&ctx);
            let grads = graph.backward(built.square().sum());
            black_box(ctx.into_param_grads(&grads))
        });
    });
}

fn bench_spl(c: &mut Criterion) {
    let mut group = c.benchmark_group("spl_legalize");
    for &k in &[8usize, 16, 32] {
        // A saddle-ish relaxation: smoothed identity with tied rows.
        let mut p = Tensor::full(&[k, k], 1.0 / k as f64);
        for i in 0..k / 2 {
            *p.at_mut(&[2 * i, i]) = 0.45;
            *p.at_mut(&[2 * i + 1, i]) = 0.45;
        }
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| black_box(spl::legalize(&p, &mut rng, 16, 0.05)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_butterfly_unitary,
    bench_tile_unitary_autodiff,
    bench_ptc_weight_build_and_backward,
    bench_spl
);
criterion_main!(benches);
