//! Per-experiment step-cost benchmarks: one optimization step of every
//! table's workload, the Fig. 4 noisy-evaluation path, and the Fig. 5 trace
//! steps. These track the cost of regenerating each paper artifact.

use adept::supermesh::{build_mesh_frame, ArchSample, SuperMeshHandles, SuperPtcWeight};
use adept::traces::{alm_trace, footprint_trace, AlmTraceConfig, FpenTraceConfig};
use adept_autodiff::Graph;
use adept_bench::{retrain, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_nn::{ForwardCtx, ParamStore};
use adept_photonics::Pdk;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SuperMesh weight step (forward + backward over a K×K super weight)
/// for each Table 1 PTC size.
fn bench_supermesh_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_supermesh_step");
    group.sample_size(10);
    for &k in &[8usize, 16, 32] {
        let mut store = ParamStore::new();
        let handles = SuperMeshHandles::register(&mut store, k, 4, 1, 1);
        let w = SuperPtcWeight::new(&mut store, "w", k, k, k, 4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let arch = ArchSample::draw(&mut rng, 4, 1.0);
                let graph = Graph::new();
                let ctx = ForwardCtx::new(&graph, &store, true, 0);
                let fu = build_mesh_frame(&ctx, &handles.u, k, &arch.gumbel_u, arch.tau);
                let fv = build_mesh_frame(&ctx, &handles.v, k, &arch.gumbel_v, arch.tau);
                let built = w.build(&ctx, &fu, &fv);
                let grads = graph.backward(built.square().sum());
                black_box(ctx.into_param_grads(&grads))
            });
        });
    }
    group.finish();
}

/// One epoch of variation-aware retraining per backend (the accuracy path
/// of Tables 1–3).
fn bench_retrain_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrain_epoch_proxy");
    group.sample_size(10);
    let mut s = RetrainSettings::for_scale(Scale::Repro);
    s.epochs = 1;
    s.n_train = 64;
    s.n_test = 32;
    let backends = [
        ("mzi16", Backend::Mzi { k: 16 }),
        ("fft16", Backend::butterfly(16)),
    ];
    for (name, backend) in backends {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    retrain(ModelKind::Proxy, DatasetKind::MnistLike, &backend, &s, 1).accuracy_pct,
                )
            });
        });
    }
    group.finish();
}

/// The Fig. 4 noisy-evaluation path: decompose–perturb–reconstruct MZI
/// evaluation vs phase-noised block-mesh evaluation.
fn bench_noisy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_noisy_eval");
    group.sample_size(10);
    let mut s = RetrainSettings::for_scale(Scale::Repro);
    s.epochs = 1;
    s.n_train = 64;
    s.n_test = 32;
    let mut mzi = retrain(
        ModelKind::Proxy,
        DatasetKind::MnistLike,
        &Backend::Mzi { k: 16 },
        &s,
        1,
    );
    group.bench_function("mzi16", |b| {
        b.iter(|| black_box(mzi.model.noisy_accuracy(0.05, 1, 7)));
    });
    let mut fft = retrain(
        ModelKind::Proxy,
        DatasetKind::MnistLike,
        &Backend::butterfly(16),
        &s,
        1,
    );
    group.bench_function("fft16", |b| {
        b.iter(|| black_box(fft.model.noisy_accuracy(0.05, 1, 7)));
    });
    group.finish();
}

/// Fig. 5 trace steps (amortized per-step cost of the ablation sweeps).
fn bench_trace_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_traces");
    group.sample_size(10);
    group.bench_function("alm_trace_20steps_k8", |b| {
        b.iter(|| {
            let cfg = AlmTraceConfig {
                k: 8,
                n_blocks: 2,
                rho0: 1e-5,
                steps: 20,
                lr: 5e-3,
                seed: 1,
            };
            black_box(alm_trace(&cfg))
        });
    });
    group.bench_function("fpen_trace_20steps_k8", |b| {
        b.iter(|| {
            let cfg = FpenTraceConfig {
                k: 8,
                n_blocks: 3,
                pinned: 1,
                pdk: Pdk::amf(),
                f_min_kum2: 150.0,
                f_max_kum2: 200.0,
                beta: 10.0,
                steps: 20,
                lr: 2e-2,
                seed: 1,
            };
            black_box(footprint_trace(&cfg))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_supermesh_step,
    bench_retrain_epoch,
    bench_noisy_eval,
    bench_trace_steps
);
criterion_main!(benches);
