//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every binary in `src/bin/` prints the same rows/series the paper
//! reports. Two scales exist:
//!
//! * **repro** (default) — small synthetic datasets, scaled-down models and
//!   short schedules so a full table regenerates in minutes on CPU;
//! * **full** (`--scale full`) — paper-like schedules (much slower).
//!
//! Absolute accuracies differ from the paper (synthetic data, CPU budget);
//! the *structure* — device counts, footprints, who wins and by how much —
//! is the reproduction target. See `EXPERIMENTS.md` at the repo root.

use adept::search::{search, AdeptConfig, SearchOutcome};
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_nn::layers::{Layer, Sequential};
use adept_nn::models::{lenet5, proxy_cnn, vgg8, Backend, InputShape};
use adept_nn::train::{evaluate_seeded, train_classifier, TrainConfig};
use adept_nn::ParamStore;
use adept_photonics::{butterfly::butterfly_topology, DeviceCount, FaultScenario, Pdk};

pub mod sweep;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CPU-friendly default.
    Repro,
    /// Paper-like schedules.
    Full,
}

impl Scale {
    /// Parses `--scale full` from the process arguments.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "full" || a == "--full")
            || args.windows(2).any(|w| w[0] == "--scale" && w[1] == "full")
        {
            Scale::Full
        } else {
            Scale::Repro
        }
    }
}

/// Footprint windows `[F_min, F_max]` (1000 µm²) of Table 1's ADEPT-a1…a5
/// for a given PTC size on AMF (all follow `F_min = 0.8·F_max`).
pub fn amf_windows(k: usize) -> Vec<(f64, f64)> {
    let f_max: Vec<f64> = match k {
        8 => vec![300.0, 420.0, 540.0, 660.0, 780.0],
        16 => vec![600.0, 840.0, 1080.0, 1320.0, 1560.0],
        32 => vec![1200.0, 1680.0, 2160.0, 2640.0, 3120.0],
        _ => panic!("Table 1 covers k ∈ {{8, 16, 32}}, got {k}"),
    };
    f_max.into_iter().map(|m| (0.8 * m, m)).collect()
}

/// Footprint windows of Table 2's ADEPT-a0…a5 (16×16 on AIM).
pub fn aim_windows() -> Vec<(f64, f64)> {
    [480.0, 600.0, 840.0, 1080.0, 1320.0, 1560.0]
        .iter()
        .map(|&m| (0.8 * m, m))
        .collect()
}

/// Device counts of the MZI-ONN baseline PTC.
pub fn mzi_counts(k: usize) -> DeviceCount {
    DeviceCount::mzi_ptc(k)
}

/// Device counts of the FFT-ONN baseline PTC.
pub fn fft_counts(k: usize) -> DeviceCount {
    let t = butterfly_topology(k);
    t.ptc_device_count(&t)
}

/// Which model the accuracy column trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's 2-layer proxy CNN.
    Proxy,
    /// LeNet-5 (channel-scaled).
    LeNet5,
    /// VGG-8 (channel-scaled).
    Vgg8,
}

/// Settings of one retraining run.
#[derive(Debug, Clone)]
pub struct RetrainSettings {
    /// Square image size.
    pub image_size: usize,
    /// Proxy-CNN channels / model channel scale.
    pub channels: usize,
    /// Model scale factor for LeNet/VGG.
    pub model_scale: f64,
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Variation-aware training noise std.
    pub noise_std: f64,
}

impl RetrainSettings {
    /// Default retraining settings for a scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Repro => Self {
                image_size: 10,
                channels: 6,
                model_scale: 0.4,
                n_train: 384,
                n_test: 192,
                epochs: 12,
                batch_size: 16,
                lr: 4e-3,
                noise_std: 0.02,
            },
            Scale::Full => Self {
                image_size: 12,
                channels: 8,
                model_scale: 0.5,
                n_train: 512,
                n_test: 256,
                epochs: 16,
                batch_size: 32,
                lr: 2e-3,
                noise_std: 0.02,
            },
        }
    }
}

/// Builds the requested model over the requested backend.
pub fn build_model(
    store: &mut ParamStore,
    kind: ModelKind,
    dataset: DatasetKind,
    backend: &Backend,
    s: &RetrainSettings,
    seed: u64,
) -> Sequential {
    let input = InputShape::new(dataset.channels(), s.image_size, s.image_size);
    match kind {
        ModelKind::Proxy => proxy_cnn(store, input, s.channels, 10, backend, seed),
        ModelKind::LeNet5 => lenet5(store, input, 10, backend, s.model_scale, seed),
        ModelKind::Vgg8 => vgg8(store, input, 10, backend, s.model_scale * 0.3, seed),
    }
}

/// Result of a retraining run.
#[derive(Debug)]
pub struct RetrainOutcome {
    /// Clean test accuracy in percent.
    pub accuracy_pct: f64,
    /// Trained model + parameters (for subsequent noise sweeps).
    pub model: ModelBundle,
}

/// A trained model with its parameter store.
pub struct ModelBundle {
    /// The pipeline.
    pub model: Sequential,
    /// Its parameters.
    pub store: ParamStore,
    /// Test split used for evaluation.
    pub test: adept_datasets::Dataset,
    /// Batch size for evaluation.
    pub batch_size: usize,
}

impl std::fmt::Debug for ModelBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBundle")
            .field("params", &self.store.num_scalars())
            .finish()
    }
}

impl ModelBundle {
    /// Accuracy (%) under phase noise `sigma`, averaged over `runs` fresh
    /// drift draws; returns `(mean, std)`.
    pub fn noisy_accuracy(&mut self, sigma: f64, runs: usize, seed: u64) -> (f64, f64) {
        self.model.set_phase_noise(sigma);
        let mut accs = Vec::with_capacity(runs);
        for r in 0..runs {
            let acc = evaluate_seeded(
                &mut self.model,
                &self.store,
                &self.test,
                self.batch_size,
                seed.wrapping_add(1 + r as u64) * 7919,
            );
            accs.push(100.0 * acc);
        }
        self.model.set_phase_noise(0.0);
        let mean = accs.iter().sum::<f64>() / runs as f64;
        let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / runs as f64;
        (mean, var.sqrt())
    }
}

/// Trains `kind` on `dataset` with the given photonic backend
/// (variation-aware) and reports clean accuracy.
pub fn retrain(
    kind: ModelKind,
    dataset: DatasetKind,
    backend: &Backend,
    s: &RetrainSettings,
    seed: u64,
) -> RetrainOutcome {
    retrain_impl(kind, dataset, backend, s, seed, None)
}

/// Like [`retrain`], but with a static [`FaultScenario`] active during
/// training **and** the final evaluation — fault-aware retraining on
/// damaged hardware, reporting the accuracy that hardware achieves.
pub fn retrain_faulted(
    kind: ModelKind,
    dataset: DatasetKind,
    backend: &Backend,
    s: &RetrainSettings,
    seed: u64,
    fault: FaultScenario,
) -> RetrainOutcome {
    retrain_impl(kind, dataset, backend, s, seed, Some(fault))
}

fn retrain_impl(
    kind: ModelKind,
    dataset: DatasetKind,
    backend: &Backend,
    s: &RetrainSettings,
    seed: u64,
    fault: Option<FaultScenario>,
) -> RetrainOutcome {
    let data_cfg = SyntheticConfig::new(dataset)
        .with_image_size(s.image_size)
        .with_sizes(s.n_train, s.n_test);
    let (train, test) = data_cfg.generate(seed ^ 0x0DA7_A5E7);
    let mut store = ParamStore::new();
    let mut model = build_model(&mut store, kind, dataset, backend, s, seed);
    let cfg = TrainConfig {
        epochs: s.epochs,
        batch_size: s.batch_size,
        lr: s.lr,
        seed,
        phase_noise_std: s.noise_std,
        fault,
    };
    let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
    RetrainOutcome {
        accuracy_pct: 100.0 * report.test_accuracy,
        model: ModelBundle {
            model,
            store,
            test,
            batch_size: s.batch_size,
        },
    }
}

/// Runs an ADEPT search at the given scale.
pub fn run_search(
    k: usize,
    pdk: Pdk,
    window: (f64, f64),
    scale: Scale,
    seed: u64,
) -> SearchOutcome {
    let mut cfg = match scale {
        Scale::Repro => AdeptConfig::quick(k, pdk, window.0, window.1),
        Scale::Full => AdeptConfig::paper_like(k, pdk, window.0, window.1),
    };
    cfg.seed = seed;
    search(&cfg)
}

/// Formats one table row in the paper's layout.
pub fn format_row(
    label: &str,
    counts: DeviceCount,
    window: Option<(f64, f64)>,
    footprint: f64,
    accuracy_pct: f64,
) -> String {
    let win = match window {
        Some((lo, hi)) => format!("[{lo:.0}, {hi:.0}]"),
        None => "-".to_owned(),
    };
    format!(
        "{label:<10} | {:>5}/{:>5}/{:>4} | {win:>14} | {footprint:>9.0} | {accuracy_pct:>7.2}",
        counts.cr, counts.dc, counts.blocks
    )
}

/// Table header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:<10} | {:>5}/{:>5}/{:>4} | {:>14} | {:>9} | {:>7}\n{}",
        "design",
        "#CR",
        "#DC",
        "#Blk",
        "[Fmin, Fmax]",
        "Footprint",
        "Acc(%)",
        "-".repeat(66)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_follow_point_eight_rule() {
        for k in [8usize, 16, 32] {
            for (lo, hi) in amf_windows(k) {
                assert!((lo - 0.8 * hi).abs() < 1e-9);
            }
        }
        assert_eq!(aim_windows().len(), 6);
    }

    #[test]
    fn baseline_counts_match_paper() {
        assert_eq!(mzi_counts(8).footprint_kum2(&Pdk::amf()).round(), 1909.0);
        assert_eq!(fft_counts(16).footprint_kum2(&Pdk::amf()).round(), 972.0);
        assert_eq!(fft_counts(16).footprint_kum2(&Pdk::aim()).round(), 1007.0);
    }

    #[test]
    fn row_formatting_is_stable() {
        let row = format_row("MZI", mzi_counts(8), None, 1909.0, 98.63);
        assert!(row.contains("MZI"));
        assert!(row.contains("1909"));
        assert!(row.contains("98.63"));
    }
}
