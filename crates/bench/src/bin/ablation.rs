//! Ablation study over ADEPT's design choices (extension beyond the
//! paper's tables): the full method vs no-ALM, no-SPL and fixed-depth
//! variants, all on the same 16×16 / AMF / a2-window task.
//!
//! Usage: `cargo run -p adept-bench --release --bin ablation [--scale full]`

use adept::search::{search, AblationFlags, AdeptConfig};
use adept_bench::{retrain, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let scale = Scale::from_args();
    let settings = RetrainSettings::for_scale(scale);
    let k = 16usize;
    let window = (672.0, 840.0); // Table 1 a2 target
    let variants: Vec<(&str, AblationFlags)> = vec![
        ("full ADEPT", AblationFlags::default()),
        (
            "no ALM",
            AblationFlags {
                no_alm: true,
                ..Default::default()
            },
        ),
        (
            "no SPL",
            AblationFlags {
                no_spl: true,
                ..Default::default()
            },
        ),
        (
            "fixed depth",
            AblationFlags {
                fixed_depth: true,
                ..Default::default()
            },
        ),
    ];
    println!(
        "Ablation — 16×16 PTC, AMF, window [{}, {}] kµm²; scale {scale:?}\n",
        window.0, window.1
    );
    println!(
        "{:<12} | {:>4} | {:>4} | {:>4} | {:>9} | {:>8} | {:>7}",
        "variant", "#CR", "#DC", "#Blk", "footprint", "Δ_end", "Acc(%)"
    );
    println!("{}", "-".repeat(66));
    for (name, flags) in variants {
        let mut cfg = match scale {
            Scale::Repro => AdeptConfig::quick(k, Pdk::amf(), window.0, window.1),
            Scale::Full => AdeptConfig::paper_like(k, Pdk::amf(), window.0, window.1),
        };
        cfg.seed = 77;
        cfg.ablation = flags;
        let out = search(&cfg);
        let backend = Backend::Topology {
            u: out.design.topo_u.clone(),
            v: out.design.topo_v.clone(),
        };
        let acc = retrain(
            ModelKind::Proxy,
            DatasetKind::MnistLike,
            &backend,
            &settings,
            77,
        )
        .accuracy_pct;
        let d = &out.design;
        println!(
            "{:<12} | {:>4} | {:>4} | {:>4} | {:>9.0} | {:>8.4} | {:>7.2}",
            name,
            d.device_count.cr,
            d.device_count.dc,
            d.device_count.blocks,
            d.footprint_kum2,
            out.history.last().map(|h| h.mean_delta).unwrap_or(f64::NAN),
            acc
        );
    }
    println!("\nReading: the exported design is always legal (the final projection");
    println!("legalizes even 'no SPL'), but skipping ALM/SPL leaves the relaxation");
    println!("dense until the very end — a larger train/deploy gap — while fixed");
    println!("depth removes the footprint-adaptive block count.");
}
