//! Regenerates **Figure 5(a)**: permutation-ALM dynamics when scanning the
//! initial penalty coefficient ρ₀ from 5e-8 to 5e-6 — mean λ (red in the
//! paper) and the permutation error Δ (blue) per optimization step.
//!
//! Usage: `cargo run -p adept-bench --release --bin fig5a [--scale full]`

use adept::traces::{alm_trace, AlmTraceConfig};
use adept_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let (steps, k) = match scale {
        Scale::Repro => (300usize, 8usize),
        Scale::Full => (2000, 16),
    };
    println!("Figure 5(a) — ALM ρ₀ scan (k = {k}, {steps} steps); scale {scale:?}\n");
    let rho0s = [1e-8, 5e-8, 1e-7, 5e-7, 1e-6, 5e-6];
    let mut traces = Vec::new();
    for &rho0 in &rho0s {
        let cfg = AlmTraceConfig {
            k,
            n_blocks: 3,
            rho0,
            steps,
            lr: 5e-3,
            seed: 7,
        };
        traces.push(alm_trace(&cfg));
    }
    // Print a downsampled series table: step, then (λ, Δ) per ρ₀.
    print!("{:>6}", "step");
    for &rho0 in &rho0s {
        print!(" | λ(ρ₀={rho0:1.0e}) Δ");
    }
    println!("\n{}", "-".repeat(6 + rho0s.len() * 22));
    let stride = (steps / 15).max(1);
    for i in (0..steps).step_by(stride) {
        print!("{:>6}", i);
        for t in &traces {
            print!(" | {:>9.5} {:>8.4}", t[i].mean_lambda, t[i].mean_delta);
        }
        println!();
    }
    println!("\nFinal permutation errors:");
    for (t, &rho0) in traces.iter().zip(&rho0s) {
        let last = t.last().unwrap();
        println!(
            "  ρ₀ = {rho0:1.0e}: Δ_end = {:.5}, λ_end = {:.5}, ρ_end/ρ₀ = {:.0}",
            last.mean_delta,
            last.mean_lambda,
            last.rho / rho0
        );
    }
    println!("\nShape target: Δ converges toward 0 for every ρ₀ in the scanned range");
    println!("(insensitivity to the hyper-parameter), while λ grows then saturates.");
}
