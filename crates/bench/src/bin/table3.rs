//! Regenerates **Table 3**: transfer of 16×16 PTCs searched on the
//! MNIST-like proxy to LeNet-5 and VGG-8 on harder datasets
//! (FashionMNIST-, SVHN- and CIFAR-10-like).
//!
//! Usage: `cargo run -p adept-bench --release --bin table3 [--scale full]`

use adept_bench::{amf_windows, retrain, run_search, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let scale = Scale::from_args();
    let mut settings = RetrainSettings::for_scale(scale);
    // Transfer experiments use slightly larger images so LeNet/VGG have
    // room to pool.
    settings.image_size = settings.image_size.max(12);
    let k = 16usize;
    let windows = amf_windows(k);
    println!("Table 3 — transfer of searched 16×16 PTCs (AMF) to other models/datasets; scale {scale:?}\n");

    // Search a2 and a4 on the MNIST-like proxy (windows index 1 and 3).
    let a2 = run_search(k, Pdk::amf(), windows[1], scale, 302);
    let a4 = run_search(k, Pdk::amf(), windows[3], scale, 304);
    let backends: Vec<(String, Backend, f64)> = vec![
        (
            "MZI".into(),
            Backend::Mzi { k },
            adept_bench::mzi_counts(k).footprint_kum2(&Pdk::amf()),
        ),
        (
            "FFT".into(),
            Backend::butterfly(k),
            adept_bench::fft_counts(k).footprint_kum2(&Pdk::amf()),
        ),
        (
            "ADEPT-a2".into(),
            Backend::Topology {
                u: a2.design.topo_u.clone(),
                v: a2.design.topo_v.clone(),
            },
            a2.design.footprint_kum2,
        ),
        (
            "ADEPT-a4".into(),
            Backend::Topology {
                u: a4.design.topo_u.clone(),
                v: a4.design.topo_v.clone(),
            },
            a4.design.footprint_kum2,
        ),
    ];
    print!("{:<8} {:<10}", "model", "dataset");
    for (name, _, _) in &backends {
        print!(" | {name:>9}");
    }
    println!();
    print!("{:<8} {:<10}", "", "footprint");
    for (_, _, f) in &backends {
        print!(" | {f:>9.0}");
    }
    println!("\n{}", "-".repeat(20 + backends.len() * 12));

    let datasets = [
        DatasetKind::FashionMnistLike,
        DatasetKind::SvhnLike,
        DatasetKind::Cifar10Like,
    ];
    for (mk, mname) in [(ModelKind::LeNet5, "LeNet-5"), (ModelKind::Vgg8, "VGG-8")] {
        for ds in datasets {
            print!("{:<8} {:<10}", mname, ds.name());
            for (bi, (_, backend, _)) in backends.iter().enumerate() {
                let acc = retrain(mk, ds, backend, &settings, 40 + bi as u64).accuracy_pct;
                print!(" | {acc:>9.2}");
            }
            println!();
        }
    }
    println!("\nShape target: ADEPT-a4 ≈ MZI ≫ FFT on the harder datasets, at ~16% of");
    println!("the MZI footprint (paper: 1206 vs 7683 kµm²).");
}
