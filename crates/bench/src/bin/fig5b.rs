//! Regenerates **Figure 5(b)**: footprint-penalty dynamics when scanning
//! the penalty weight β from 0.001 to 10 — expected footprint `E[F]` (red in
//! the paper) and normalized penalty L_F/β (black) per step, against the
//! ADEPT-a1 constraint window (green band).
//!
//! Usage: `cargo run -p adept-bench --release --bin fig5b [--scale full]`

use adept::traces::{footprint_trace, FpenTraceConfig};
use adept_bench::Scale;
use adept_photonics::Pdk;

fn main() {
    let scale = Scale::from_args();
    let (steps, k) = match scale {
        Scale::Repro => (250usize, 16usize),
        Scale::Full => (1500, 16),
    };
    // ADEPT-a1 target at 16×16 on AMF: [480, 600] kµm².
    let (f_min, f_max) = (480.0, 600.0);
    println!(
        "Figure 5(b) — footprint-penalty β scan (k = {k}, window [{f_min:.0}, {f_max:.0}] kµm²); scale {scale:?}\n"
    );
    let betas = [0.001, 0.01, 0.1, 1.0, 10.0];
    let mut traces = Vec::new();
    for &beta in &betas {
        let cfg = FpenTraceConfig {
            k,
            n_blocks: 6,
            pinned: 1,
            pdk: Pdk::amf(),
            f_min_kum2: f_min,
            f_max_kum2: f_max,
            beta,
            steps,
            lr: 3e-2,
            seed: 11,
        };
        traces.push(footprint_trace(&cfg));
    }
    print!("{:>6}", "step");
    for &beta in &betas {
        print!(" | E[F](β={beta:<5}) L/β");
    }
    println!("\n{}", "-".repeat(6 + betas.len() * 24));
    let stride = (steps / 15).max(1);
    for i in (0..steps).step_by(stride) {
        print!("{:>6}", i);
        for t in &traces {
            print!(
                " | {:>11.1} {:>8.4}",
                t[i].expected_f_kum2, t[i].penalty_over_beta
            );
        }
        println!();
    }
    println!("\nFinal expected footprints (window [{f_min:.0}, {f_max:.0}]):");
    for (t, &beta) in traces.iter().zip(&betas) {
        let last = t.last().unwrap();
        let inside = last.expected_f_kum2 >= f_min && last.expected_f_kum2 <= f_max;
        println!(
            "  β = {beta:<6}: E[F]_end = {:>7.1} kµm²  {}",
            last.expected_f_kum2,
            if inside {
                "(inside window)"
            } else {
                "(outside window)"
            }
        );
    }
    println!("\nShape target: with β ≈ 10 the expected footprint is pulled inside the");
    println!("constraint window; with β ≤ 0.01 the penalty is too weak to bound it.");
}
