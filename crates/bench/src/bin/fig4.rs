//! Regenerates **Figure 4**: accuracy vs phase-noise σ for MZI-ONN,
//! FFT-ONN and the searched ADEPT-a2/a4 16×16 PTCs, with variation-aware
//! training. (a) 2-layer proxy CNN on MNIST-like; (b) LeNet-5 on
//! FashionMNIST-like. Mean ± std over repeated noise draws (the paper
//! shades ±3σ over 20 runs; pass `--runs N` to change the default).
//!
//! Usage: `cargo run -p adept-bench --release --bin fig4 [--scale full] [--runs N]`

use adept_bench::{amf_windows, retrain, run_search, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn runs_from_args(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--runs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(if scale == Scale::Full { 20 } else { 5 });
    let settings = RetrainSettings::for_scale(scale);
    let k = 16usize;
    let windows = amf_windows(k);
    println!("Figure 4 — robustness of 16×16 PTCs under phase noise; scale {scale:?}, {runs} runs/point\n");

    let a2 = run_search(k, Pdk::amf(), windows[1], scale, 402);
    let a4 = run_search(k, Pdk::amf(), windows[3], scale, 404);
    let backends: Vec<(&str, Backend)> = vec![
        ("MZI", Backend::Mzi { k }),
        ("FFT", Backend::butterfly(k)),
        (
            "ADEPT-a2",
            Backend::Topology {
                u: a2.design.topo_u.clone(),
                v: a2.design.topo_v.clone(),
            },
        ),
        (
            "ADEPT-a4",
            Backend::Topology {
                u: a4.design.topo_u.clone(),
                v: a4.design.topo_v.clone(),
            },
        ),
    ];
    let sigmas = [0.02, 0.04, 0.06, 0.08, 0.10];
    let panels = [
        (
            "(a) proxy CNN / MNIST-like",
            ModelKind::Proxy,
            DatasetKind::MnistLike,
        ),
        (
            "(b) LeNet-5 / FMNIST-like",
            ModelKind::LeNet5,
            DatasetKind::FashionMnistLike,
        ),
    ];
    for (title, mk, ds) in panels {
        println!("{title}");
        print!("{:<10} | {:>7}", "design", "clean");
        for s in sigmas {
            print!(" | σ={s:>4.2}");
        }
        println!("\n{}", "-".repeat(10 + 10 + sigmas.len() * 9));
        for (bi, (name, backend)) in backends.iter().enumerate() {
            let mut outcome = retrain(mk, ds, backend, &settings, 50 + bi as u64);
            print!("{:<10} | {:>7.2}", name, outcome.accuracy_pct);
            for (si, &sigma) in sigmas.iter().enumerate() {
                let (mean, std) =
                    outcome
                        .model
                        .noisy_accuracy(sigma, runs, 1000 + (bi * 10 + si) as u64);
                print!(" | {mean:>5.1}±{std:>3.1}");
            }
            println!();
        }
        println!();
    }
    println!("Shape target: the deep MZI mesh degrades fastest as σ grows; the");
    println!("searched shallow ADEPT meshes track or beat the butterfly.");
}
