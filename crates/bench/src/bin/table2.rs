//! Regenerates **Table 2**: 16×16 PTCs on the AIM photonics PDK, whose
//! large crossings (4900 µm²) force the search toward crossing-light
//! routings.
//!
//! Usage: `cargo run -p adept-bench --release --bin table2 [--scale full]`

use adept_bench::{
    aim_windows, fft_counts, format_row, header, mzi_counts, retrain, run_search, ModelKind,
    RetrainSettings, Scale,
};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let scale = Scale::from_args();
    let settings = RetrainSettings::for_scale(scale);
    let pdk = Pdk::aim();
    let k = 16usize;
    println!("Table 2 — AIM PDK (PS 2500 µm², DC 4000 µm², CR 4900 µm²); scale {scale:?}");
    println!("accuracy task: MNIST-like proxy, 2-layer CNN (variation-aware retraining)\n");
    println!("{}", header());
    let mzi = mzi_counts(k);
    let acc = retrain(
        ModelKind::Proxy,
        DatasetKind::MnistLike,
        &Backend::Mzi { k },
        &settings,
        1,
    )
    .accuracy_pct;
    println!(
        "{}",
        format_row("MZI-ONN", mzi, None, mzi.footprint_kum2(&pdk), acc)
    );
    let fft = fft_counts(k);
    let acc = retrain(
        ModelKind::Proxy,
        DatasetKind::MnistLike,
        &Backend::butterfly(k),
        &settings,
        2,
    )
    .accuracy_pct;
    println!(
        "{}",
        format_row("FFT-ONN", fft, None, fft.footprint_kum2(&pdk), acc)
    );
    for (i, window) in aim_windows().into_iter().enumerate() {
        let out = run_search(k, pdk.clone(), window, scale, 200 + i as u64);
        let backend = Backend::Topology {
            u: out.design.topo_u.clone(),
            v: out.design.topo_v.clone(),
        };
        let acc = retrain(
            ModelKind::Proxy,
            DatasetKind::MnistLike,
            &backend,
            &settings,
            20 + i as u64,
        )
        .accuracy_pct;
        println!(
            "{}",
            format_row(
                &format!("ADEPT-a{i}"),
                out.design.device_count,
                Some(window),
                out.design.footprint_kum2,
                acc
            )
        );
    }
    println!("\nNote: on AIM the searched designs should use far fewer crossings than");
    println!("the butterfly (88) to stay within budget — compare the #CR column.");
}
