//! Regenerates **Table 1**: searched PTCs of three sizes under five AMF
//! footprint windows vs the MZI-ONN and FFT-ONN baselines, on the
//! MNIST-like proxy task with the 2-layer CNN.
//!
//! Usage: `cargo run -p adept-bench --release --bin table1 [--scale full]`

use adept_bench::{
    amf_windows, fft_counts, format_row, header, mzi_counts, retrain, run_search, ModelKind,
    RetrainSettings, Scale,
};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let scale = Scale::from_args();
    let settings = RetrainSettings::for_scale(scale);
    let pdk = Pdk::amf();
    println!("Table 1 — AMF PDK (PS 6800 µm², DC 1500 µm², CR 64 µm²); scale {scale:?}");
    println!("accuracy task: MNIST-like proxy, 2-layer CNN (variation-aware retraining)\n");
    for k in [8usize, 16, 32] {
        println!("=== {k}×{k} PTC ===");
        println!("{}", header());
        let mzi = mzi_counts(k);
        let acc = retrain(
            ModelKind::Proxy,
            DatasetKind::MnistLike,
            &Backend::Mzi { k },
            &settings,
            1,
        )
        .accuracy_pct;
        println!(
            "{}",
            format_row("MZI-ONN", mzi, None, mzi.footprint_kum2(&pdk), acc)
        );
        let fft = fft_counts(k);
        let acc = retrain(
            ModelKind::Proxy,
            DatasetKind::MnistLike,
            &Backend::butterfly(k),
            &settings,
            2,
        )
        .accuracy_pct;
        println!(
            "{}",
            format_row("FFT-ONN", fft, None, fft.footprint_kum2(&pdk), acc)
        );
        for (i, window) in amf_windows(k).into_iter().enumerate() {
            let out = run_search(k, pdk.clone(), window, scale, 100 + i as u64);
            let backend = Backend::Topology {
                u: out.design.topo_u.clone(),
                v: out.design.topo_v.clone(),
            };
            let acc = retrain(
                ModelKind::Proxy,
                DatasetKind::MnistLike,
                &backend,
                &settings,
                10 + i as u64,
            )
            .accuracy_pct;
            println!(
                "{}",
                format_row(
                    &format!("ADEPT-a{}", i + 1),
                    out.design.device_count,
                    Some(window),
                    out.design.footprint_kum2,
                    acc
                )
            );
        }
        println!();
    }
}
