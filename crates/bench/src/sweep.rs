//! Parallel robustness sweep: accuracy across fault probability × phase
//! noise × PTC topology.
//!
//! The harness behind `examples/fault_sweep.rs`. For each topology it
//! trains the paper's proxy CNN once (variation-aware, clean hardware),
//! then freezes one fault-aware [`ExecPlan`] per grid cell — the
//! [`FaultScenario`] (dead phase shifters at probability `p`, all cells
//! sharing one fault seed so damage nests monotonically as `p` grows) and
//! the frozen phase-noise draw are baked into the plan's weights through
//! the same batched `[T, B, K]` mesh build the tape uses. Plans compile
//! sequentially (the mesh build already parallelizes internally via
//! `prebuild_mesh_weights`), then **all cells evaluate concurrently** on
//! the shared [`adept_tensor::pool`] — each cell owns its plan, so the
//! grid is embarrassingly parallel and, because every number is seeded,
//! bit-stable across `ONN_THREADS`.
//!
//! The sweep ends with the recovery experiment open item 4 asks for:
//! accuracy clean → damaged (p = `recovery_p` dead shifters) → damaged
//! but *fault-aware retrained* (training runs with the scenario active,
//! so the optimizer routes around the dead hardware).

use crate::{retrain, ModelKind, RetrainSettings, Scale};
use adept_datasets::{Dataset, DatasetKind};
use adept_infer::{ExecPlan, PlanPrecision};
use adept_nn::layers::Layer;
use adept_nn::models::Backend;
use adept_nn::train::evaluate_faulted;
use adept_photonics::{DeviceCount, FaultKind, FaultScenario, Pdk};
use adept_telemetry::LocalHistogram;
use adept_tensor::pool;
use std::sync::Arc;
use std::time::Instant;

/// Grid shape + training budget of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepSettings {
    /// Training budget for the per-topology baselines.
    pub retrain: RetrainSettings,
    /// Dead-shifter probabilities (include `0.0` for the clean column).
    pub fault_levels: Vec<f64>,
    /// Phase-noise stds frozen into the compiled weights.
    pub noise_levels: Vec<f64>,
    /// Dead-shifter probability of the retraining-recovery experiment.
    pub recovery_p: f64,
    /// Master seed: datasets, training, fault sites and noise draws all
    /// derive from it, making the whole grid reproducible bit-for-bit.
    pub seed: u64,
}

impl SweepSettings {
    /// Full grid for a benchmark scale.
    pub fn for_scale(scale: Scale) -> Self {
        Self {
            retrain: RetrainSettings::for_scale(scale),
            fault_levels: vec![0.0, 0.02, 0.05, 0.1],
            noise_levels: vec![0.0, 0.01, 0.02],
            recovery_p: 0.1,
            seed: 42,
        }
    }

    /// Reduced grid for CI: smaller model/budget, 3 fault levels × 2
    /// noise levels — still ≥ 2 topologies × ≥ 3 fault levels.
    pub fn reduced() -> Self {
        Self {
            retrain: RetrainSettings {
                image_size: 8,
                channels: 4,
                model_scale: 0.3,
                n_train: 192,
                n_test: 96,
                epochs: 4,
                batch_size: 16,
                lr: 4e-3,
                noise_std: 0.02,
            },
            fault_levels: vec![0.0, 0.05, 0.1],
            noise_levels: vec![0.0, 0.02],
            recovery_p: 0.1,
            seed: 42,
        }
    }
}

/// One grid cell: a topology under a fault level and a frozen noise draw.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Topology label.
    pub topology: String,
    /// Dead-shifter probability.
    pub fault_p: f64,
    /// Phase-noise std frozen into the plan.
    pub noise_std: f64,
    /// Test accuracy in percent.
    pub accuracy_pct: f64,
    /// Median `run_batch` latency over the cell's evaluation batches, in
    /// microseconds. Timing, not accuracy: unlike every other grid number
    /// it is *not* bit-stable across machines or `ONN_THREADS` (CI strips
    /// latency columns before diffing thread legs).
    pub p50_batch_us: f64,
    /// 99th-percentile `run_batch` latency over the evaluation batches
    /// (µs); same caveat as [`SweepCell::p50_batch_us`].
    pub p99_batch_us: f64,
}

/// Per-topology facts shared by all its cells.
#[derive(Debug, Clone)]
pub struct TopologyReport {
    /// Topology label.
    pub name: String,
    /// Clean variation-aware training accuracy (%).
    pub clean_accuracy_pct: f64,
    /// PTC footprint on AMF in 1000 µm².
    pub footprint_kum2: f64,
    /// Device counts of one PTC.
    pub counts: DeviceCount,
}

/// The clean → damaged → fault-aware-retrained recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Topology the experiment ran on.
    pub topology: String,
    /// Dead-shifter probability of the damage.
    pub fault_p: f64,
    /// Clean-hardware baseline accuracy (%).
    pub clean_pct: f64,
    /// The clean weights evaluated on the damaged hardware (%).
    pub faulted_pct: f64,
    /// Fault-aware retraining evaluated on the same damaged hardware (%).
    pub retrained_pct: f64,
}

/// Everything one sweep run produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-topology baselines and footprints.
    pub topologies: Vec<TopologyReport>,
    /// The accuracy grid, in (topology, fault, noise) iteration order.
    pub cells: Vec<SweepCell>,
    /// The retraining-recovery experiment (first topology).
    pub recovery: RecoveryReport,
}

/// PTC device counts of a backend.
fn backend_counts(backend: &Backend) -> DeviceCount {
    match backend {
        Backend::Mzi { k } => DeviceCount::mzi_ptc(*k),
        Backend::Topology { u, v } => u.ptc_device_count(v),
    }
}

/// The dead-shifter scenario of one fault level. All levels share the
/// sweep's fault seed, so a site dead at p stays dead at every p' > p —
/// the grid degrades monotonically by construction.
fn scenario(seed: u64, p: f64) -> Option<Arc<FaultScenario>> {
    if p <= 0.0 {
        return None;
    }
    Some(Arc::new(
        FaultScenario::new(seed ^ 0xFA_017).with(FaultKind::DeadShifter { p }),
    ))
}

/// Test accuracy (%) of a compiled plan over a dataset, plus the per-call
/// `run_batch` latency distribution (a [`LocalHistogram`]: unsynchronized
/// and always recording, so the cell's timing column costs no atomics and
/// needs no `ONN_TELEMETRY`).
fn plan_accuracy(plan: &mut ExecPlan, test: &Dataset) -> (f64, LocalHistogram) {
    let in_elems = plan.input_elems();
    let classes = plan.output_features();
    let cap = plan.max_batch();
    let mut logits = vec![0.0; cap * classes];
    let images = test.images.as_slice();
    let mut lat = LocalHistogram::new();
    let mut correct = 0usize;
    let mut i = 0usize;
    while i < test.len() {
        let n = cap.min(test.len() - i);
        let t0 = Instant::now();
        plan.run_batch(
            &images[i * in_elems..(i + n) * in_elems],
            n,
            &mut logits[..n * classes],
        );
        lat.record_duration(t0.elapsed());
        for r in 0..n {
            let row = &logits[r * classes..(r + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map_or(0, |(c, _)| c);
            correct += usize::from(pred == test.labels[i + r]);
        }
        i += n;
    }
    (100.0 * correct as f64 / test.len() as f64, lat)
}

/// Histogram-bucket quantile in microseconds (bucket bounds are ns).
fn quantile_us(lat: &LocalHistogram, p: f64) -> f64 {
    lat.quantile(p) as f64 / 1_000.0
}

/// Runs the sweep: trains one clean baseline per topology, compiles one
/// fault-aware plan per grid cell, evaluates all cells concurrently on
/// the shared pool, and finishes with the p = `recovery_p` fault-aware
/// retraining experiment on the first topology.
pub fn run_sweep(topologies: &[(String, Backend)], settings: &SweepSettings) -> SweepOutcome {
    assert!(!topologies.is_empty(), "sweep needs at least one topology");
    let s = &settings.retrain;
    let dataset = DatasetKind::MnistLike;
    let pdk = Pdk::amf();

    // Phase 1 (sequential): per-topology clean training + per-cell plan
    // compilation. The mesh builds inside already fan out on the pool.
    let mut reports = Vec::new();
    let mut bundles = Vec::new();
    let mut cells: Vec<SweepCell> = Vec::new();
    let mut plans: Vec<ExecPlan> = Vec::new();
    for (name, backend) in topologies {
        let outcome = retrain(ModelKind::Proxy, dataset, backend, s, settings.seed);
        let counts = backend_counts(backend);
        reports.push(TopologyReport {
            name: name.clone(),
            clean_accuracy_pct: outcome.accuracy_pct,
            footprint_kum2: counts.footprint_kum2(&pdk),
            counts,
        });
        let mut bundle = outcome.model;
        let shape = [dataset.channels(), s.image_size, s.image_size];
        for &p in &settings.fault_levels {
            for &sigma in &settings.noise_levels {
                bundle.model.set_phase_noise(sigma);
                let plan = ExecPlan::compile_faulted(
                    &bundle.model,
                    &bundle.store,
                    &shape,
                    s.batch_size,
                    settings.seed ^ 0x5EED,
                    scenario(settings.seed, p),
                    PlanPrecision::F64,
                )
                .expect("proxy CNN lowers");
                bundle.model.set_phase_noise(0.0);
                cells.push(SweepCell {
                    topology: name.clone(),
                    fault_p: p,
                    noise_std: sigma,
                    accuracy_pct: 0.0,
                    p50_batch_us: 0.0,
                    p99_batch_us: 0.0,
                });
                plans.push(plan);
            }
        }
        bundles.push(bundle);
    }

    // Phase 2 (concurrent): every cell owns its plan, so the whole grid
    // evaluates in parallel on the shared pool. Results are seeded and
    // land in disjoint slots — bit-stable at any thread count.
    let test = &bundles[0].test;
    pool::scope(|scope| {
        for (cell, plan) in cells.iter_mut().zip(plans.iter_mut()) {
            scope.spawn(move || {
                let (acc, lat) = plan_accuracy(plan, test);
                cell.accuracy_pct = acc;
                cell.p50_batch_us = quantile_us(&lat, 50.0);
                cell.p99_batch_us = quantile_us(&lat, 99.0);
            });
        }
    });

    // Phase 3: recovery experiment on the first topology — same damaged
    // hardware, with and without fault-aware retraining.
    let (name, backend) = &topologies[0];
    let damage = scenario(settings.seed, settings.recovery_p).expect("recovery_p > 0");
    let clean = &mut bundles[0];
    let faulted_pct = 100.0
        * evaluate_faulted(
            &mut clean.model,
            &clean.store,
            &clean.test,
            s.batch_size,
            0,
            &damage,
        );
    let retrained = crate::retrain_faulted(
        ModelKind::Proxy,
        dataset,
        backend,
        s,
        settings.seed,
        (*damage).clone(),
    );
    let recovery = RecoveryReport {
        topology: name.clone(),
        fault_p: settings.recovery_p,
        clean_pct: reports[0].clean_accuracy_pct,
        faulted_pct,
        retrained_pct: retrained.accuracy_pct,
    };

    SweepOutcome {
        topologies: reports,
        cells,
        recovery,
    }
}

/// Serializes a sweep outcome as the `BENCH_robustness.json` document.
pub fn robustness_json(outcome: &SweepOutcome) -> String {
    let mut s = String::from("{\n  \"schema\": \"robustness_grid\",\n  \"topologies\": {\n");
    for (i, t) in outcome.topologies.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\"clean_accuracy_pct\": {:.4}, \"footprint_kum2\": {:.1}, \"ps\": {}, \"dc\": {}, \"cr\": {}, \"blocks\": {}}}{}\n",
            t.name,
            t.clean_accuracy_pct,
            t.footprint_kum2,
            t.counts.ps,
            t.counts.dc,
            t.counts.cr,
            t.counts.blocks,
            if i + 1 < outcome.topologies.len() { "," } else { "" },
        ));
    }
    s.push_str("  },\n  \"grid\": [\n");
    for (i, c) in outcome.cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"topology\": \"{}\", \"fault_p\": {}, \"noise_std\": {}, \"accuracy_pct\": {:.4}, \"p50_batch_us\": {:.1}, \"p99_batch_us\": {:.1}}}{}\n",
            c.topology,
            c.fault_p,
            c.noise_std,
            c.accuracy_pct,
            c.p50_batch_us,
            c.p99_batch_us,
            if i + 1 < outcome.cells.len() { "," } else { "" },
        ));
    }
    let r = &outcome.recovery;
    s.push_str(&format!(
        "  ],\n  \"recovery\": {{\"topology\": \"{}\", \"fault_p\": {}, \"clean_pct\": {:.4}, \"faulted_pct\": {:.4}, \"retrained_pct\": {:.4}}}\n}}\n",
        r.topology, r.fault_p, r.clean_pct, r.faulted_pct, r.retrained_pct,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_fault_seed_nests_damage_monotonically() {
        let lo = scenario(7, 0.05).unwrap();
        let hi = scenario(7, 0.2).unwrap();
        for wire in 0..64u32 {
            let site = FaultScenario::shifter_site("w.u0", 3, wire as usize);
            let dead_lo = lo.apply_phase(site, 1.0) == 0.0;
            let dead_hi = hi.apply_phase(site, 1.0) == 0.0;
            assert!(
                !dead_lo || dead_hi,
                "site dead at p=0.05 must stay dead at p=0.2"
            );
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let outcome = SweepOutcome {
            topologies: vec![TopologyReport {
                name: "butterfly8".into(),
                clean_accuracy_pct: 90.0,
                footprint_kum2: 972.0,
                counts: DeviceCount::new(1, 2, 3, 4),
            }],
            cells: vec![SweepCell {
                topology: "butterfly8".into(),
                fault_p: 0.1,
                noise_std: 0.02,
                accuracy_pct: 80.5,
                p50_batch_us: 120.0,
                p99_batch_us: 450.5,
            }],
            recovery: RecoveryReport {
                topology: "butterfly8".into(),
                fault_p: 0.1,
                clean_pct: 90.0,
                faulted_pct: 60.0,
                retrained_pct: 87.0,
            },
        };
        let json = robustness_json(&outcome);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"robustness_grid\""));
        assert!(json.contains("\"accuracy_pct\": 80.5000"));
        assert!(json.contains("\"p50_batch_us\": 120.0"));
        assert!(json.contains("\"p99_batch_us\": 450.5"));
        assert!(json.contains("\"retrained_pct\": 87.0000"));
    }
}
