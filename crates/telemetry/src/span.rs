//! Hierarchical tracing spans with explicit, handle-derived paths.

use crate::enabled;
use crate::registry::{intern_path, record_span, Stability};
use std::time::Instant;

/// Start a stable span at `path` (segments separated by `/`). Returns a
/// guard that records the elapsed wall-clock time under `path` when it
/// drops. While telemetry is disabled this is a no-op: no clock read,
/// no interning, no allocation.
#[inline]
pub fn span(path: &'static str) -> SpanGuard {
    enter(0, path, Stability::Stable)
}

/// Start a volatile span (its count may differ across `ONN_THREADS`;
/// timing section only).
#[inline]
pub fn span_volatile(path: &'static str) -> SpanGuard {
    enter(0, path, Stability::Volatile)
}

/// [`span`] as a macro, for call sites that read better as
/// `span!("train_step")`.
#[macro_export]
macro_rules! span {
    ($path:expr) => {
        $crate::span($path)
    };
}

fn enter(parent: u32, path: &'static str, stability: Stability) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    SpanGuard {
        path: intern_path(parent, path, stability),
        start: Some(Instant::now()),
    }
}

/// A running span; records its duration on drop. `Sync`, so a parent
/// guard can be borrowed by worker closures to derive children — the
/// child's path comes from the parent's *path*, never from which thread
/// it runs on, which is what keeps span trees deterministic across
/// `ONN_THREADS`.
pub struct SpanGuard {
    /// Interned path id; 0 for the disabled no-op guard.
    path: u32,
    start: Option<Instant>,
}

impl SpanGuard {
    fn noop() -> Self {
        SpanGuard {
            path: 0,
            start: None,
        }
    }

    /// Start a stable child span named `name` under this span's path.
    /// Children of a no-op guard are no-ops.
    #[inline]
    pub fn child(&self, name: &'static str) -> SpanGuard {
        if self.path == 0 {
            return SpanGuard::noop();
        }
        enter(self.path, name, Stability::Stable)
    }

    /// Start a volatile child span.
    #[inline]
    pub fn child_volatile(&self, name: &'static str) -> SpanGuard {
        if self.path == 0 {
            return SpanGuard::noop();
        }
        enter(self.path, name, Stability::Volatile)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            record_span(self.path, ns);
        }
    }
}
