//! Counters and fixed-bucket histograms.

use crate::enabled;
use crate::registry::{counter_cell, hist_cell, CounterCell, Stability};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` counts values `v` with
/// `bit_length(v) == i`, i.e. `v ∈ [2^(i-1), 2^i)` (bucket 0 holds 0).
/// The last bucket absorbs everything ≥ 2^46 ns ≈ 19.5 hours.
pub(crate) const BUCKETS: usize = 48;

/// What a histogram's values measure — controls rendering only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Unit {
    /// Nanoseconds; rendered as human durations.
    Nanos,
    /// Dimensionless counts (e.g. queue depth); rendered raw.
    Count,
}

/// Bucket index for a recorded value.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound reported for bucket `i` (the value a quantile
/// resolves to).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// Nearest-rank quantile over bucket counts: the upper bound of the
/// bucket holding the `ceil(p/100 · N)`-th smallest value.
pub(crate) fn bucket_quantile(buckets: &[u64], count: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(buckets.len() - 1)
}

/// A process-wide monotonic counter. Declare as a `static` at the use
/// site; the cell is interned in the registry on first touch, so every
/// site naming the same counter shares one value.
///
/// All mutation is a no-op while telemetry is disabled.
pub struct Counter {
    name: &'static str,
    stability: Stability,
    cell: OnceLock<&'static CounterCell>,
}

impl Counter {
    /// A counter whose total is deterministic across `ONN_THREADS`.
    pub const fn stable(name: &'static str) -> Self {
        Counter {
            name,
            stability: Stability::Stable,
            cell: OnceLock::new(),
        }
    }

    /// A counter whose total depends on scheduling.
    pub const fn volatile(name: &'static str) -> Self {
        Counter {
            name,
            stability: Stability::Volatile,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static CounterCell {
        self.cell
            .get_or_init(|| counter_cell(self.name, self.stability))
    }

    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell().value.fetch_add(n, Relaxed);
        }
    }

    /// Add 1 (no-op while disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (readable even while disabled).
    pub fn value(&self) -> u64 {
        self.cell().value.load(Relaxed)
    }
}

pub(crate) struct HistCell {
    pub name: &'static str,
    pub unit: Unit,
    pub buckets: [AtomicU64; BUCKETS],
    pub count: AtomicU64,
    pub sum: AtomicU64,
}

/// A process-wide fixed-bucket histogram; declare as a `static` like
/// [`Counter`]. Recording is lock-free (three relaxed atomic adds) and
/// a no-op while telemetry is disabled; quantiles are computed from the
/// bucket counts at snapshot time.
pub struct Histogram {
    name: &'static str,
    unit: Unit,
    cell: OnceLock<&'static HistCell>,
}

impl Histogram {
    /// A nanosecond-valued latency histogram.
    pub const fn nanos(name: &'static str) -> Self {
        Histogram {
            name,
            unit: Unit::Nanos,
            cell: OnceLock::new(),
        }
    }

    /// A dimensionless-count histogram (e.g. queue depth).
    pub const fn counts(name: &'static str) -> Self {
        Histogram {
            name,
            unit: Unit::Count,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistCell {
        self.cell.get_or_init(|| hist_cell(self.name, self.unit))
    }

    /// Record one value (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            let cell = self.cell();
            cell.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            cell.count.fetch_add(1, Relaxed);
            cell.sum.fetch_add(v, Relaxed);
        }
    }

    /// Record a duration in nanoseconds (no-op while disabled).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// The registry histograms' bucket/quantile machinery as a plain local
/// value: same power-of-two buckets, same nearest-rank quantiles, but
/// unsynchronized, unregistered, and **always recording** regardless of
/// `ONN_TELEMETRY` — for callers that aggregate privately, like the
/// per-cell serving latencies in `adept_bench::sweep`.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Nearest-rank quantile (`p` in percent), as the matched bucket's
    /// upper bound; 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        bucket_quantile(&self.buckets, self.count, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let mut h = LocalHistogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        // rank(50) = ceil(0.5·5) = 3 → the value 3 lives in bucket 2
        // (values 2..4), upper bound 3.
        assert_eq!(h.quantile(50.0), 3);
        // rank(99) = 5 → 1000 is in bucket 10 (512..1024), bound 1023.
        assert_eq!(h.quantile(99.0), 1023);
        assert_eq!(LocalHistogram::new().quantile(50.0), 0);
    }
}
