//! Process-wide instrument registry: counter/histogram cells, the span
//! path table, per-thread span ring buffers, and the span aggregate.
//!
//! Instruments are interned once (leaked `'static` cells) and shared by
//! every call site that names them. Span paths are interned per `/`
//! segment so `span("a/b")` and `span("a").child("b")` aggregate under
//! the same path.

use crate::metrics::{HistCell, Unit};
use crate::sync::lock_recover;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, OnceLock};

/// Deterministic (`Stable`) vs. scheduling-dependent (`Volatile`)
/// instrument classification — see the crate docs' determinism contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stability {
    /// Totals identical at any `ONN_THREADS`; rendered in the
    /// deterministic section the CI determinism job diffs.
    Stable,
    /// Totals legitimately vary with scheduling; timing section only.
    Volatile,
}

/// Capacity of each thread's span ring buffer; the ring flushes to the
/// process-wide aggregate when full and at every snapshot.
pub(crate) const SPAN_RING: usize = 256;

pub(crate) struct CounterCell {
    pub name: &'static str,
    pub stability: Stability,
    pub value: AtomicU64,
}

pub(crate) struct PathInfo {
    pub full: String,
    pub stability: Stability,
}

/// Per-thread destination for finished spans. Registered globally so a
/// snapshot can drain rings owned by other threads; the `Mutex` is
/// uncontended except while a snapshot drains it.
pub(crate) struct SpanSink {
    pub buf: Mutex<Vec<(u32, u64)>>,
}

#[derive(Clone, Copy, Default)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

#[derive(Default)]
struct PathTable {
    /// `(parent id, segment name)` → path id; parent 0 means "root".
    ids: HashMap<(u32, &'static str), u32>,
    /// Path id − 1 → info.
    infos: Vec<PathInfo>,
}

struct Registry {
    counters: Mutex<Vec<&'static CounterCell>>,
    hists: Mutex<Vec<&'static HistCell>>,
    paths: Mutex<PathTable>,
    sinks: Mutex<Vec<Arc<SpanSink>>>,
    /// Path id − 1 → aggregate.
    agg: Mutex<Vec<SpanAgg>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
        paths: Mutex::new(PathTable::default()),
        sinks: Mutex::new(Vec::new()),
        agg: Mutex::new(Vec::new()),
    })
}

/// Intern (or find) the counter cell for `name`. First registration
/// fixes the stability.
pub(crate) fn counter_cell(name: &'static str, stability: Stability) -> &'static CounterCell {
    let mut counters = lock_recover(&registry().counters);
    if let Some(c) = counters.iter().find(|c| c.name == name) {
        return c;
    }
    let cell: &'static CounterCell = Box::leak(Box::new(CounterCell {
        name,
        stability,
        value: AtomicU64::new(0),
    }));
    counters.push(cell);
    cell
}

/// Intern (or find) the histogram cell for `name`.
pub(crate) fn hist_cell(name: &'static str, unit: Unit) -> &'static HistCell {
    let mut hists = lock_recover(&registry().hists);
    if let Some(h) = hists.iter().find(|h| h.name == name) {
        return h;
    }
    let cell: &'static HistCell = Box::leak(Box::new(HistCell {
        name,
        unit,
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    }));
    hists.push(cell);
    cell
}

/// Intern `path` (split on `/`) under `parent` (0 = root) and return
/// the leaf id. Allocates only for paths never seen before; steady
/// state is hash lookups under a short lock. First registration of a
/// segment fixes its stability.
pub(crate) fn intern_path(parent: u32, path: &'static str, stability: Stability) -> u32 {
    let mut table = lock_recover(&registry().paths);
    let mut id = parent;
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        id = match table.ids.get(&(id, seg)) {
            Some(&found) => found,
            None => {
                let full = if id == 0 {
                    seg.to_string()
                } else {
                    format!("{}/{seg}", table.infos[(id - 1) as usize].full)
                };
                table.infos.push(PathInfo { full, stability });
                let fresh = table.infos.len() as u32;
                table.ids.insert((id, seg), fresh);
                fresh
            }
        };
    }
    id
}

thread_local! {
    static SINK: std::cell::OnceCell<Arc<SpanSink>> = const { std::cell::OnceCell::new() };
}

/// Record one finished span into this thread's ring, flushing to the
/// aggregate when the ring fills.
pub(crate) fn record_span(path: u32, ns: u64) {
    if path == 0 {
        return;
    }
    // try_with: a span dropped during thread teardown is silently lost
    // rather than panicking in a destructor.
    let _ = SINK.try_with(|cell| {
        let sink = cell.get_or_init(|| {
            let s = Arc::new(SpanSink {
                buf: Mutex::new(Vec::with_capacity(SPAN_RING)),
            });
            lock_recover(&registry().sinks).push(Arc::clone(&s));
            s
        });
        let mut buf = lock_recover(&sink.buf);
        buf.push((path, ns));
        if buf.len() >= SPAN_RING {
            flush_ring(&mut buf);
        }
    });
}

fn flush_ring(buf: &mut Vec<(u32, u64)>) {
    let mut agg = lock_recover(&registry().agg);
    for &(path, ns) in buf.iter() {
        let i = (path - 1) as usize;
        if agg.len() <= i {
            agg.resize(i + 1, SpanAgg::default());
        }
        let a = &mut agg[i];
        a.count += 1;
        a.total_ns += ns;
        a.max_ns = a.max_ns.max(ns);
    }
    buf.clear();
}

/// Drain every thread's ring into the aggregate and return the raw
/// snapshot ingredients: counters, span `(full path, stability, agg)`
/// rows, histograms.
#[allow(clippy::type_complexity)]
pub(crate) fn collect() -> (
    Vec<&'static CounterCell>,
    Vec<(String, Stability, SpanAgg)>,
    Vec<&'static HistCell>,
) {
    let sinks: Vec<Arc<SpanSink>> = lock_recover(&registry().sinks).clone();
    for sink in &sinks {
        let mut buf = lock_recover(&sink.buf);
        flush_ring(&mut buf);
    }
    let counters = lock_recover(&registry().counters).clone();
    let hists = lock_recover(&registry().hists).clone();
    let agg = lock_recover(&registry().agg).clone();
    let table = lock_recover(&registry().paths);
    let spans = agg
        .iter()
        .enumerate()
        .filter(|(_, a)| a.count > 0)
        .map(|(i, a)| {
            let info = &table.infos[i];
            (info.full.clone(), info.stability, *a)
        })
        .collect();
    (counters, spans, hists)
}

/// Zero every counter, histogram, ring, and span aggregate (interned
/// names and paths survive). For tests and examples that measure
/// distinct workloads in one process.
pub fn reset() {
    use std::sync::atomic::Ordering::Relaxed;
    let reg = registry();
    for sink in lock_recover(&reg.sinks).iter() {
        lock_recover(&sink.buf).clear();
    }
    for a in lock_recover(&reg.agg).iter_mut() {
        *a = SpanAgg::default();
    }
    for c in lock_recover(&reg.counters).iter() {
        c.value.store(0, Relaxed);
    }
    for h in lock_recover(&reg.hists).iter() {
        for b in &h.buckets {
            b.store(0, Relaxed);
        }
        h.count.store(0, Relaxed);
        h.sum.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_child_paths_intern_identically() {
        let a = intern_path(0, "t/x/y", Stability::Stable);
        let t = intern_path(0, "t", Stability::Stable);
        let x = intern_path(t, "x", Stability::Stable);
        let y = intern_path(x, "y", Stability::Stable);
        assert_eq!(a, y);
        let table = lock_recover(&registry().paths);
        assert_eq!(table.infos[(y - 1) as usize].full, "t/x/y");
    }
}
