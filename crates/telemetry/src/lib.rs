//! Zero-overhead-when-off observability: tracing spans, monotonic
//! counters, and fixed-bucket latency histograms for the whole workspace.
//!
//! # Model
//!
//! Three instrument kinds, all process-wide and registered lazily on
//! first use:
//!
//! - **Spans** measure wall-clock intervals. [`span()`] (or the
//!   [`span!`] macro) starts one and returns a [`SpanGuard`] that
//!   records its duration on drop; [`SpanGuard::child`] derives a
//!   hierarchical path from the parent's path
//!   (`span!("train_step").child("prebuild")` records under
//!   `train_step/prebuild`). Paths are **explicit** — derived from the
//!   handle, never from an ambient thread-local stack — so a span
//!   recorded on a pool worker gets the same path as the same span
//!   recorded inline on the caller's thread. Finished spans land in a
//!   per-thread ring buffer of 256 entries and are flushed to the
//!   process-wide registry when the ring fills or a snapshot is taken.
//! - **Counters** ([`Counter`]) are monotonic `AtomicU64` adds.
//! - **Histograms** ([`Histogram`]) are fixed power-of-two buckets of
//!   `AtomicU64` (48 buckets covering `[0, 2^47)` ns ≈ 1.6 days);
//!   quantiles are **nearest-rank** over the bucket counts, reported as
//!   the matched bucket's upper bound. [`LocalHistogram`] is the same
//!   bucket/quantile machinery as a plain unsynchronized value for
//!   callers that aggregate privately (e.g. per-cell serving latency in
//!   `adept_bench::sweep`) — it records regardless of [`enabled`].
//!
//! [`snapshot`] drains every thread's ring and returns a
//! [`TelemetrySnapshot`] with two renders: a **deterministic** section
//! (stable counters and span *counts* — no durations) that the CI
//! determinism job diffs across `ONN_THREADS` legs, and a **timing**
//! section (durations, quantiles, volatile counters) that is
//! machine-dependent by nature.
//!
//! # Determinism contract
//!
//! Every instrument declares a [`Stability`]:
//!
//! - `Stable` instruments count *logical* events whose totals are
//!   identical at any `ONN_THREADS` (training steps, weights recorded,
//!   plan batches, requests served). Only these appear in
//!   [`TelemetrySnapshot::render_deterministic`].
//! - `Volatile` instruments count *scheduling* events that legitimately
//!   differ with thread count (pool jobs spawned, steals, span replays —
//!   `backward_parallel` falls back to the serial sweep at one thread).
//!   They render only in the timing section.
//!
//! Durations are always machine-dependent and never appear in the
//! deterministic render.
//!
//! # `ONN_TELEMETRY` grammar
//!
//! Same validated parse family as `ONN_THREADS`: unset, empty, or `0`
//! disables telemetry; any positive integer enables it; anything else
//! panics naming the variable. The flag is read once and cached.
//! [`set_enabled`] overrides it programmatically (tests and benches,
//! which cannot re-read the environment mid-process).
//!
//! # Cost when disabled
//!
//! Every entry point checks one relaxed atomic load and returns: no
//! `Instant::now()`, no thread-local access, and **zero heap
//! allocations** — the warm serving path stays allocation-free with
//! telemetry off, pinned by `tests/compiled_inference.rs` under a
//! counting global allocator.

mod metrics;
mod registry;
mod snapshot;
mod span;
pub mod sync;

pub use metrics::{Counter, Histogram, LocalHistogram, Unit};
pub use registry::{reset, Stability};
pub use snapshot::{snapshot, CounterStat, HistogramStat, SpanStat, TelemetrySnapshot};
pub use span::{span, span_volatile, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialised, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is telemetry recording? One relaxed load on the hot path; the
/// `ONN_TELEMETRY` parse happens once, on the first query.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let raw = std::env::var("ONN_TELEMETRY").ok();
    let on = parse_flag("ONN_TELEMETRY", raw.as_deref());
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatic override of the `ONN_TELEMETRY` decision, for tests,
/// benches, and examples that cannot set the environment before the
/// flag is first read. Spans already in flight on other threads keep
/// recording; new entry points see the change immediately.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Strict flag parse, same family as `ONN_THREADS`: unset/empty/`0` =
/// off, any positive integer = on, anything else panics naming `name`.
fn parse_flag(name: &str, raw: Option<&str>) -> bool {
    let Some(raw) = raw else { return false };
    let raw = raw.trim();
    if raw.is_empty() {
        return false;
    }
    match raw.parse::<usize>() {
        Ok(n) => n > 0,
        Err(_) => panic!(
            "invalid {name}={raw:?}: expected a non-negative integer (0, empty or unset = off)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_grammar_matches_onn_threads_family() {
        assert!(!parse_flag("T", None));
        assert!(!parse_flag("T", Some("")));
        assert!(!parse_flag("T", Some("  ")));
        assert!(!parse_flag("T", Some("0")));
        assert!(parse_flag("T", Some("1")));
        assert!(parse_flag("T", Some(" 8 ")));
    }

    #[test]
    #[should_panic(expected = "invalid ONN_TELEMETRY=\"yes\"")]
    fn flag_junk_panics_naming_the_variable() {
        parse_flag("ONN_TELEMETRY", Some("yes"));
    }
}
