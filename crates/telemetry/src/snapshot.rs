//! Snapshot of every registered instrument, with the two renders the
//! workspace consumes: a deterministic count section (CI-diffable) and
//! a machine-dependent timing section.

use crate::metrics::{bucket_quantile, Unit};
use crate::registry::{collect, Stability};
use std::fmt::Write as _;

/// One counter's state at snapshot time.
pub struct CounterStat {
    pub name: String,
    pub value: u64,
    pub stability: Stability,
}

/// One span path's aggregate at snapshot time.
pub struct SpanStat {
    /// Full `/`-separated path, e.g. `train_step/prebuild`.
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub stability: Stability,
}

/// One histogram's state at snapshot time.
pub struct HistogramStat {
    pub name: String,
    pub unit: Unit,
    pub count: u64,
    pub sum: u64,
    buckets: Vec<u64>,
}

impl HistogramStat {
    /// Nearest-rank quantile (`p` in percent) over the bucket counts,
    /// as the matched bucket's upper bound.
    pub fn quantile(&self, p: f64) -> u64 {
        bucket_quantile(&self.buckets, self.count, p)
    }
}

/// Everything recorded so far. Obtain via [`snapshot`]; instruments are
/// sorted by name/path so renders are independent of registration
/// order (which is scheduling-dependent).
pub struct TelemetrySnapshot {
    pub counters: Vec<CounterStat>,
    pub spans: Vec<SpanStat>,
    pub histograms: Vec<HistogramStat>,
}

/// Drain every thread's span ring and snapshot all instruments.
pub fn snapshot() -> TelemetrySnapshot {
    let (counters, spans, hists) = collect();
    let mut counters: Vec<CounterStat> = counters
        .iter()
        .map(|c| CounterStat {
            name: c.name.to_string(),
            value: c.value.load(std::sync::atomic::Ordering::Relaxed),
            stability: c.stability,
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut spans: Vec<SpanStat> = {
        // Merge rows whose full paths coincide (a literal `a/b` and a
        // `child("b")` of `a` intern to the same id, but defend anyway).
        let mut merged: std::collections::BTreeMap<String, SpanStat> = Default::default();
        for (path, stability, agg) in spans {
            let e = merged.entry(path.clone()).or_insert(SpanStat {
                path,
                count: 0,
                total_ns: 0,
                max_ns: 0,
                stability,
            });
            e.count += agg.count;
            e.total_ns += agg.total_ns;
            e.max_ns = e.max_ns.max(agg.max_ns);
        }
        merged.into_values().collect()
    };
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let mut histograms: Vec<HistogramStat> = hists
        .iter()
        .map(|h| {
            use std::sync::atomic::Ordering::Relaxed;
            HistogramStat {
                name: h.name.to_string(),
                unit: h.unit,
                count: h.count.load(Relaxed),
                sum: h.sum.load(Relaxed),
                buckets: h.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            }
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    TelemetrySnapshot {
        counters,
        spans,
        histograms,
    }
}

/// `123ns` / `12.3µs` / `4.56ms` / `1.23s`.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl TelemetrySnapshot {
    /// The deterministic section: stable counters and stable span
    /// **counts** only — byte-identical at any `ONN_THREADS` for a
    /// deterministic workload, which is exactly what the CI determinism
    /// job diffs across thread legs.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::from("== telemetry: deterministic counts ==\n");
        for c in self
            .counters
            .iter()
            .filter(|c| c.stability == Stability::Stable)
        {
            writeln!(out, "counter {} = {}", c.name, c.value).unwrap();
        }
        for s in self
            .spans
            .iter()
            .filter(|s| s.stability == Stability::Stable)
        {
            writeln!(out, "span {} count={}", s.path, s.count).unwrap();
        }
        out
    }

    /// The timing section: every span with durations, volatile
    /// counters, and histogram quantiles. Machine-dependent; goes to
    /// stderr in the examples, never into a CI diff.
    pub fn render_timing(&self) -> String {
        let mut out = String::from("== telemetry: timing (machine-dependent) ==\n");
        for s in &self.spans {
            writeln!(
                out,
                "span {} count={} total={} max={}{}",
                s.path,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns),
                if s.stability == Stability::Volatile {
                    " [volatile]"
                } else {
                    ""
                }
            )
            .unwrap();
        }
        for c in self
            .counters
            .iter()
            .filter(|c| c.stability == Stability::Volatile)
        {
            writeln!(out, "counter {} = {} [volatile]", c.name, c.value).unwrap();
        }
        for h in &self.histograms {
            match h.unit {
                Unit::Nanos => writeln!(
                    out,
                    "hist {} count={} p50={} p99={} mean={}",
                    h.name,
                    h.count,
                    fmt_ns(h.quantile(50.0)),
                    fmt_ns(h.quantile(99.0)),
                    fmt_ns(h.sum.checked_div(h.count).unwrap_or(0)),
                )
                .unwrap(),
                Unit::Count => writeln!(
                    out,
                    "hist {} count={} p50={} p99={} sum={}",
                    h.name,
                    h.count,
                    h.quantile(50.0),
                    h.quantile(99.0),
                    h.sum,
                )
                .unwrap(),
            }
        }
        out
    }

    /// Both sections.
    pub fn render(&self) -> String {
        format!("{}{}", self.render_deterministic(), self.render_timing())
    }

    /// A JSON-ish dump of everything (counters, spans with durations,
    /// histogram quantiles). Hand-rolled like the bench exporters — the
    /// workspace has no JSON dependency.
    pub fn to_json(&self) -> String {
        fn stab(s: Stability) -> &'static str {
            match s {
                Stability::Stable => "stable",
                Stability::Volatile => "volatile",
            }
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            write!(
                out,
                "{}\n    \"{}\": {{\"value\": {}, \"stability\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                c.name,
                c.value,
                stab(c.stability)
            )
            .unwrap();
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            write!(
                out,
                "{}\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"stability\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                s.path,
                s.count,
                s.total_ns,
                s.max_ns,
                stab(s.stability)
            )
            .unwrap();
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            write!(
                out,
                "{}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                if i == 0 { "" } else { "," },
                h.name,
                h.count,
                h.sum,
                h.quantile(50.0),
                h.quantile(99.0)
            )
            .unwrap();
        }
        out.push_str("\n  }\n}\n");
        out
    }
}
