//! Poison-recovering lock helpers, shared workspace-wide.
//!
//! A panic while holding a `Mutex` poisons it; for the locks in this
//! workspace (pool queues, tape-segment slots, serving queues, telemetry
//! sinks) the protected state is either plain data that is valid at
//! every suspension point or is re-validated by the caller, so the
//! correct response to poison is to keep going with the inner guard
//! rather than propagate a second panic and widen the blast radius.
//! `infer::serve` introduced this idiom for the serving queue; these
//! helpers make it uniform instead of an inline
//! `unwrap_or_else(|e| e.into_inner())` at every site.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
#[inline]
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait` with the same poison recovery as [`lock_recover`].
#[inline]
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait_timeout` with the same poison recovery.
#[inline]
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_poisoned_mutex() {
        let m = Mutex::new(7usize);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 9;
        assert_eq!(*lock_recover(&m), 9);
    }
}
