//! Elementwise operations, axis reductions and operator overloads.

use crate::shape::{broadcast_shapes, Shape};
use crate::tensor::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor::from_parts(
            self.as_slice().iter().map(|&x| f(x)).collect(),
            self.shape.clone(),
        )
    }

    /// Applies `f` to every element in place (copy-on-write).
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with NumPy-style broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip_broadcast(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        if self.shape == other.shape {
            let data = self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Tensor::from_parts(data, self.shape.clone());
        }
        let out_dims = broadcast_shapes(self.shape(), other.shape()).unwrap_or_else(|| {
            panic!(
                "cannot broadcast {} with {}",
                self.shape_obj(),
                other.shape_obj()
            )
        });
        let out_shape = Shape::new(&out_dims);
        let mut out = Tensor::zeros(&out_dims);
        let rank = out_dims.len();
        let strides = out_shape.strides();
        let a_dims = pad_dims(self.shape(), rank);
        let b_dims = pad_dims(other.shape(), rank);
        let a_strides = padded_strides(self.shape(), rank);
        let b_strides = padded_strides(other.shape(), rank);
        let lhs = self.as_slice();
        let rhs = other.as_slice();
        let dst = out.as_mut_slice();
        for (flat, slot) in dst.iter_mut().enumerate() {
            let mut a_off = 0;
            let mut b_off = 0;
            for d in 0..rank {
                let i = (flat / strides[d]) % out_dims[d];
                if a_dims[d] != 1 {
                    a_off += i * a_strides[d];
                }
                if b_dims[d] != 1 {
                    b_off += i * b_strides[d];
                }
            }
            *slot = f(lhs[a_off], rhs[b_off]);
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f64
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.as_slice()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.as_slice()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let data = self.as_slice();
        let mut best = 0;
        for i in 1..data.len() {
            if data[i] > data[best] {
                best = i;
            }
        }
        best
    }

    /// Sums a matrix along an axis: `axis == 0` collapses rows (output length
    /// = #cols), `axis == 1` collapses columns (output length = #rows).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `axis > 1`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis expects a matrix");
        assert!(axis < 2, "axis must be 0 or 1");
        let (r, c) = (self.shape()[0], self.shape()[1]);
        let data = self.as_slice();
        if axis == 0 {
            let mut out = vec![0.0; c];
            for i in 0..r {
                for j in 0..c {
                    out[j] += data[i * c + j];
                }
            }
            Tensor::from_vec(out, &[c])
        } else {
            let mut out = vec![0.0; r];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = data[i * c..(i + 1) * c].iter().sum();
            }
            Tensor::from_vec(out, &[r])
        }
    }

    /// Transposes a matrix (materialized; see [`Tensor::t_view`] for the
    /// zero-copy variant).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        self.t_view().materialize()
    }

    /// Adds `scale * other` into `self` in place (same shape).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        // Copy-on-write detaches `self` first, so even a storage-sharing
        // `other` is read from the untouched original allocation.
        let dst = self.as_mut_slice();
        for (a, &b) in dst.iter_mut().zip(other.as_slice()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s` in place (copy-on-write).
    pub fn scale_inplace(&mut self, s: f64) {
        for x in self.as_mut_slice() {
            *x *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f64::abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f64::exp)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f64::sqrt)
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Squared Frobenius norm (sum of squares).
    pub fn sq_norm(&self) -> f64 {
        self.as_slice().iter().map(|x| x * x).sum()
    }

    /// Frobenius / Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }
}

fn pad_dims(dims: &[usize], rank: usize) -> Vec<usize> {
    let mut out = vec![1usize; rank];
    out[rank - dims.len()..].copy_from_slice(dims);
    out
}

fn padded_strides(dims: &[usize], rank: usize) -> Vec<usize> {
    let padded = pad_dims(dims, rank);
    Shape::new(&padded).strides()
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_broadcast(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f64> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f64) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f64], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, -3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((&b / &a).as_slice(), &[3.0, 2.5]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn broadcasting_row_and_col() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(&[10.0, 20.0, 30.0], &[3]);
        let got = m.zip_broadcast(&row, |a, b| a + b);
        assert_eq!(got.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let col = t(&[100.0, 200.0], &[2, 1]);
        let got = m.zip_broadcast(&col, |a, b| a + b);
        assert_eq!(got.as_slice(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn broadcast_mismatch_panics() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        let _ = &a + &b;
    }

    #[test]
    fn reductions() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.argmax(), 5);
        assert_eq!(m.sum_axis(0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_axis(1).as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mt = m.transpose();
        assert_eq!(mt.shape(), &[3, 2]);
        assert_eq!(mt.at(&[2, 1]), 6.0);
        assert_eq!(mt.transpose(), m);
    }

    #[test]
    fn norms_and_dot() {
        let a = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(&t(&[1.0, 1.0], &[2])), 7.0);
    }

    #[test]
    fn axpy_and_scaling() {
        let mut a = t(&[1.0, 1.0], &[2]);
        a.axpy(2.0, &t(&[1.0, 3.0], &[2]));
        assert_eq!(a.as_slice(), &[3.0, 7.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.as_slice(), &[1.5, 3.5]);
    }
}
