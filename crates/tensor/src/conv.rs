//! Convolution lowering: `im2col` / `col2im` for NCHW tensors.
//!
//! Convolutions in the ADEPT stack are lowered to GEMM so that the photonic
//! tensor cores (which physically implement matrix–vector products) can run
//! them. `im2col` unrolls input patches into a matrix; `col2im` is its
//! adjoint, used by the convolution backward pass.

use crate::element::Element;
use crate::tensor::Tensor;

/// Static geometry of a 2-D convolution (NCHW, square stride/padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit into the padded input.
    pub fn out_h(&self) -> usize {
        let padded = self.in_h + 2 * self.padding;
        assert!(padded >= self.kernel, "kernel taller than padded input");
        (padded - self.kernel) / self.stride + 1
    }

    /// Output width after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit into the padded input.
    pub fn out_w(&self) -> usize {
        let padded = self.in_w + 2 * self.padding;
        assert!(padded >= self.kernel, "kernel wider than padded input");
        (padded - self.kernel) / self.stride + 1
    }

    /// Rows of the `im2col` matrix: `in_channels * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the `im2col` matrix for a batch of `n`:
    /// `n * out_h * out_w`.
    pub fn col_cols(&self, batch: usize) -> usize {
        batch * self.out_h() * self.out_w()
    }
}

/// Unrolls an NCHW batch into a `(C·k·k) × (N·out_h·out_w)` patch matrix.
///
/// Column `n·(out_h·out_w) + oy·out_w + ox` holds the receptive field of
/// output pixel `(oy, ox)` of sample `n`, flattened channel-major.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its dimensions disagree with `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    let mut out = Tensor::default();
    im2col_into(input, geom, &mut out);
    out
}

/// [`im2col`] into a caller-provided buffer, reusing its allocation.
///
/// When `out` already has the right shape *and* exclusively owns its
/// storage, the unroll writes in place — no allocation at all. Training
/// loops exploit this by keeping one scratch tensor per convolution layer:
/// the tape's handle on the previous step's patch matrix is dropped with
/// the graph, so by the next forward pass the scratch is unique again and
/// what used to be the largest per-step allocation disappears. (A scratch
/// that is still shared — e.g. the previous tape is alive — is replaced
/// with a fresh buffer rather than copy-on-write-duplicating stale data.)
///
/// The unroll writes every element of the patch matrix exactly once
/// (zero-padded positions are written as zeros), so no separate clearing
/// pass runs on the reuse path.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its dimensions disagree with `geom`.
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut Tensor) {
    assert_eq!(input.rank(), 4, "im2col expects NCHW input");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert_eq!(c, geom.in_channels, "channel mismatch");
    assert_eq!(h, geom.in_h, "height mismatch");
    assert_eq!(w, geom.in_w, "width mismatch");
    let rows = geom.col_rows();
    let cols = geom.col_cols(n);
    // Reuse only an exactly matching, exclusively owned full-buffer window;
    // anything else (wrong shape, shared with a live tape, offset view)
    // would force a pointless copy-on-write detach of stale data.
    let reusable = out.shape() == [rows, cols]
        && out.storage_offset() == 0
        && out.data.len() == rows * cols
        && std::sync::Arc::strong_count(&out.data) == 1;
    if !reusable {
        *out = Tensor::zeros(&[rows, cols]);
    }
    im2col_slice_into(input.as_slice(), n, geom, out.as_mut_slice());
}

/// [`im2col_into`] over raw slices: unrolls a flat NCHW batch of `n`
/// samples into a pre-sized `(C·k·k) × (N·out_h·out_w)` patch matrix.
///
/// This is the allocation-free core the tensor path above delegates to;
/// the compiled inference engine (`adept-infer`) calls it directly on its
/// preallocated plan scratch, so warm-path convolutions never touch a
/// `Tensor`. Generic over the element dtype so f32 inference plans unroll
/// their f32 slabs with the same code. Every element of `dst` is written
/// exactly once (zero-padded positions included), and the write order is
/// identical to the tensor path — the resulting patch matrix is
/// bit-identical per dtype.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `n` and `geom`.
pub fn im2col_slice_into<T: Element>(src: &[T], n: usize, geom: &Conv2dGeometry, dst: &mut [T]) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    assert_eq!(src.len(), n * c * h * w, "input length mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let cols = geom.col_cols(n);
    assert_eq!(dst.len(), geom.col_rows() * cols, "patch matrix mismatch");
    let k = geom.kernel;
    for ni in 0..n {
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ci * k * k + ky * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        let col0 = row * cols + ni * oh * ow + oy * ow;
                        if iy < 0 || iy >= h as isize {
                            dst[col0..col0 + ow].fill(T::ZERO);
                            continue;
                        }
                        let src_row = &src[((ni * c + ci) * h + iy as usize) * w..][..w];
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            dst[col0 + ox] = if ix < 0 || ix >= w as isize {
                                T::ZERO
                            } else {
                                src_row[ix as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters a patch matrix back into an NCHW tensor,
/// accumulating where patches overlap.
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for `geom` and `batch`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry, batch: usize) -> Tensor {
    assert_eq!(cols.rank(), 2, "col2im expects a matrix");
    assert_eq!(cols.shape()[0], geom.col_rows(), "row count mismatch");
    assert_eq!(cols.shape()[1], geom.col_cols(batch), "col count mismatch");
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Tensor::zeros(&[batch, c, h, w]);
    let dst = out.as_mut_slice();
    let src = cols.as_slice();
    let k = geom.kernel;
    let ncols = geom.col_cols(batch);
    for ni in 0..batch {
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ci * k * k + ky * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = ni * oh * ow + oy * ow + ox;
                            dst[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                src[row * ncols + col];
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(3, 28, 28, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
        let g = geom(1, 28, 28, 5, 1, 2);
        assert_eq!((g.out_h(), g.out_w()), (28, 28));
        let g = geom(1, 8, 8, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 just flattens the image.
        let g = geom(2, 3, 3, 1, 1, 0);
        let x = Tensor::linspace(0.0, 17.0, 18).reshape(&[1, 2, 3, 3]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.row(0).as_slice(), &x.as_slice()[..9]);
        assert_eq!(cols.row(1).as_slice(), &x.as_slice()[9..]);
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        // Direct sliding-window conv must equal weight-matrix times im2col.
        let g = geom(2, 5, 5, 3, 1, 1);
        let x = Tensor::from_vec(
            (0..50)
                .map(|i| ((i * 17 % 23) as f64 - 11.0) / 7.0)
                .collect(),
            &[1, 2, 5, 5],
        );
        let wt = Tensor::from_vec(
            (0..2 * 2 * 9)
                .map(|i| ((i * 13 % 19) as f64 - 9.0) / 5.0)
                .collect(),
            &[2, 18],
        );
        let cols = im2col(&x, &g);
        let y = wt.matmul(&cols); // [2, 25]
                                  // Direct computation for a few output pixels.
        let direct = |oc: usize, oy: usize, ox: usize| -> f64 {
            let mut s = 0.0;
            for ci in 0..2 {
                for ky in 0..3 {
                    for kx in 0..3 {
                        let iy = oy as isize + ky as isize - 1;
                        let ix = ox as isize + kx as isize - 1;
                        if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
                            continue;
                        }
                        s += wt.at(&[oc, ci * 9 + ky * 3 + kx])
                            * x.at(&[0, ci, iy as usize, ix as usize]);
                    }
                }
            }
            s
        };
        for &(oc, oy, ox) in &[(0, 0, 0), (0, 2, 3), (1, 4, 4), (1, 1, 0)] {
            assert!(
                (y.at(&[oc, oy * 5 + ox]) - direct(oc, oy, ox)).abs() < 1e-10,
                "mismatch at ({oc},{oy},{ox})"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the conv backward pass relies on.
        let g = geom(2, 6, 6, 3, 2, 1);
        let x = Tensor::from_vec(
            (0..72)
                .map(|i| ((i * 29 % 31) as f64 - 15.0) / 9.0)
                .collect(),
            &[1, 2, 6, 6],
        );
        let cols = im2col(&x, &g);
        let y = Tensor::from_vec(
            (0..cols.len())
                .map(|i| ((i * 41 % 37) as f64 - 18.0) / 11.0)
                .collect(),
            cols.shape(),
        );
        let lhs = cols.dot(&y);
        let back = col2im(&y, &g, 1);
        let rhs = x.dot(&back);
        assert!(
            (lhs - rhs).abs() < 1e-9,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn im2col_into_reuses_and_matches() {
        let g = geom(2, 6, 6, 3, 2, 1);
        let x1 = Tensor::linspace(-1.0, 1.0, 72).reshape(&[1, 2, 6, 6]);
        let x2 = Tensor::linspace(2.0, -2.0, 72).reshape(&[1, 2, 6, 6]);
        let mut buf = Tensor::default();
        im2col_into(&x1, &g, &mut buf);
        assert_eq!(buf, im2col(&x1, &g));
        // Second call reuses the exact same allocation. (Compare raw data
        // pointers — holding an Arc handle would force a COW detach.)
        let ptr = buf.as_slice().as_ptr() as usize;
        im2col_into(&x2, &g, &mut buf);
        assert_eq!(ptr, buf.as_slice().as_ptr() as usize);
        assert_eq!(buf, im2col(&x2, &g));
        // Stale values from the previous step must not leak through the
        // zero-padded positions.
        assert_eq!(buf.at(&[0, 0]), 0.0, "padding corner must be re-zeroed");
    }

    #[test]
    fn batch_handling() {
        let g = geom(1, 4, 4, 2, 2, 0);
        let x = Tensor::linspace(0.0, 31.0, 32).reshape(&[2, 1, 4, 4]);
        let cols = im2col(&x, &g);
        assert_eq!(cols.shape(), &[4, 8]);
        // First column = top-left patch of sample 0: pixels (0,0),(0,1),(1,0),(1,1).
        assert_eq!(cols.col(0).as_slice(), &[0.0, 1.0, 4.0, 5.0]);
        // Fifth column = top-left patch of sample 1.
        assert_eq!(cols.col(4).as_slice(), &[16.0, 17.0, 20.0, 21.0]);
    }
}
