//! A shared scoped thread pool for GEMM partitions and weight-build jobs.
//!
//! The original kernels spawned fresh OS threads through
//! [`std::thread::scope`] on *every* parallel GEMM — tens of thousands of
//! spawns per training epoch. This module keeps one process-wide pool of
//! persistent workers and gives callers the same scoped-borrow ergonomics:
//!
//! ```
//! let mut parts = vec![0u64; 4];
//! adept_tensor::pool::scope(|s| {
//!     for (i, p) in parts.iter_mut().enumerate() {
//!         s.spawn(move || *p = i as u64 + 1);
//!     }
//! });
//! assert_eq!(parts, [1, 2, 3, 4]);
//! ```
//!
//! # Help-while-wait (deadlock freedom under nesting)
//!
//! Jobs may themselves open scopes (a weight-build job fans out its U- and
//! V-mesh sub-tape builds; each of those runs pooled GEMM sweeps). A naive
//! pool would deadlock once every worker blocks in a nested join. Here a
//! thread waiting on its scope *helps*: it pops queued tasks (newest first,
//! so nested sub-jobs run before unrelated top-level work) and executes
//! them inline until its own jobs finish. Any blocked thread therefore
//! either finds runnable work or its dependencies are already running on
//! another thread — progress is guaranteed with any worker count, including
//! zero.
//!
//! # Determinism
//!
//! The pool never influences numerical results: tasks write disjoint
//! outputs, and every GEMM partition accumulates each output element in the
//! same k-order regardless of how tasks land on threads (see
//! the GEMM partitioners in `matmul`). Which thread runs a task is the *only*
//! nondeterminism, and it is unobservable in the outputs — the property the
//! root `parallel_build` suite pins bit-for-bit.
//!
//! # Thread-count configuration
//!
//! The auto thread count honours the `ONN_THREADS` environment variable
//! (read once), falling back to [`std::thread::available_parallelism`]
//! capped at 8, and bounds both partition granularity and the pool size.
//! `0`, empty and unset mean "auto"; any other non-integer value panics at
//! first use, so a typo'd override can never silently run at auto count.
//! With `ONN_THREADS=1` every *auto-threaded* path degrades to the calling
//! thread (code that pins an explicit count via `set_gemm_threads` — some
//! tests and benches — still runs pooled). CI runs the suite under
//! `ONN_THREADS=1` and default; any output divergence is a determinism
//! regression.
//!
//! # Telemetry
//!
//! With `ONN_TELEMETRY` on, the pool reports volatile counters (jobs
//! spawned, worker vs. helper task runs, worker busy/idle nanoseconds)
//! and a queue-depth histogram. All of them are scheduling-dependent by
//! nature — `schedule_segments` spawns nothing at one thread — so they
//! render only in the snapshot's timing section, never in the
//! deterministic diff.

use adept_telemetry::sync::{lock_recover, wait_recover, wait_timeout_recover};
use adept_telemetry::{Counter, Histogram};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Scheduling-dependent instruments (timing section only).
static JOBS_SPAWNED: Counter = Counter::volatile("pool.jobs_spawned");
static WORKER_RUNS: Counter = Counter::volatile("pool.worker_runs");
static HELPER_RUNS: Counter = Counter::volatile("pool.helper_runs");
static WORKER_BUSY_NS: Counter = Counter::volatile("pool.worker_busy_ns");
static WORKER_IDLE_NS: Counter = Counter::volatile("pool.worker_idle_ns");
static QUEUE_DEPTH: Histogram = Histogram::counts("pool.queue_depth");

type Task = Box<dyn FnOnce() + Send>;
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Completion latch of one spawned job.
struct JobState {
    state: Mutex<JobDone>,
    cv: Condvar,
}

struct JobDone {
    finished: bool,
    panic: Option<PanicPayload>,
}

impl JobState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(JobDone {
                finished: false,
                panic: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn finish(&self, panic: Option<PanicPayload>) {
        let mut st = lock_recover(&self.state);
        st.finished = true;
        st.panic = panic;
        self.cv.notify_all();
    }
}

/// The process-wide queue shared by workers and helping joiners.
struct Shared {
    queue: Mutex<VecDeque<(Task, Arc<JobState>)>>,
    cv: Condvar,
}

impl Shared {
    /// Pops the newest task (helpers prioritize nested sub-jobs).
    fn pop_back(&self) -> Option<(Task, Arc<JobState>)> {
        lock_recover(&self.queue).pop_back()
    }

    fn push(&self, task: Task, state: Arc<JobState>) {
        let depth = {
            let mut queue = lock_recover(&self.queue);
            queue.push_back((task, state));
            queue.len()
        };
        JOBS_SPAWNED.incr();
        QUEUE_DEPTH.record(depth as u64);
        self.cv.notify_one();
    }
}

fn run_task(task: Task, state: &JobState) {
    let result = catch_unwind(AssertUnwindSafe(task));
    state.finish(result.err());
}

/// Number of persistent workers: one less than the configured parallelism
/// (the scope owner always helps), at least one so pinned thread-count
/// tests exercise real cross-thread execution everywhere. `ONN_THREADS`
/// bounds the pool itself, not just chunk counts, so `ONN_THREADS=2` on a
/// shared box keeps roughly two threads busy no matter how many jobs a
/// scheduler fans out. (Runtime `set_gemm_threads` overrides affect only
/// partition granularity — the pool is sized once at first use.)
fn worker_count() -> usize {
    auto_threads().saturating_sub(1).max(1)
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    let mut spawn_workers = false;
    let shared = SHARED.get_or_init(|| {
        spawn_workers = true;
        Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    });
    if spawn_workers {
        for i in 0..worker_count() {
            std::thread::Builder::new()
                .name(format!("adept-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
    }
    shared
}

fn worker_loop(shared: &'static Shared) {
    loop {
        let idle_from = adept_telemetry::enabled().then(Instant::now);
        let task = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(t) = queue.pop_front() {
                    break t;
                }
                queue = wait_recover(&shared.cv, queue);
            }
        };
        if let Some(t0) = idle_from {
            WORKER_IDLE_NS.add(t0.elapsed().as_nanos() as u64);
        }
        let busy_from = adept_telemetry::enabled().then(Instant::now);
        WORKER_RUNS.incr();
        run_task(task.0, &task.1);
        if let Some(t0) = busy_from {
            WORKER_BUSY_NS.add(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Parses one numeric environment override. `0` and empty mean "not
/// configured" (auto); anything unparsable panics with the variable name,
/// so a typo'd `ONN_THREADS=two` (or a negative count) fails the run
/// loudly instead of silently falling back to the auto thread count — the
/// CI determinism job depends on the configured value actually applying.
pub(crate) fn parse_env_count(name: &str, raw: &str) -> Option<usize> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(_) => panic!(
            "invalid {name}={raw:?}: expected a non-negative integer (0, empty or unset = auto)"
        ),
    }
}

/// Reads `ONN_THREADS` once. `0`, empty or unset mean "not configured";
/// any other non-integer value panics (see [`parse_env_count`]).
pub(crate) fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_THREADS")
            .ok()
            .and_then(|v| parse_env_count("ONN_THREADS", &v))
    })
}

/// Reads `ONN_WIDE_COLS` once — the column-block width override of the
/// wide-GEMM ragged sweep (see `crate::matmul`) — through the same
/// validated parse as `ONN_THREADS`.
pub(crate) fn env_wide_cols() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_WIDE_COLS")
            .ok()
            .and_then(|v| parse_env_count("ONN_WIDE_COLS", &v))
    })
}

/// Reads `ONN_SERVE_BATCH` once — the serving runtime's coalescing batch
/// size (`adept-infer`) — through the same validated parse as
/// `ONN_THREADS`: `0`, empty or unset mean "auto", typos panic.
pub fn env_serve_batch() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_SERVE_BATCH")
            .ok()
            .and_then(|v| parse_env_count("ONN_SERVE_BATCH", &v))
    })
}

/// Reads `ONN_SERVE_THREADS` once — the serving runtime's worker count
/// (`adept-infer`) — through the same validated parse as `ONN_THREADS`:
/// `0`, empty or unset mean "auto", typos panic.
pub fn env_serve_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_SERVE_THREADS")
            .ok()
            .and_then(|v| parse_env_count("ONN_SERVE_THREADS", &v))
    })
}

/// Reads `ONN_SERVE_QUEUE` once — the serving runtime's bounded pending
/// queue capacity (`adept-infer` sheds arrivals past it) — through the
/// same validated parse as `ONN_THREADS`: `0`, empty or unset mean
/// "auto", typos panic.
pub fn env_serve_queue() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_SERVE_QUEUE")
            .ok()
            .and_then(|v| parse_env_count("ONN_SERVE_QUEUE", &v))
    })
}

/// Reads `ONN_SERVE_DEADLINE_MS` once — the serving runtime's per-request
/// deadline in milliseconds (`adept-infer` times out requests still queued
/// past it) — through the same validated parse as `ONN_THREADS`: `0`,
/// empty or unset mean "no deadline", typos panic.
pub fn env_serve_deadline_ms() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("ONN_SERVE_DEADLINE_MS")
            .ok()
            .and_then(|v| parse_env_count("ONN_SERVE_DEADLINE_MS", &v))
    })
}

/// The auto thread count: `ONN_THREADS` if set, else the machine's
/// parallelism capped at 8. The single source both the GEMM partitioners
/// and the pool size derive from, so partition granularity and worker
/// count can't silently diverge.
pub(crate) fn auto_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(1)
    })
}

/// Blocks until `job` finishes, executing queued tasks while waiting
/// (newest first, so nested sub-jobs run before unrelated top-level work).
/// Does not consume the job's panic payload — that stays for the scope's
/// `join_all` to propagate.
fn help_until_finished(job: &JobState) {
    let pool = shared();
    loop {
        {
            let st = lock_recover(&job.state);
            if st.finished {
                return;
            }
        }
        // Help: run the newest queued task (nested sub-jobs first).
        if let Some((task, state)) = pool.pop_back() {
            HELPER_RUNS.incr();
            run_task(task, &state);
            continue;
        }
        // Nothing runnable: our job is executing elsewhere. The timeout
        // guards the push-after-empty-check race.
        let st = lock_recover(&job.state);
        if !st.finished {
            let _ = wait_timeout_recover(&job.cv, st, Duration::from_micros(200));
        }
    }
}

/// Completion handle of one tracked job (see [`Scope::spawn_handle`]).
///
/// Lets the spawning thread wait for — and act on the output of — a
/// *specific* job before the scope ends, which is how the weight-build
/// scheduler overlaps main-thread splicing with still-recording segments.
pub struct JobHandle(Arc<JobState>);

/// A handle for spawning borrowed jobs onto the shared pool.
///
/// All jobs spawned on a scope are joined when the scope ends (including on
/// panic), so closures may borrow from the enclosing environment exactly
/// like [`std::thread::scope`] jobs. The joining thread helps execute
/// queued tasks while it waits.
pub struct Scope<'env> {
    jobs: Vec<Arc<JobState>>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queues `f` on the shared pool.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let _ = self.spawn_handle(f);
    }

    /// Queues `f` on the shared pool and returns its completion handle,
    /// so the caller can [`Scope::wait`] on this job alone while later
    /// jobs keep running.
    pub fn spawn_handle<F>(&mut self, f: F) -> JobHandle
    where
        F: FnOnce() + Send + 'env,
    {
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the scope joins every job before `'env` ends — in
        // `scope()` on the normal path and in `Drop` during unwinding — so
        // the closure never outlives its borrows.
        let task: Task = unsafe { std::mem::transmute(task) };
        let state = JobState::new();
        self.jobs.push(state.clone());
        shared().push(task, state.clone());
        JobHandle(state)
    }

    /// Blocks until the given job finished, executing queued tasks while
    /// waiting. A panic inside the job still propagates when the scope
    /// ends, not here.
    pub fn wait(&self, handle: &JobHandle) {
        help_until_finished(&handle.0);
    }

    /// Blocks until every spawned job finished, executing queued tasks
    /// while waiting. Returns the first panic payload observed, if any.
    fn join_all(&mut self) -> Option<PanicPayload> {
        let mut first_panic = None;
        for job in self.jobs.drain(..) {
            help_until_finished(&job);
            let mut st = lock_recover(&job.state);
            if first_panic.is_none() {
                first_panic = st.panic.take();
            }
        }
        first_panic
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        // Reached only when `f` or a propagated job panic unwinds through
        // `scope()`; joining here keeps borrowed data alive until every
        // in-flight job is done. The payload is dropped — one panic is
        // already propagating.
        let _ = self.join_all();
    }
}

/// Runs `f` with a [`Scope`], joining all spawned jobs before returning.
///
/// Panics in `f` or in any job propagate to the caller after every job of
/// the scope has completed (mirroring [`std::thread::scope`] semantics).
pub fn scope<'env, R>(f: impl FnOnce(&mut Scope<'env>) -> R) -> R {
    let mut s = Scope {
        jobs: Vec::new(),
        _env: PhantomData,
    };
    let result = f(&mut s);
    if let Some(payload) = s.join_all() {
        resume_unwind(payload);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_jobs_borrow_and_join() {
        let mut out = [0usize; 16];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Depth-2 nesting with more jobs than workers: only help-while-wait
        // lets the inner joins finish.
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move || {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                let finished = &finished;
                s.spawn(|| panic!("boom"));
                for _ in 0..4 {
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(finished.load(Ordering::Relaxed), 4, "siblings still ran");
    }

    #[test]
    fn per_job_wait_streams_results_in_spawn_order() {
        // The streaming consumer of the weight-build scheduler: wait on
        // job i, read its slot, move to job i+1 — all before the scope
        // ends, while later jobs may still be running.
        let slots: Vec<Mutex<Option<usize>>> = (0..6).map(|_| Mutex::new(None)).collect();
        let mut consumed = Vec::new();
        scope(|s| {
            let handles: Vec<JobHandle> = slots
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    s.spawn_handle(move || {
                        *lock_recover(slot) = Some(i * i);
                    })
                })
                .collect();
            for (i, h) in handles.iter().enumerate() {
                s.wait(h);
                let got = lock_recover(&slots[i])
                    .take()
                    .expect("job finished before wait returned");
                consumed.push(got);
            }
        });
        assert_eq!(consumed, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn env_threads_parse_contract() {
        // Can't set the env var (OnceLock cache + other tests), but the
        // cached value must be a positive count or None.
        if let Some(n) = env_threads() {
            assert!(n > 0);
        }
    }

    #[test]
    fn env_count_parser_accepts_auto_and_positive_values() {
        assert_eq!(parse_env_count("ONN_THREADS", "0"), None, "0 = auto");
        assert_eq!(parse_env_count("ONN_THREADS", ""), None, "empty = auto");
        assert_eq!(parse_env_count("ONN_THREADS", "  "), None);
        assert_eq!(parse_env_count("ONN_THREADS", "1"), Some(1));
        assert_eq!(parse_env_count("ONN_THREADS", " 8 "), Some(8));
    }

    #[test]
    #[should_panic(expected = "invalid ONN_THREADS=\"two\"")]
    fn env_count_parser_rejects_words() {
        // Regression: an unparsable override used to silently mean "auto",
        // so a typo'd CI determinism job ran at machine thread count.
        let _ = parse_env_count("ONN_THREADS", "two");
    }

    #[test]
    #[should_panic(expected = "invalid ONN_THREADS=\"-1\"")]
    fn env_count_parser_rejects_negative_counts() {
        let _ = parse_env_count("ONN_THREADS", "-1");
    }

    #[test]
    fn serving_knobs_share_the_validated_parse() {
        // The serving runtime's knobs go through the exact same contract
        // as ONN_THREADS: 0/empty/unset = auto, positive counts apply.
        assert_eq!(parse_env_count("ONN_SERVE_BATCH", "0"), None);
        assert_eq!(parse_env_count("ONN_SERVE_BATCH", ""), None);
        assert_eq!(parse_env_count("ONN_SERVE_BATCH", "16"), Some(16));
        assert_eq!(parse_env_count("ONN_SERVE_THREADS", " 4 "), Some(4));
        assert_eq!(parse_env_count("ONN_SERVE_QUEUE", "0"), None);
        assert_eq!(parse_env_count("ONN_SERVE_QUEUE", "2048"), Some(2048));
        assert_eq!(parse_env_count("ONN_SERVE_DEADLINE_MS", ""), None);
        assert_eq!(parse_env_count("ONN_SERVE_DEADLINE_MS", " 250 "), Some(250));
        if let Some(n) = env_serve_batch() {
            assert!(n > 0);
        }
        if let Some(n) = env_serve_threads() {
            assert!(n > 0);
        }
        if let Some(n) = env_serve_queue() {
            assert!(n > 0);
        }
        if let Some(n) = env_serve_deadline_ms() {
            assert!(n > 0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid ONN_SERVE_BATCH=\"fast\"")]
    fn serve_batch_typo_panics_instead_of_meaning_auto() {
        let _ = parse_env_count("ONN_SERVE_BATCH", "fast");
    }

    #[test]
    #[should_panic(expected = "invalid ONN_SERVE_THREADS=\"-2\"")]
    fn serve_threads_negative_count_panics() {
        let _ = parse_env_count("ONN_SERVE_THREADS", "-2");
    }

    #[test]
    #[should_panic(expected = "invalid ONN_SERVE_QUEUE=\"big\"")]
    fn serve_queue_typo_panics_instead_of_meaning_auto() {
        let _ = parse_env_count("ONN_SERVE_QUEUE", "big");
    }

    #[test]
    #[should_panic(expected = "invalid ONN_SERVE_DEADLINE_MS=\"1.5\"")]
    fn serve_deadline_fractional_count_panics() {
        let _ = parse_env_count("ONN_SERVE_DEADLINE_MS", "1.5");
    }
}
