//! The dtype axis of the tensor substrate: [`Element`] abstracts the
//! scalar type (`f64` or `f32`) under the GEMM microkernel, the im2col
//! lowering and the compiled-inference slabs.
//!
//! # The "training stays f64" invariant
//!
//! `f64` remains the default element type and the **only** dtype the
//! autodiff tape and the training loop ever see: [`crate::Tensor`] is an
//! alias for `TensorBase<f64>`, and nothing in the autodiff crate is
//! generic over [`Element`]. The `f32` instantiation exists purely as an
//! inference-time storage/compute mode — weights are quantized once at
//! plan-freeze time (`to_f32`) and gradients never flow through f32
//! buffers — so tape bit-determinism is structurally unthreatened by the
//! dtype axis: there is no code path on which a training-visible value
//! could round-trip through f32.
//!
//! The trait is deliberately small: arithmetic + the conversions and
//! constants the kernels need, plus [`Element::take_pack_scratch`] /
//! [`Element::put_pack_scratch`], the per-type thread-local packing
//! buffers of the register-blocked GEMM microkernel (the same
//! reuse-a-thread-local-`Vec` idiom the im2col scratch uses).

use crate::tensor::TensorBase;
use std::cell::Cell;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A scalar element type the tensor substrate can store and the GEMM
/// microkernel can compute in: `f64` (default everywhere, the only dtype
/// training sees) or `f32` (inference-only storage/compute mode).
///
/// See the [module docs](crate::element) for the "training stays f64"
/// invariant.
pub trait Element:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity (max-pool initialization).
    const NEG_INFINITY: Self;
    /// The dtype's canonical name (`"f64"` / `"f32"`), used in
    /// diagnostics and the `ONN_INFER_DTYPE` parse.
    const DTYPE_NAME: &'static str;

    /// Converts from `f64`, rounding to nearest for narrower types.
    fn from_f64(x: f64) -> Self;

    /// Widens (or passes through) to `f64`.
    fn to_f64(self) -> f64;

    /// IEEE `max` (NaN-ignoring, like `f64::max`) — the ReLU / max-pool
    /// primitive.
    fn maximum(self, other: Self) -> Self;

    /// Quantizes an `f64` tensor into this dtype. Zero-copy for `f64`
    /// itself (an `Arc` bump), one rounding pass for `f32` — this is the
    /// freeze-time weight quantization of f32 inference plans.
    fn cast_tensor(t: &TensorBase<f64>) -> TensorBase<Self>;

    /// Takes this dtype's thread-local GEMM packing buffers (A-panel,
    /// B-panel), leaving empty ones behind. Take/put rather than a
    /// `RefCell` borrow so a re-entrant taker can never panic — it just
    /// gets fresh buffers.
    fn take_pack_scratch() -> (Vec<Self>, Vec<Self>);

    /// Returns packing buffers taken with [`Element::take_pack_scratch`]
    /// so their capacity is reused by the next GEMM on this thread.
    fn put_pack_scratch(bufs: (Vec<Self>, Vec<Self>));

    /// Narrows a batch of `f64` samples into a preallocated slab of this
    /// dtype (the warm-path input conversion of f32 plans; allocates
    /// nothing).
    fn slice_from_f64(src: &[f64], dst: &mut [Self]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = Self::from_f64(s);
        }
    }

    /// Widens a slab of this dtype into `f64` (the warm-path logits
    /// conversion of f32 plans; allocates nothing).
    fn slice_to_f64(src: &[Self], dst: &mut [f64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = s.to_f64();
        }
    }
}

macro_rules! impl_element {
    ($t:ty, $name:literal, $scratch:ident, $cast:expr) => {
        thread_local! {
            static $scratch: Cell<(Vec<$t>, Vec<$t>)> =
                const { Cell::new((Vec::new(), Vec::new())) };
        }

        impl Element for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const DTYPE_NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                self.max(other)
            }

            fn cast_tensor(t: &TensorBase<f64>) -> TensorBase<Self> {
                let cast: fn(&TensorBase<f64>) -> TensorBase<Self> = $cast;
                cast(t)
            }

            fn take_pack_scratch() -> (Vec<Self>, Vec<Self>) {
                $scratch.with(Cell::take)
            }

            fn put_pack_scratch(bufs: (Vec<Self>, Vec<Self>)) {
                $scratch.with(|s| s.set(bufs));
            }
        }
    };
}

impl_element!(f64, "f64", PACK_F64, |t| t.clone());
impl_element!(f32, "f32", PACK_F32, TensorBase::<f64>::to_f32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_conversions() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f32::ONE, 1.0);
        assert_eq!(f64::DTYPE_NAME, "f64");
        assert_eq!(f32::DTYPE_NAME, "f32");
        assert_eq!(f32::from_f64(0.1).to_f64(), 0.1f32 as f64);
        assert_eq!(Element::maximum(<f64 as Element>::NEG_INFINITY, 3.0), 3.0);
    }

    #[test]
    fn pack_scratch_round_trips_capacity() {
        let (mut a, b) = f32::take_pack_scratch();
        a.resize(1024, 0.0);
        let cap = a.capacity();
        f32::put_pack_scratch((a, b));
        let (a2, _b2) = f32::take_pack_scratch();
        assert!(a2.capacity() >= cap, "capacity must be reused");
        f32::put_pack_scratch((a2, _b2));
    }

    #[test]
    fn slice_conversions_round_trip() {
        let src = [0.5f64, -1.25, 2.0];
        let mut narrow = [0.0f32; 3];
        f32::slice_from_f64(&src, &mut narrow);
        assert_eq!(narrow, [0.5f32, -1.25, 2.0]);
        let mut wide = [0.0f64; 3];
        f32::slice_to_f64(&narrow, &mut wide);
        assert_eq!(wide, src);
    }
}
