//! Matrix multiplication: cache-friendly serial kernel plus a scoped-thread
//! parallel path for large problems.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};

static GEMM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of threads used by large GEMMs.
///
/// `0` (the default) means "auto": use [`std::thread::available_parallelism`]
/// capped at 8. Small multiplications always stay on the calling thread.
pub fn set_gemm_threads(n: usize) {
    GEMM_THREADS.store(n, Ordering::Relaxed);
}

fn gemm_threads() -> usize {
    let n = GEMM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    // `available_parallelism` can be a slow syscall on some kernels;
    // query it once and cache.
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(1)
    })
}

/// `C = A · B` for row-major slices: `a` is `m×k`, `b` is `k×n`, `c` is `m×n`.
///
/// `c` is fully overwritten. The kernel uses the i-k-j loop order so the
/// inner loop streams both `b` and `c` rows; above a work threshold the rows
/// of `c` are partitioned across scoped threads.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn matmul_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer length mismatch");
    assert_eq!(c.len(), m * n, "out buffer length mismatch");
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let threads = gemm_threads();
    if threads <= 1 || flops < 2.0e6 || m < 2 {
        serial_block(a, b, c, k, n, 0, m);
        return;
    }
    let threads = threads.min(m);
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0;
        while row0 < m {
            let take = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(take * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || {
                serial_block(a, b, chunk, k, n, r0, take);
            });
            row0 += take;
        }
    });
}

/// Multiplies `rows` rows of A (starting at `row0`) into `c_chunk`.
fn serial_block(a: &[f64], b: &[f64], c_chunk: &mut [f64], k: usize, n: usize, row0: usize, rows: usize) {
    c_chunk.fill(0.0);
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let c_row = &mut c_chunk[i * n..(i + 1) * n];
        for (p, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row.iter()) {
                *cj += aip * bj;
            }
        }
    }
}

impl Tensor {
    /// Matrix product `self · rhs`.
    ///
    /// Both operands must be rank 2 with an agreeing inner dimension.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use adept_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: {m}x{k} vs {k2}x{n}"
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a matrix or dimensions disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be a matrix");
        assert_eq!(v.rank(), 1, "matvec rhs must be a vector");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let mut out = Tensor::zeros(&[m]);
        for i in 0..m {
            out.as_mut_slice()[i] = self.as_slice()[i * k..(i + 1) * k]
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::linspace(1.0, 12.0, 12).reshape(&[3, 4]);
        assert!(a.matmul(&Tensor::eye(4)).allclose(&a, 1e-12));
        assert!(Tensor::eye(3).matmul(&a).allclose(&a, 1e-12));
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::linspace(-2.0, 2.0, 6).reshape(&[2, 3]);
        let b = Tensor::linspace(0.5, 4.0, 12).reshape(&[3, 4]);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-12));
    }

    #[test]
    fn matches_naive_threaded() {
        // Large enough to cross the threading threshold.
        let m = 96;
        let k = 64;
        let n = 80;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0).collect(),
            &[k, n],
        );
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-9));
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let a = Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]);
        let v = Tensor::from_vec(vec![1.0, -1.0, 2.0], &[3]);
        let via_mm = a.matmul(&v.reshape(&[3, 1])).reshape(&[2]);
        assert!(a.matvec(&v).allclose(&via_mm, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn thread_override_roundtrip() {
        set_gemm_threads(2);
        let a = Tensor::ones(&[64, 64]);
        let b = Tensor::ones(&[64, 64]);
        let c = a.matmul(&b);
        assert!((c.at(&[0, 0]) - 64.0).abs() < 1e-12);
        set_gemm_threads(0);
    }
}
