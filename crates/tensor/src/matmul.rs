//! Matrix multiplication: a register-blocked, panel-packed microkernel
//! generic over the element dtype ([`Element`]: `f64`/`f32`), a pooled
//! parallel path, and strided/batched variants that consume [`View`]s so
//! tile extraction and assembly never materialize operands.
//!
//! Parallel partitions execute on the shared [`crate::pool`] — persistent
//! workers instead of a `thread::scope` spawn per GEMM. Every partition
//! strategy accumulates each output element in the same k-order as the
//! serial loop, so results are bit-identical across thread counts.
//!
//! # Kernel structure
//!
//! One generic tile kernel ([`gemm_tile`]) serves every entry point. Small
//! tiles run a direct scalar i-k-j loop (the reference kernel); large tiles
//! take the packed path: A is packed into `MR`-row panels and B into
//! `NR`-column panels (both p-major, reused thread-local scratch via
//! [`Element::take_pack_scratch`]), and an `MR`×`NR` register-tile
//! microkernel sweeps the panels. Both paths accumulate each output element
//! along a single ascending-k chain with the same per-element zero-skip and
//! no FMA contraction, so the packed path is **bit-identical** to the
//! scalar reference per dtype — pinned by the microkernel edge-case tests
//! and the cross-thread determinism suite.

use crate::element::Element;
use crate::tensor::Tensor;
use crate::view::View;
use std::sync::atomic::{AtomicUsize, Ordering};

static GEMM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of threads used by large GEMMs.
///
/// `0` (the default) means "auto": honour the `ONN_THREADS` environment
/// variable, else use [`std::thread::available_parallelism`] capped at 8.
/// Small multiplications always stay on the calling thread.
pub fn set_gemm_threads(n: usize) {
    GEMM_THREADS.store(n, Ordering::Relaxed);
}

/// The effective GEMM/build thread count (override, `ONN_THREADS`, or
/// auto). Exposed so the weight-build scheduler in higher crates parallels
/// the same knob the GEMM partitioners use.
pub fn gemm_thread_count() -> usize {
    gemm_threads()
}

fn gemm_threads() -> usize {
    let n = GEMM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    // `available_parallelism` can be a slow syscall on some kernels;
    // query it once and cache.
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(crate::pool::auto_threads)
}

/// Work threshold (in floating-point operations) below which GEMMs stay on
/// the calling thread.
const PAR_FLOP_THRESHOLD: f64 = 2.0e6;

/// Placement of one `m×k`/`k×n`/`m×n` operand inside a flat buffer:
/// element `(i, j)` lives at `offset + i·row_stride + j·col_stride`.
///
/// This is how [`batched_matmul_into`] addresses PTC tiles inside a large
/// weight matrix (offset = tile corner, `row_stride` = full matrix width)
/// and transposed operands (`row_stride`/`col_stride` swapped) without any
/// copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Flat offset of element `(0, 0)`.
    pub offset: usize,
    /// Elements between vertically adjacent entries.
    pub row_stride: usize,
    /// Elements between horizontally adjacent entries.
    pub col_stride: usize,
}

impl Tile {
    /// A dense row-major operand of width `cols` starting at `offset`.
    pub fn contiguous(offset: usize, cols: usize) -> Tile {
        Tile {
            offset,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// The rank-2 placement of a [`View`] (offset + row/col strides).
    ///
    /// # Panics
    ///
    /// Panics if the view is not rank 2.
    pub fn of_view(v: &View) -> Tile {
        assert_eq!(v.rank(), 2, "Tile::of_view expects a rank-2 view");
        Tile {
            offset: v.storage_offset(),
            row_stride: v.strides()[0],
            col_stride: v.strides()[1],
        }
    }

    fn max_index(&self, rows: usize, cols: usize) -> usize {
        if rows == 0 || cols == 0 {
            return self.offset;
        }
        self.offset + (rows - 1) * self.row_stride + (cols - 1) * self.col_stride
    }
}

/// Register-tile height of the packed microkernel (output rows held in
/// accumulator registers at once).
const MR: usize = 4;
/// Register-tile width of the packed microkernel (output columns held in
/// accumulator registers at once).
const NR: usize = 8;
/// k-dimension cache block: one packed B panel covers `KC` inner-dimension
/// steps. k-blocking never splits an element's accumulation chain — blocks
/// are visited in ascending order and the running value round-trips through
/// `C` between blocks, which preserves the exact f64 addition sequence.
const KC: usize = 256;
/// Row cache block of the packed A panel.
const MC: usize = 64;
/// Column cache block of the packed B panel (bounds the packing scratch to
/// `NC·KC` elements per thread).
const NC: usize = 512;
/// Minimum `m·n·k` element product for the packed path. Below it (e.g. the
/// 8×8×8 PTC tile GEMMs) packing costs more than it saves and tiles stay on
/// the direct scalar kernel.
const PACK_MIN_WORK: usize = 16 * 1024;

/// The one generic strided tile GEMM behind every entry point:
/// `C_tile = α·A_tile·B_tile`, or `C_tile += α·A_tile·B_tile` when
/// `accumulate` is set. This collapses the former `gemm_tile_raw` /
/// `gemm_tile_raw_ext` / `gemm_tile_raw_g` triple into a single kernel
/// family parameterized over [`Element`].
///
/// Large tiles take the packed register-blocked microkernel
/// ([`packed_kernel`]); small ones the direct scalar loop
/// ([`scalar_kernel`]). Both monomorphize `accumulate`/`α` so the common
/// `α = 1`/overwrite path costs nothing, and both accumulate every output
/// element along the same ascending-k chain with the same per-element
/// zero-skip — the paths are bit-identical per dtype, so the dispatch
/// threshold is purely a performance choice.
///
/// # Safety
///
/// `c` must be valid for writes over the tile's index set and no other
/// thread may concurrently touch those indices. Bounds are checked against
/// `c_len` via debug assertions only.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_tile<T: Element>(
    a: &[T],
    at: Tile,
    b: &[T],
    bt: Tile,
    c: *mut T,
    c_len: usize,
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    accumulate: bool,
) {
    debug_assert!(at.max_index(m, k) < a.len().max(1) || m * k == 0);
    debug_assert!(bt.max_index(k, n) < b.len().max(1) || k * n == 0);
    debug_assert!(ct.max_index(m, n) < c_len.max(1) || m * n == 0);
    let packed = m >= MR && n >= NR && m * n * k >= PACK_MIN_WORK;
    unsafe {
        match (accumulate, alpha == T::ONE, packed) {
            (false, true, false) => {
                scalar_kernel::<T, false, false>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (false, false, false) => {
                scalar_kernel::<T, false, true>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (true, true, false) => {
                scalar_kernel::<T, true, false>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (true, false, false) => {
                scalar_kernel::<T, true, true>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (false, true, true) => {
                packed_kernel::<T, false, false>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (false, false, true) => {
                packed_kernel::<T, false, true>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (true, true, true) => {
                packed_kernel::<T, true, false>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
            (true, false, true) => {
                packed_kernel::<T, true, true>(a, at, b, bt, c, ct, m, k, n, alpha)
            }
        }
    }
}

/// The direct scalar tile kernel — the reference the packed path must match
/// bit-for-bit. `ACC` selects accumulate-into vs overwrite, `SCALE` whether
/// `alpha` multiplies the streamed `a` element. `α` folds into `a_ip`
/// (`α·a_ip`), so `α = −1` is an exact negation.
///
/// # Safety
///
/// Same contract as [`gemm_tile`].
#[allow(clippy::too_many_arguments)]
unsafe fn scalar_kernel<T: Element, const ACC: bool, const SCALE: bool>(
    a: &[T],
    at: Tile,
    b: &[T],
    bt: Tile,
    c: *mut T,
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
) {
    let fast = bt.col_stride == 1 && ct.col_stride == 1;
    for i in 0..m {
        let c_row = ct.offset + i * ct.row_stride;
        if !ACC {
            for j in 0..n {
                unsafe {
                    *c.add(c_row + j * ct.col_stride) = T::ZERO;
                }
            }
        }
        for p in 0..k {
            let raw = a[at.offset + i * at.row_stride + p * at.col_stride];
            if raw == T::ZERO {
                continue;
            }
            let aip = if SCALE { alpha * raw } else { raw };
            let b_row = bt.offset + p * bt.row_stride;
            if fast {
                // Unit-stride inner loop: stream B and C rows.
                let b_slice = &b[b_row..b_row + n];
                for (j, &bj) in b_slice.iter().enumerate() {
                    unsafe {
                        *c.add(c_row + j) += aip * bj;
                    }
                }
            } else {
                for j in 0..n {
                    unsafe {
                        *c.add(c_row + j * ct.col_stride) += aip * b[b_row + j * bt.col_stride];
                    }
                }
            }
        }
    }
}

/// Packs the `mc`×`kc` block of A at `(ic, pc)` into `MR`-row panels,
/// p-major within each panel (`apack[panel·MR·kc + p·MR + r]`), zero-
/// padding ragged tail rows. Padding rows are skipped by the microkernel's
/// zero-test and never stored, so they cannot affect results.
fn pack_a<T: Element>(
    a: &[T],
    at: Tile,
    apack: &mut Vec<T>,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    apack.clear();
    apack.resize(panels * MR * kc, T::ZERO);
    for pi in 0..panels {
        let rows = MR.min(mc - pi * MR);
        let dst = &mut apack[pi * MR * kc..(pi + 1) * MR * kc];
        for p in 0..kc {
            let col = at.offset + (pc + p) * at.col_stride;
            for r in 0..rows {
                dst[p * MR + r] = a[col + (ic + pi * MR + r) * at.row_stride];
            }
        }
    }
}

/// Packs the `kc`×`nc` block of B at `(pc, jc)` into `NR`-column panels,
/// p-major within each panel (`bpack[panel·NR·kc + p·NR + j]`), zero-
/// padding ragged tail columns (padding accumulates into register lanes
/// that are never stored).
fn pack_b<T: Element>(
    b: &[T],
    bt: Tile,
    bpack: &mut Vec<T>,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    bpack.clear();
    bpack.resize(panels * NR * kc, T::ZERO);
    for pi in 0..panels {
        let cols = NR.min(nc - pi * NR);
        let dst = &mut bpack[pi * NR * kc..(pi + 1) * NR * kc];
        for p in 0..kc {
            let row = bt.offset + (pc + p) * bt.row_stride;
            let col0 = jc + pi * NR;
            if cols == NR && bt.col_stride == 1 {
                dst[p * NR..(p + 1) * NR].copy_from_slice(&b[row + col0..row + col0 + NR]);
            } else {
                for j in 0..cols {
                    dst[p * NR + j] = b[row + (col0 + j) * bt.col_stride];
                }
            }
        }
    }
}

/// The packed register-blocked tile kernel: panel-packs A and B into
/// thread-local scratch and sweeps `MR`×`NR` register microtiles.
///
/// Bit-identity with [`scalar_kernel`] holds because every output element
/// keeps one ascending-k accumulation chain (k-blocks visited in order,
/// register accumulators stored to `C` between blocks), the per-`(i,p)`
/// zero-skip tests the *raw* packed `a` element exactly like the scalar
/// loop, `α` folds into the same `α·a_ip` product, and no FMA contraction
/// is emitted.
///
/// # Safety
///
/// Same contract as [`gemm_tile`].
#[allow(clippy::too_many_arguments)]
unsafe fn packed_kernel<T: Element, const ACC: bool, const SCALE: bool>(
    a: &[T],
    at: Tile,
    b: &[T],
    bt: Tile,
    c: *mut T,
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
) {
    if k == 0 {
        // Degenerate inner dimension: the overwrite path must still zero C.
        if !ACC {
            for i in 0..m {
                let c_row = ct.offset + i * ct.row_stride;
                for j in 0..n {
                    unsafe {
                        *c.add(c_row + j * ct.col_stride) = T::ZERO;
                    }
                }
            }
        }
        return;
    }
    let (mut apack, mut bpack) = T::take_pack_scratch();
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        let mut first = true;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, bt, &mut bpack, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(a, at, &mut apack, ic, mc, pc, kc);
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bpanel = &bpack[(jr / NR) * NR * kc..(jr / NR + 1) * NR * kc];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let apanel = &apack[(ir / MR) * MR * kc..(ir / MR + 1) * MR * kc];
                        unsafe {
                            microkernel::<T, ACC, SCALE>(
                                apanel,
                                bpanel,
                                c,
                                ct,
                                ic + ir,
                                jc + jr,
                                mr,
                                nr,
                                kc,
                                first,
                                alpha,
                            );
                        }
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += mc;
            }
            first = false;
            pc += kc;
        }
        jc += nc;
    }
    T::put_pack_scratch((apack, bpack));
}

/// One `MR`×`NR` register microtile over a packed A panel (`MR`·`kc`,
/// p-major) and B panel (`NR`·`kc`, p-major): load-or-zero the
/// accumulators, stream `kc` rank-1 updates, store the `mr`×`nr` live
/// corner back to `C`.
///
/// # Safety
///
/// Same contract as [`gemm_tile`]; panels must hold at least `kc` p-steps.
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn microkernel<T: Element, const ACC: bool, const SCALE: bool>(
    apanel: &[T],
    bpanel: &[T],
    c: *mut T,
    ct: Tile,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc: usize,
    first: bool,
    alpha: T,
) {
    let mut acc = [[T::ZERO; NR]; MR];
    if ACC || !first {
        // Later k-blocks (and the accumulate mode) resume the running sums
        // already stored in C; a register round-trip of the partial value
        // does not change its bits.
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            let c_row = ct.offset + (row0 + r) * ct.row_stride;
            for (j, slot) in accr.iter_mut().enumerate().take(nr) {
                *slot = unsafe { *c.add(c_row + (col0 + j) * ct.col_stride) };
            }
        }
    }
    for p in 0..kc {
        let arow = &apanel[p * MR..(p + 1) * MR];
        let brow = &bpanel[p * NR..(p + 1) * NR];
        for r in 0..MR {
            let raw = arow[r];
            if raw == T::ZERO {
                continue;
            }
            let aip = if SCALE { alpha * raw } else { raw };
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] += aip * brow[j];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let c_row = ct.offset + (row0 + r) * ct.row_stride;
        for (j, &v) in accr.iter().enumerate().take(nr) {
            unsafe {
                *c.add(c_row + (col0 + j) * ct.col_stride) = v;
            }
        }
    }
}

/// Serial scalar-reference GEMM over contiguous row-major slices. The
/// baseline the microkernel benches and edge-case tests compare against;
/// not part of the supported API.
#[doc(hidden)]
pub fn gemm_scalar_ref_into<T: Element>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer length mismatch");
    assert_eq!(c.len(), m * n, "out buffer length mismatch");
    let (at, bt, ct) = (
        Tile::contiguous(0, k),
        Tile::contiguous(0, n),
        Tile::contiguous(0, n),
    );
    let p = c.as_mut_ptr();
    unsafe {
        match (accumulate, alpha == T::ONE) {
            (false, true) => scalar_kernel::<T, false, false>(a, at, b, bt, p, ct, m, k, n, alpha),
            (false, false) => scalar_kernel::<T, false, true>(a, at, b, bt, p, ct, m, k, n, alpha),
            (true, true) => scalar_kernel::<T, true, false>(a, at, b, bt, p, ct, m, k, n, alpha),
            (true, false) => scalar_kernel::<T, true, true>(a, at, b, bt, p, ct, m, k, n, alpha),
        }
    }
}

/// Serial packed-microkernel GEMM over contiguous row-major slices,
/// bypassing the size-threshold dispatch. Must be bit-identical to
/// [`gemm_scalar_ref_into`] for every shape and dtype; not part of the
/// supported API.
#[doc(hidden)]
pub fn gemm_micro_into<T: Element>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
    alpha: T,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer length mismatch");
    assert_eq!(c.len(), m * n, "out buffer length mismatch");
    let (at, bt, ct) = (
        Tile::contiguous(0, k),
        Tile::contiguous(0, n),
        Tile::contiguous(0, n),
    );
    let p = c.as_mut_ptr();
    unsafe {
        match (accumulate, alpha == T::ONE) {
            (false, true) => packed_kernel::<T, false, false>(a, at, b, bt, p, ct, m, k, n, alpha),
            (false, false) => packed_kernel::<T, false, true>(a, at, b, bt, p, ct, m, k, n, alpha),
            (true, true) => packed_kernel::<T, true, false>(a, at, b, bt, p, ct, m, k, n, alpha),
            (true, false) => packed_kernel::<T, true, true>(a, at, b, bt, p, ct, m, k, n, alpha),
        }
    }
}

/// Raw mutable pointer that may cross scoped-thread boundaries. The GEMM
/// partitioners guarantee the index sets written through it are disjoint.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// `C = A · B` for row-major slices: `a` is `m×k`, `b` is `k×n`, `c` is `m×n`.
///
/// `c` is fully overwritten. The kernel uses the i-k-j loop order so the
/// inner loop streams both `b` and `c` rows. Above a work threshold the
/// output is partitioned across scoped threads — by rows when there are
/// enough of them, by *columns* otherwise, so wide single-row GEMMs (common
/// for im2col'd convolutions with one output row) still parallelize.
///
/// Every output element is accumulated in the same k-order regardless of
/// partitioning, so results are bit-identical across thread counts.
///
/// Generic over the element dtype ([`Element`]): f64 call sites (autodiff,
/// training) infer `T = f64` unchanged; the f32 instantiation serves the
/// compiled-inference plans.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn matmul_into<T: Element>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer length mismatch");
    assert_eq!(c.len(), m * n, "out buffer length mismatch");
    gemm_dispatch(
        a,
        Tile::contiguous(0, k),
        b,
        Tile::contiguous(0, n),
        c,
        Tile::contiguous(0, n),
        m,
        k,
        n,
    );
}

/// Default output-column width of one job in the wide-GEMM ragged sweep.
/// Bounded so each job's `k × cols` B-slab stays cache-resident and the
/// flop-balanced chunker has enough granularity to fill every thread.
///
/// 512 is the winner of the `conv_forward/wide_cols_{128..2048}` sweep in
/// `BENCH_kernels.json` on the representative im2col'd conv shape
/// `[16, 144] · [144, 4096]` (majority of repeated runs on the build
/// container; 1024 occasionally ties): a `144×512` f64 B-slab (~0.56 MiB)
/// comfortably fits L2 while leaving the flop-balanced chunker enough
/// granularity to fill every thread. Chunk width never changes results
/// (bit-identical across widths, pinned by
/// `wide_sweep_is_bit_identical_across_chunk_sizes`); override per run
/// with `ONN_WIDE_COLS` / [`set_wide_gemm_cols`].
const WIDE_COL_CHUNK_DEFAULT: usize = 512;

/// Runtime override of the wide-sweep column width (0 = env/default), set
/// by [`set_wide_gemm_cols`]. Chunking only changes how the disjoint
/// output blocks are partitioned — never an element's k-order — so every
/// chunk width produces bit-identical results (pinned by the
/// `wide_sweep_is_bit_identical_across_chunk_sizes` test).
static WIDE_COLS: AtomicUsize = AtomicUsize::new(0);

/// Sets the column-block width of the wide-GEMM ragged sweep.
///
/// `0` (the default) means "auto": honour the `ONN_WIDE_COLS` environment
/// variable (validated like `ONN_THREADS`: `0`/empty/unset = auto, junk
/// panics), else the swept default (512). Exposed so
/// cache-level tuning sweeps and the bit-determinism tests can vary the
/// chunk without re-exec'ing.
pub fn set_wide_gemm_cols(n: usize) {
    WIDE_COLS.store(n, Ordering::Relaxed);
}

/// The effective wide-sweep column width (override, `ONN_WIDE_COLS`, or
/// the swept default).
fn wide_col_chunk() -> usize {
    let n = WIDE_COLS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| crate::pool::env_wide_cols().unwrap_or(WIDE_COL_CHUNK_DEFAULT))
}

/// Whether a GEMM should run as a ragged [`GemmSpec`] sweep instead of a
/// one-axis partition: the output is much wider than tall — the shape of an
/// im2col'd convolution forward `W·cols` with many output pixels, where a
/// row partition would stream the whole `k×n` right operand per thread and
/// a column partition has only `threads` coarse cells to balance.
fn is_wide(m: usize, n: usize) -> bool {
    m >= 2 && n >= 2 * wide_col_chunk() && n >= 8 * m
}

/// One strided GEMM over [`Tile`] operands, serial below the work threshold
/// and partitioned across pooled threads above it: by rows when there are
/// enough of them, by columns for single-row outputs, and as a 2D ragged
/// [`GemmSpec`] sweep for the wide few-row shapes of im2col'd convolution
/// forwards (so those no longer funnel through one one-axis partition).
/// Every output element accumulates in the same k-order regardless of
/// partitioning, so results are bit-identical across thread counts.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch<T: Element>(
    a: &[T],
    at: Tile,
    b: &[T],
    bt: Tile,
    c: &mut [T],
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
) {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let threads = gemm_threads();
    let c_len = c.len();
    let c_ptr = SendPtr(c.as_mut_ptr());
    if threads <= 1 || flops < PAR_FLOP_THRESHOLD || m * n == 0 {
        unsafe {
            gemm_tile(a, at, b, bt, c_ptr.0, c_len, ct, m, k, n, T::ONE, false);
        }
        return;
    }
    if is_wide(m, n) {
        // Wide few-row output: all-row × column-block jobs fed to the
        // flop-balanced ragged sweep, so every thread works on a bounded
        // B-slab instead of streaming the whole k×n right operand.
        let specs = wide_gemm_specs(at, bt, ct, m, k, n, threads);
        // SAFETY: the column blocks tile the output disjointly.
        unsafe {
            batched_matmul_ragged_into(a, b, c, &specs, T::ONE, false);
        }
        return;
    }
    partition_one_axis(a, at, b, bt, c_ptr, c_len, ct, m, k, n, threads);
}

/// The legacy one-axis parallel partition: by rows when there are enough of
/// them, by columns otherwise (the only way to spread a 1×n GEMM). Runs on
/// the shared pool; each job owns a disjoint slab of the output.
#[allow(clippy::too_many_arguments)]
fn partition_one_axis<T: Element>(
    a: &[T],
    at: Tile,
    b: &[T],
    bt: Tile,
    c_ptr: SendPtr<T>,
    c_len: usize,
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    if m >= threads || m >= n {
        // Row partition: thread t owns rows [r0, r0 + take).
        let threads = threads.min(m);
        let rows_per = m.div_ceil(threads);
        crate::pool::scope(|scope| {
            let mut row0 = 0;
            while row0 < m {
                let take = rows_per.min(m - row0);
                let at_chunk = Tile {
                    offset: at.offset + row0 * at.row_stride,
                    ..at
                };
                let ct_chunk = Tile {
                    offset: ct.offset + row0 * ct.row_stride,
                    ..ct
                };
                scope.spawn(move || unsafe {
                    let c_ptr = c_ptr;
                    gemm_tile(
                        a,
                        at_chunk,
                        b,
                        bt,
                        c_ptr.0,
                        c_len,
                        ct_chunk,
                        take,
                        k,
                        n,
                        T::ONE,
                        false,
                    );
                });
                row0 += take;
            }
        });
    } else {
        // Column partition: thread t owns columns [c0, c0 + take) of every
        // row.
        let threads = threads.min(n);
        let cols_per = n.div_ceil(threads);
        crate::pool::scope(|scope| {
            let mut col0 = 0;
            while col0 < n {
                let take = cols_per.min(n - col0);
                let bt_chunk = Tile {
                    offset: bt.offset + col0 * bt.col_stride,
                    ..bt
                };
                let ct_chunk = Tile {
                    offset: ct.offset + col0 * ct.col_stride,
                    ..ct
                };
                scope.spawn(move || unsafe {
                    let c_ptr = c_ptr;
                    gemm_tile(
                        a,
                        at,
                        b,
                        bt_chunk,
                        c_ptr.0,
                        c_len,
                        ct_chunk,
                        m,
                        k,
                        take,
                        T::ONE,
                        false,
                    );
                });
                col0 += take;
            }
        });
    }
}

/// The column-block job list of the wide-GEMM ragged sweep: every job
/// covers all `m` rows of one column block. Blocks are at most
/// [`wide_col_chunk`] wide (cache-bounded B-slabs, tunable via
/// `ONN_WIDE_COLS`/[`set_wide_gemm_cols`]) and shrink further when needed
/// so at least `threads` jobs exist — a moderately wide output must not
/// occupy fewer threads than the row partition it replaced.
fn wide_gemm_specs(
    at: Tile,
    bt: Tile,
    ct: Tile,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) -> Vec<GemmSpec> {
    let chunk = wide_col_chunk().min(n.div_ceil(threads.max(1))).max(64);
    let col_blocks = n.div_ceil(chunk);
    let mut specs = Vec::with_capacity(col_blocks);
    let mut col0 = 0;
    while col0 < n {
        let take = chunk.min(n - col0);
        specs.push(GemmSpec::new(
            at,
            Tile {
                offset: bt.offset + col0 * bt.col_stride,
                ..bt
            },
            Tile {
                offset: ct.offset + col0 * ct.col_stride,
                ..ct
            },
            m,
            k,
            take,
        ));
        col0 += take;
    }
    specs
}

/// The legacy one-axis partition (rows when plentiful, else columns),
/// bypassing the wide-shape ragged sweep. Kept callable so the
/// `conv_forward` benchmark can compare the partition strategies; not part
/// of the supported API.
#[doc(hidden)]
pub fn matmul_into_one_axis_partition<T: Element>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer length mismatch");
    assert_eq!(c.len(), m * n, "out buffer length mismatch");
    let (at, bt, ct) = (
        Tile::contiguous(0, k),
        Tile::contiguous(0, n),
        Tile::contiguous(0, n),
    );
    let threads = gemm_threads();
    let c_len = c.len();
    let c_ptr = SendPtr(c.as_mut_ptr());
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    if threads <= 1 || flops < PAR_FLOP_THRESHOLD || m * n == 0 {
        unsafe {
            gemm_tile(a, at, b, bt, c_ptr.0, c_len, ct, m, k, n, T::ONE, false);
        }
        return;
    }
    partition_one_axis(a, at, b, bt, c_ptr, c_len, ct, m, k, n, threads);
}

/// Batched strided GEMM: for every `t`, `C[t] = A[t] · B[t]` where all
/// operands are `m×k` / `k×n` / `m×n` tiles addressed by [`Tile`]
/// descriptors into flat buffers.
///
/// This is the kernel that multiplies all `P×Q` PTC tiles of a layer in one
/// sweep: the per-tile descriptors point straight into the stacked factor
/// buffers (or into a large weight matrix), so no tile is ever copied out.
/// Tiles are partitioned across scoped threads when the total work is large
/// enough; each output element is accumulated in the same k-order as the
/// serial loop, so results are bit-identical to per-tile [`matmul_into`].
///
/// For the common contiguous cases prefer the safe wrappers
/// [`Tensor::batched_matmul`] / [`Tensor::batched_matmul_opt`], which
/// construct disjoint descriptors by design.
///
/// # Safety
///
/// The index sets the `c_tiles` descriptors address must be pairwise
/// disjoint. Overlapping output tiles would be written concurrently from
/// different threads on the parallel path — a data race. Grid assembly and
/// stacked batches satisfy disjointness by construction.
///
/// # Panics
///
/// Panics if the descriptor counts differ or any tile indexes out of
/// bounds.
#[allow(clippy::too_many_arguments)]
pub unsafe fn batched_matmul_into<T: Element>(
    a: &[T],
    a_tiles: &[Tile],
    b: &[T],
    b_tiles: &[Tile],
    c: &mut [T],
    c_tiles: &[Tile],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a_tiles.len(), b_tiles.len(), "tile count mismatch (a vs b)");
    assert_eq!(a_tiles.len(), c_tiles.len(), "tile count mismatch (a vs c)");
    let batch = a_tiles.len();
    if batch == 0 || m * n == 0 {
        return;
    }
    for t in 0..batch {
        assert!(
            a_tiles[t].max_index(m, k) < a.len(),
            "a tile {t} out of bounds"
        );
        assert!(
            b_tiles[t].max_index(k, n) < b.len(),
            "b tile {t} out of bounds"
        );
        assert!(
            c_tiles[t].max_index(m, n) < c.len(),
            "c tile {t} out of bounds"
        );
    }
    let threads = gemm_threads();
    let flops = 2.0 * batch as f64 * m as f64 * n as f64 * k as f64;
    let c_len = c.len();
    let c_ptr = SendPtr(c.as_mut_ptr());
    if threads <= 1 || flops < PAR_FLOP_THRESHOLD || batch == 1 {
        for t in 0..batch {
            unsafe {
                gemm_tile(
                    a,
                    a_tiles[t],
                    b,
                    b_tiles[t],
                    c_ptr.0,
                    c_len,
                    c_tiles[t],
                    m,
                    k,
                    n,
                    T::ONE,
                    false,
                );
            }
        }
        return;
    }
    let threads = threads.min(batch);
    let per = batch.div_ceil(threads);
    crate::pool::scope(|scope| {
        let mut t0 = 0;
        while t0 < batch {
            let take = per.min(batch - t0);
            let (ats, bts, cts) = (
                &a_tiles[t0..t0 + take],
                &b_tiles[t0..t0 + take],
                &c_tiles[t0..t0 + take],
            );
            scope.spawn(move || {
                let c_ptr = c_ptr;
                for t in 0..take {
                    unsafe {
                        gemm_tile(
                            a,
                            ats[t],
                            b,
                            bts[t],
                            c_ptr.0,
                            c_len,
                            cts[t],
                            m,
                            k,
                            n,
                            T::ONE,
                            false,
                        );
                    }
                }
            });
            t0 += take;
        }
    });
}

/// One GEMM of a *ragged* batched sweep: operand placements plus per-job
/// dimensions, so jobs of different shapes (e.g. the cropped edge tiles of
/// a non-multiple-of-K weight) run in the same sweep as the full interior
/// tiles instead of falling back to per-tile GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmSpec {
    /// Placement of the `m×k` left operand.
    pub a: Tile,
    /// Placement of the `k×n` right operand.
    pub b: Tile,
    /// Placement of the `m×n` output.
    pub c: Tile,
    /// Output rows of this job.
    pub m: usize,
    /// Inner dimension of this job.
    pub k: usize,
    /// Output columns of this job.
    pub n: usize,
}

impl GemmSpec {
    /// A uniform-shape job (same `m/k/n` as its neighbours).
    pub fn new(a: Tile, b: Tile, c: Tile, m: usize, k: usize, n: usize) -> GemmSpec {
        GemmSpec { a, b, c, m, k, n }
    }

    fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }
}

/// Ragged batched strided GEMM: for every job `s`,
/// `C_s = α·A_s·B_s` (or `C_s += α·A_s·B_s` when `accumulate` is set),
/// where each job carries its *own* `m/k/n`.
///
/// This is the mixed-shape extension of [`batched_matmul_into`]: cropped
/// edge tiles of a non-multiple-of-K layer carry smaller `m`/`n` and join
/// the same sweep as the full interior tiles. Jobs are partitioned across
/// scoped threads by cumulative flop count; each output element accumulates
/// in the same k-order as the serial loop, and `α` is folded into the
/// streamed `a` element, so `α = 1` results are bit-identical to per-job
/// [`matmul_into`] and `α = −1` is an exact negation.
///
/// # Safety
///
/// The index sets the job `c` tiles address must be pairwise disjoint
/// (overlapping outputs would race on the parallel path).
///
/// # Panics
///
/// Panics if any job's operand placement indexes out of bounds.
pub unsafe fn batched_matmul_ragged_into<T: Element>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    specs: &[GemmSpec],
    alpha: T,
    accumulate: bool,
) {
    for (t, s) in specs.iter().enumerate() {
        assert!(
            s.a.max_index(s.m, s.k) < a.len() || s.m * s.k == 0,
            "a placement of job {t} out of bounds"
        );
        assert!(
            s.b.max_index(s.k, s.n) < b.len() || s.k * s.n == 0,
            "b placement of job {t} out of bounds"
        );
        assert!(
            s.c.max_index(s.m, s.n) < c.len() || s.m * s.n == 0,
            "c placement of job {t} out of bounds"
        );
    }
    let threads = gemm_threads();
    let total_flops: f64 = specs.iter().map(GemmSpec::flops).sum();
    let c_len = c.len();
    let c_ptr = SendPtr(c.as_mut_ptr());
    if threads <= 1 || total_flops < PAR_FLOP_THRESHOLD || specs.len() <= 1 {
        for s in specs {
            unsafe {
                gemm_tile(
                    a, s.a, b, s.b, c_ptr.0, c_len, s.c, s.m, s.k, s.n, alpha, accumulate,
                );
            }
        }
        return;
    }
    // Partition jobs into contiguous chunks of roughly equal flops.
    let per_thread = total_flops / threads as f64;
    crate::pool::scope(|scope| {
        let mut start = 0;
        while start < specs.len() {
            let mut end = start;
            let mut chunk_flops = 0.0;
            while end < specs.len() && (chunk_flops < per_thread || end == start) {
                chunk_flops += specs[end].flops();
                end += 1;
            }
            let chunk = &specs[start..end];
            scope.spawn(move || {
                let c_ptr = c_ptr;
                for s in chunk {
                    unsafe {
                        gemm_tile(
                            a, s.a, b, s.b, c_ptr.0, c_len, s.c, s.m, s.k, s.n, alpha, accumulate,
                        );
                    }
                }
            });
            start = end;
        }
    });
}

/// Matrix product of two rank-2 views.
///
/// Transposed, sliced and tiled operands run straight off their strides and
/// share the threaded row/column partitioner with [`matmul_into`]. One
/// exception: above the parallel work threshold a column-strided `b` (e.g.
/// a transposed view) is materialized once so the inner loop can stream
/// rows; small products stay allocation-free.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_view(a: &View, b: &View) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_view lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_view rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k, k2,
        "matmul_view inner dimension mismatch: {m}x{k} vs {k2}x{n}"
    );
    let mut out = Tensor::zeros(&[m, n]);
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let b_mat;
    let (b_slice, b_tile) = if b.strides()[1] != 1 && flops >= PAR_FLOP_THRESHOLD {
        // Column-strided rhs (e.g. a transposed view) above the parallel
        // threshold: one O(k·n) materialization buys the streaming inner
        // loop for the O(m·k·n) product. Small products stay copy-free.
        b_mat = b.materialize();
        (b_mat.as_slice(), Tile::contiguous(0, n))
    } else {
        (b.storage_slice(), Tile::of_view(b))
    };
    gemm_dispatch(
        a.storage_slice(),
        Tile::of_view(a),
        b_slice,
        b_tile,
        out.as_mut_slice(),
        Tile::contiguous(0, n),
        m,
        k,
        n,
    );
    out
}

impl Tensor {
    /// Matrix product `self · rhs`.
    ///
    /// Both operands must be rank 2 with an agreeing inner dimension.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use adept_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: {m}x{k} vs {k2}x{n}"
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        out
    }

    /// Batched matrix product of rank-3 tensors:
    /// `[T, m, k] · [T, k, n] → [T, m, n]`.
    ///
    /// Runs all `T` products in one [`batched_matmul_into`] sweep.
    ///
    /// # Panics
    ///
    /// Panics on rank, batch or inner-dimension mismatch.
    pub fn batched_matmul(&self, rhs: &Tensor) -> Tensor {
        self.batched_matmul_opt(rhs, false, false)
    }

    /// Batched matrix product with optional per-item transposes:
    /// `out[t] = opA(self[t]) · opB(rhs[t])` where `op` transposes when the
    /// corresponding flag is set.
    ///
    /// Transposes are pure stride swaps in the tile descriptors — nothing
    /// is materialized. This is what makes the batched autodiff backward
    /// pass (`dA[t] = dC[t]·B[t]ᵀ`, `dB[t] = A[t]ᵀ·dC[t]`) allocation-free
    /// apart from the gradient buffers themselves.
    ///
    /// # Panics
    ///
    /// Panics on rank, batch or inner-dimension mismatch.
    pub fn batched_matmul_opt(&self, rhs: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        assert_eq!(self.rank(), 3, "batched_matmul lhs must be rank 3");
        assert_eq!(rhs.rank(), 3, "batched_matmul rhs must be rank 3");
        let (t, ar, ac) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (t2, br, bc) = (rhs.shape()[0], rhs.shape()[1], rhs.shape()[2]);
        assert_eq!(t, t2, "batch size mismatch: {t} vs {t2}");
        let (m, k) = if trans_a { (ac, ar) } else { (ar, ac) };
        let (k2, n) = if trans_b { (bc, br) } else { (br, bc) };
        assert_eq!(k, k2, "batched inner dimension mismatch");
        let a_tile = |i: usize| {
            if trans_a {
                Tile {
                    offset: i * ar * ac,
                    row_stride: 1,
                    col_stride: ac,
                }
            } else {
                Tile::contiguous(i * ar * ac, ac)
            }
        };
        let b_tile = |i: usize| {
            if trans_b {
                Tile {
                    offset: i * br * bc,
                    row_stride: 1,
                    col_stride: bc,
                }
            } else {
                Tile::contiguous(i * br * bc, bc)
            }
        };
        let a_tiles: Vec<Tile> = (0..t).map(a_tile).collect();
        let b_tiles: Vec<Tile> = (0..t).map(b_tile).collect();
        let c_tiles: Vec<Tile> = (0..t).map(|i| Tile::contiguous(i * m * n, n)).collect();
        let mut out = Tensor::zeros(&[t, m, n]);
        // SAFETY: c_tiles are non-overlapping contiguous [m, n] slabs.
        unsafe {
            batched_matmul_into(
                self.as_slice(),
                &a_tiles,
                rhs.as_slice(),
                &b_tiles,
                out.as_mut_slice(),
                &c_tiles,
                m,
                k,
                n,
            );
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a matrix or dimensions disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be a matrix");
        assert_eq!(v.rank(), 1, "matvec rhs must be a vector");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let mut out = Tensor::zeros(&[m]);
        let lhs = self.as_slice();
        let rhs = v.as_slice();
        let dst = out.as_mut_slice();
        for (i, slot) in dst.iter_mut().enumerate() {
            *slot = lhs[i * k..(i + 1) * k]
                .iter()
                .zip(rhs)
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that override the process-global GEMM thread count must not
    /// interleave, or the partition paths they exercise go untested.
    static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

    fn thread_override_lock() -> std::sync::MutexGuard<'static, ()> {
        adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE)
    }

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::linspace(1.0, 12.0, 12).reshape(&[3, 4]);
        assert!(a.matmul(&Tensor::eye(4)).allclose(&a, 1e-12));
        assert!(Tensor::eye(3).matmul(&a).allclose(&a, 1e-12));
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::linspace(-2.0, 2.0, 6).reshape(&[2, 3]);
        let b = Tensor::linspace(0.5, 4.0, 12).reshape(&[3, 4]);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-12));
    }

    #[test]
    fn matches_naive_threaded() {
        // Large enough to cross the threading threshold.
        let m = 96;
        let k = 64;
        let n = 80;
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0)
                .collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0)
                .collect(),
            &[k, n],
        );
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-9));
    }

    #[test]
    fn single_row_wide_gemm_uses_column_partition() {
        // m = 1 with n·k far above the parallel threshold: the column
        // partition must produce bit-identical results to the serial path.
        let k = 700;
        let n = 2400;
        let a = Tensor::from_vec(
            (0..k)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0)
                .collect(),
            &[1, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0)
                .collect(),
            &[k, n],
        );
        let _guard = thread_override_lock();
        set_gemm_threads(4);
        let par = a.matmul(&b);
        set_gemm_threads(1);
        let ser = a.matmul(&b);
        set_gemm_threads(0);
        assert_eq!(par.as_slice(), ser.as_slice(), "must be bit-identical");
    }

    #[test]
    fn two_row_gemm_still_partitions_columns() {
        // m = 2 < threads: wide GEMMs with few rows take the column path.
        let k = 600;
        let n = 1500;
        let a = Tensor::from_vec(
            (0..2 * k)
                .map(|i| ((i * 31 % 89) as f64 - 44.0) / 22.0)
                .collect(),
            &[2, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 41 % 83) as f64 - 41.0) / 21.0)
                .collect(),
            &[k, n],
        );
        let _guard = thread_override_lock();
        set_gemm_threads(6);
        let par = a.matmul(&b);
        set_gemm_threads(1);
        let ser = a.matmul(&b);
        set_gemm_threads(0);
        assert_eq!(par.as_slice(), ser.as_slice());
    }

    #[test]
    fn wide_conv_shape_takes_ragged_sweep_and_matches_one_axis_bitwise() {
        // The im2col'd conv forward shape: 16 output channels, thousands of
        // output-pixel columns. This must select the ragged sweep and stay
        // bit-identical to both the legacy one-axis partition and serial.
        let (m, k, n) = (16usize, 96usize, 2048usize);
        assert!(super::is_wide(m, n), "conv shape must take the wide path");
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0)
                .collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0)
                .collect(),
            &[k, n],
        );
        let _guard = thread_override_lock();
        set_gemm_threads(4);
        let ragged = a.matmul(&b);
        let mut one_axis = Tensor::zeros(&[m, n]);
        matmul_into_one_axis_partition(
            a.as_slice(),
            b.as_slice(),
            one_axis.as_mut_slice(),
            m,
            k,
            n,
        );
        set_gemm_threads(1);
        let serial = a.matmul(&b);
        set_gemm_threads(0);
        assert_eq!(ragged.as_slice(), one_axis.as_slice());
        assert_eq!(ragged.as_slice(), serial.as_slice());
    }

    #[test]
    fn wide_sweep_is_bit_identical_across_chunk_sizes() {
        // The ONN_WIDE_COLS knob only repartitions disjoint output blocks;
        // every element keeps its serial k-order, so any chunk width must
        // produce the exact same bits.
        let (m, k, n) = (16usize, 96usize, 4096usize);
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0)
                .collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0)
                .collect(),
            &[k, n],
        );
        let _guard = thread_override_lock();
        set_gemm_threads(1);
        let serial = a.matmul(&b);
        set_gemm_threads(4);
        for chunk in [64usize, 200, 512, 2048] {
            set_wide_gemm_cols(chunk);
            assert!(
                super::is_wide(m, n),
                "shape must stay on the wide path at chunk {chunk}"
            );
            let got = a.matmul(&b);
            assert_eq!(
                got.as_slice(),
                serial.as_slice(),
                "chunk {chunk} must be bit-identical to serial"
            );
        }
        set_wide_gemm_cols(0);
        set_gemm_threads(0);
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let a = Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]);
        let v = Tensor::from_vec(vec![1.0, -1.0, 2.0], &[3]);
        let via_mm = a.matmul(&v.reshape(&[3, 1])).reshape(&[2]);
        assert!(a.matvec(&v).allclose(&via_mm, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn thread_override_roundtrip() {
        let _guard = thread_override_lock();
        set_gemm_threads(2);
        let a = Tensor::ones(&[64, 64]);
        let b = Tensor::ones(&[64, 64]);
        let c = a.matmul(&b);
        assert!((c.at(&[0, 0]) - 64.0).abs() < 1e-12);
        set_gemm_threads(0);
    }

    #[test]
    fn matmul_view_handles_transposes_and_tiles() {
        let a = Tensor::linspace(-1.0, 1.0, 12).reshape(&[3, 4]);
        let b = Tensor::linspace(0.0, 1.0, 12).reshape(&[3, 4]);
        // aᵀ · b without materializing aᵀ.
        let got = matmul_view(&a.t_view(), &b.view());
        let want = naive(&a.block(0, 0, 3, 4).t_view().materialize(), &b);
        assert!(got.allclose(&want, 1e-12));
        // Tile × tile straight out of the parents.
        let big = Tensor::linspace(0.0, 35.0, 36).reshape(&[6, 6]);
        let t1 = big.block_view(1, 1, 2, 3);
        let t2 = big.block_view(2, 0, 3, 2);
        let got = matmul_view(&t1, &t2);
        let want = naive(&t1.materialize(), &t2.materialize());
        assert!(got.allclose(&want, 1e-12));
    }

    #[test]
    fn batched_matches_looped_bitwise() {
        let t = 5;
        let (m, k, n) = (4, 6, 3);
        let a = Tensor::from_vec(
            (0..t * m * k)
                .map(|i| ((i * 29 % 31) as f64 - 15.0) / 9.0)
                .collect(),
            &[t, m, k],
        );
        let b = Tensor::from_vec(
            (0..t * k * n)
                .map(|i| ((i * 17 % 23) as f64 - 11.0) / 7.0)
                .collect(),
            &[t, k, n],
        );
        let batched = a.batched_matmul(&b);
        for ti in 0..t {
            let looped = a.subtensor(ti).matmul(&b.subtensor(ti));
            assert_eq!(
                batched.subtensor(ti).as_slice(),
                looped.as_slice(),
                "tile {ti} must match bit-for-bit"
            );
        }
    }

    #[test]
    fn batched_transpose_flags_match_materialized() {
        let t = 3;
        let a = Tensor::linspace(-1.0, 1.0, t * 2 * 4).reshape(&[t, 2, 4]);
        let b = Tensor::linspace(0.0, 2.0, t * 2 * 5).reshape(&[t, 2, 5]);
        // aᵀ·b per batch: [4,2]·[2,5] → [4,5].
        let got = a.batched_matmul_opt(&b, true, false);
        for ti in 0..t {
            let want = a.subtensor(ti).transpose().matmul(&b.subtensor(ti));
            assert_eq!(got.subtensor(ti).as_slice(), want.as_slice());
        }
        // a·bᵀ per batch with b as [t, 5, 4].
        let b2 = Tensor::linspace(0.0, 2.0, t * 5 * 4).reshape(&[t, 5, 4]);
        let got = a.batched_matmul_opt(&b2, false, true);
        for ti in 0..t {
            let want = a.subtensor(ti).matmul(&b2.subtensor(ti).transpose());
            assert_eq!(got.subtensor(ti).as_slice(), want.as_slice());
        }
    }

    #[test]
    fn ragged_sweep_threaded_matches_serial_bitwise() {
        // Enough flops to cross PAR_FLOP_THRESHOLD so the chunked
        // scope::spawn path runs; mixed job shapes; results must be
        // bit-identical to the serial sweep.
        let (big_m, big_k, big_n) = (48usize, 64usize, 48usize);
        let jobs = 24usize;
        let a = Tensor::from_vec(
            (0..jobs * big_m * big_k)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 25.0)
                .collect(),
            &[jobs, big_m, big_k],
        );
        let b = Tensor::from_vec(
            (0..jobs * big_k * big_n)
                .map(|i| ((i * 53 % 97) as f64 - 48.0) / 24.0)
                .collect(),
            &[jobs, big_k, big_n],
        );
        // Every third job is "ragged": a cropped edge tile.
        let specs: Vec<GemmSpec> = (0..jobs)
            .map(|t| {
                let (m, n) = if t % 3 == 2 {
                    (big_m - 5, big_n - 7)
                } else {
                    (big_m, big_n)
                };
                GemmSpec::new(
                    Tile::contiguous(t * big_m * big_k, big_k),
                    Tile::contiguous(t * big_k * big_n, big_n),
                    Tile::contiguous(t * big_m * big_n, big_n),
                    m,
                    big_k,
                    n,
                )
            })
            .collect();
        let total_flops: f64 = specs.iter().map(|s| 2.0 * (s.m * s.k * s.n) as f64).sum();
        assert!(total_flops > PAR_FLOP_THRESHOLD, "must exercise threads");
        let run = |threads: usize| {
            let _guard = thread_override_lock();
            set_gemm_threads(threads);
            let mut out = Tensor::zeros(&[jobs, big_m, big_n]);
            // SAFETY: per-job output slabs are disjoint.
            unsafe {
                batched_matmul_ragged_into(
                    a.as_slice(),
                    b.as_slice(),
                    out.as_mut_slice(),
                    &specs,
                    1.0,
                    false,
                );
            }
            set_gemm_threads(0);
            out
        };
        let par = run(6);
        let ser = run(1);
        assert_eq!(par.as_slice(), ser.as_slice(), "must be bit-identical");
        // Spot-check a ragged job against the per-item reference.
        let want = a.subtensor(2).matmul(&b.subtensor(2));
        for i in 0..big_m - 5 {
            for j in 0..big_n - 7 {
                assert_eq!(par.subtensor(2).at(&[i, j]), want.at(&[i, j]));
            }
        }
    }

    #[test]
    fn ragged_sweep_alpha_and_accumulate() {
        // C ← A·B, then C += (−1)·A·B must return C to exactly zero: this
        // exercises the accumulate monomorphizations and the exactness of
        // α = −1 (negation folds into the streamed a element).
        let (m, k, n) = (5usize, 7usize, 4usize);
        let a = Tensor::linspace(-1.3, 1.7, m * k).reshape(&[1, m, k]);
        let b = Tensor::linspace(0.2, -2.1, k * n).reshape(&[1, k, n]);
        let specs = [GemmSpec::new(
            Tile::contiguous(0, k),
            Tile::contiguous(0, n),
            Tile::contiguous(0, n),
            m,
            k,
            n,
        )];
        let mut out = Tensor::zeros(&[m, n]);
        // SAFETY: single job, exclusive output.
        unsafe {
            batched_matmul_ragged_into(
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                &specs,
                1.0,
                false,
            );
        }
        assert!(out.allclose(&a.subtensor(0).matmul(&b.subtensor(0)), 1e-12));
        // Accumulate with α = 2: out becomes 3·A·B (within reassociation
        // rounding, since the two sweeps' running sums interleave).
        let mut tripled = out.clone();
        unsafe {
            batched_matmul_ragged_into(
                a.as_slice(),
                b.as_slice(),
                tripled.as_mut_slice(),
                &specs,
                2.0,
                true,
            );
        }
        assert!(tripled.allclose(&out.scale(3.0), 1e-12));
        // α = −1 accumulate cancels the overwrite sweep (up to the usual
        // reassociation rounding — each −a_ip·b term is exact, but the
        // running sums associate differently).
        let mut zeroed = out.clone();
        unsafe {
            batched_matmul_ragged_into(
                a.as_slice(),
                b.as_slice(),
                zeroed.as_mut_slice(),
                &specs,
                -1.0,
                true,
            );
        }
        assert!(
            zeroed.allclose(&Tensor::zeros(&[m, n]), 1e-12),
            "α = −1 accumulation must cancel to rounding error"
        );
    }

    #[test]
    fn batched_tiles_address_into_large_matrices() {
        // Extract two 2x2 tiles of a 4x4 matrix, multiply each by its own
        // rhs, and scatter into a 2x4 output — all through descriptors.
        let big = Tensor::linspace(0.0, 15.0, 16).reshape(&[4, 4]);
        let rhs = Tensor::linspace(1.0, 8.0, 8).reshape(&[2, 2, 2]);
        let mut out = Tensor::zeros(&[2, 4]);
        let a_tiles = [
            Tile {
                offset: 0,
                row_stride: 4,
                col_stride: 1,
            },
            Tile {
                offset: 10,
                row_stride: 4,
                col_stride: 1,
            },
        ];
        let b_tiles = [Tile::contiguous(0, 2), Tile::contiguous(4, 2)];
        let c_tiles = [
            Tile {
                offset: 0,
                row_stride: 4,
                col_stride: 1,
            },
            Tile {
                offset: 2,
                row_stride: 4,
                col_stride: 1,
            },
        ];
        // SAFETY: the two c tiles address disjoint halves of the output.
        unsafe {
            batched_matmul_into(
                big.as_slice(),
                &a_tiles,
                rhs.as_slice(),
                &b_tiles,
                out.as_mut_slice(),
                &c_tiles,
                2,
                2,
                2,
            );
        }
        let want0 = big.block(0, 0, 2, 2).matmul(&rhs.subtensor(0));
        let want1 = big.block(2, 2, 2, 2).matmul(&rhs.subtensor(1));
        assert_eq!(out.block(0, 0, 2, 2), want0);
        assert_eq!(out.block(0, 2, 2, 2), want1);
    }
}
