//! Random tensor constructors, seeded and reproducible.

use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::Rng;

impl Tensor {
    /// Fills a new tensor with uniform samples from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f64, hi: f64) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Fills a new tensor with `N(mean, std²)` samples (Box–Muller).
    pub fn rand_normal<R: Rng + ?Sized>(
        rng: &mut R,
        shape: &[usize],
        mean: f64,
        std: f64,
    ) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape)
    }

    /// Kaiming-uniform initialization for a weight of `fan_in` inputs:
    /// uniform on `[-b, b]` with `b = sqrt(6 / fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        let bound = (6.0 / fan_in as f64).sqrt();
        Self::rand_uniform(rng, shape, -bound, bound)
    }

    /// Samples each element from an arbitrary `rand` distribution.
    pub fn rand_dist<R: Rng + ?Sized, D: Distribution<f64>>(
        rng: &mut R,
        shape: &[usize],
        dist: &D,
    ) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| dist.sample(rng)).collect();
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_range_and_determinism() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -2.0, 3.0);
        assert!(t.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::rand_uniform(&mut rng2, &[1000], -2.0, 3.0);
        assert_eq!(t, t2);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_normal(&mut rng, &[20000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn kaiming_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::kaiming_uniform(&mut rng, &[64, 16], 16);
        let b = (6.0f64 / 16.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= b));
        assert!(t.max() > 0.5 * b, "should fill out the range");
    }
}
