//! The core dense tensor type.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major, dynamically shaped `f64` tensor.
///
/// `Tensor` is deliberately simple: owned storage, no views, no reference
/// counting. Everything in the ADEPT stack (autodiff, photonic meshes, neural
/// layers) is built from explicit copies of these, which keeps gradient
/// bookkeeping straightforward and makes numerical bugs reproducible.
///
/// # Examples
///
/// ```
/// use adept_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    pub(crate) data: Vec<f64>,
    pub(crate) shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { data, shape }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f64) -> Self {
        Self {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates an all-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates an all-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Self {
        let shape = Shape::new(shape);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a 1-D tensor with `n` evenly spaced samples over
    /// `[start, stop]` (inclusive on both ends when `n > 1`).
    pub fn linspace(start: f64, stop: f64, n: usize) -> Self {
        let data = if n <= 1 {
            vec![start]
        } else {
            (0..n)
                .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
                .collect()
        };
        let len = data.len();
        Self::from_vec(data, &[len])
    }

    /// Creates a diagonal matrix from a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is not rank 1.
    pub fn from_diag(diag: &Tensor) -> Self {
        assert_eq!(diag.rank(), 1, "from_diag expects a vector");
        let n = diag.len();
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = diag.data[i];
        }
        t
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Full shape object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f64 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f64 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns the tensor reinterpreted with a new shape of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let new_shape = Shape::new(shape);
        assert_eq!(
            self.len(),
            new_shape.len(),
            "cannot reshape {} elements into {new_shape}",
            self.len()
        );
        Tensor {
            data: self.data.clone(),
            shape: new_shape,
        }
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() on tensor with {} elements", self.len());
        self.data[0]
    }

    /// Elementwise approximate equality within absolute tolerance `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Extracts row `r` of a matrix as a vector tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() expects a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        Tensor::from_vec(self.data[r * cols..(r + 1) * cols].to_vec(), &[cols])
    }

    /// Extracts column `c` of a matrix as a vector tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `c` is out of bounds.
    pub fn col(&self, c: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "col() expects a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        assert!(c < cols, "col {c} out of bounds for {cols} cols");
        let data = (0..rows).map(|r| self.data[r * cols + c]).collect();
        Tensor::from_vec(data, &[rows])
    }

    /// Writes `block` into `self` (a matrix) with its top-left corner at
    /// `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Tensor) {
        assert_eq!(self.rank(), 2, "set_block target must be a matrix");
        assert_eq!(block.rank(), 2, "set_block source must be a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let (br, bc) = (block.shape()[0], block.shape()[1]);
        assert!(
            r0 + br <= rows && c0 + bc <= cols,
            "block {br}x{bc} at ({r0},{c0}) exceeds {rows}x{cols}"
        );
        for i in 0..br {
            let src = &block.data[i * bc..(i + 1) * bc];
            let dst_off = (r0 + i) * cols + c0;
            self.data[dst_off..dst_off + bc].copy_from_slice(src);
        }
    }

    /// Copies the `rows`×`cols` block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the block exceeds bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "block() expects a matrix");
        let (nr, nc) = (self.shape()[0], self.shape()[1]);
        assert!(
            r0 + rows <= nr && c0 + cols <= nc,
            "block {rows}x{cols} at ({r0},{c0}) exceeds {nr}x{nc}"
        );
        let mut out = Tensor::zeros(&[rows, cols]);
        for i in 0..rows {
            let src_off = (r0 + i) * nc + c0;
            out.data[i * cols..(i + 1) * cols]
                .copy_from_slice(&self.data[src_off..src_off + cols]);
        }
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.rank() == 2 {
            let (r, c) = (self.shape()[0], self.shape()[1]);
            writeln!(f, "[")?;
            for i in 0..r.min(8) {
                write!(f, "  [")?;
                for j in 0..c.min(8) {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:9.4}", self.data[i * c + j])?;
                }
                if c > 8 {
                    write!(f, ", …")?;
                }
                writeln!(f, "]")?;
            }
            if r > 8 {
                writeln!(f, "  …")?;
            }
            write!(f, "]")
        } else {
            let n = self.len().min(16);
            write!(f, "{:?}", &self.data[..n])?;
            if self.len() > 16 {
                write!(f, "…")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[3, 2]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).as_slice(), &[1.0; 4]);
        assert_eq!(Tensor::full(&[2], 3.5).as_slice(), &[3.5, 3.5]);
        assert_eq!(Tensor::scalar(2.0).item(), 2.0);
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[1, 1]), 1.0);
        assert_eq!(eye.at(&[0, 2]), 0.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(2.0, 9.0, 1).as_slice(), &[2.0]);
    }

    #[test]
    fn diag_round_trip() {
        let d = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let m = Tensor::from_diag(&d);
        assert_eq!(m.at(&[2, 2]), 3.0);
        assert_eq!(m.at(&[0, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_len() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn rows_cols_blocks() {
        let m = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
        assert_eq!(m.row(1).as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m.col(2).as_slice(), &[2.0, 6.0, 10.0]);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
        let mut z = Tensor::zeros(&[3, 4]);
        z.set_block(1, 2, &Tensor::ones(&[2, 2]));
        assert_eq!(z.at(&[1, 2]), 1.0);
        assert_eq!(z.at(&[2, 3]), 1.0);
        assert_eq!(z.at(&[0, 0]), 0.0);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::ones(&[2, 2]);
        let mut b = a.clone();
        *b.at_mut(&[0, 1]) += 1e-9;
        assert!(a.allclose(&b, 1e-8));
        assert!(!a.allclose(&b, 1e-10));
        assert!((a.max_abs_diff(&b) - 1e-9).abs() < 1e-15);
    }
}
