//! The core dense tensor type: Arc-backed, copy-on-write storage, generic
//! over the element dtype ([`crate::Element`]: `f64` or `f32`).

use crate::element::Element;
use crate::shape::Shape;
use crate::view::ViewBase;
use std::fmt;
use std::sync::Arc;

/// A dense, row-major, dynamically shaped tensor backed by shared,
/// copy-on-write storage, generic over its element dtype.
///
/// [`Tensor`] (= `TensorBase<f64>`) is the default and the only dtype the
/// autodiff tape and training ever see; [`TensorF32`] (= `TensorBase<f32>`)
/// is the inference-time storage mode produced by [`Tensor::to_f32`] at
/// plan-freeze time. See [`crate::element`] for the "training stays f64"
/// invariant.
///
/// # Storage model
///
/// A tensor is a *contiguous window* `[offset, offset + len)` into an
/// `Arc<Vec<T>>` buffer. Cloning a tensor, reshaping it, extracting a
/// [`TensorBase::row`], or taking a value off an autodiff tape never copies
/// the buffer — only the `Arc` reference count moves. The first mutating
/// call (`as_mut_slice`, `at_mut`, `set_block`, `axpy`, …) on a tensor whose
/// buffer is shared (or windowed) detaches it onto a fresh exclusive
/// allocation first, so writers can never be observed through other handles.
///
/// # Aliasing rules
///
/// * Readers may alias freely: `clone`, `reshape`, `row` and
///   [`TensorBase::view`] all share storage.
/// * A mutated tensor never aliases anything: copy-on-write guarantees that
///   after any `&mut self` operation the storage is exclusively owned.
/// * [`View`](crate::View) handles non-contiguous windows (strided slices, transposes,
///   tiles); [`ViewBase::materialize`] is zero-copy exactly when the view is
///   contiguous.
///
/// # Examples
///
/// ```
/// use adept_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
///
/// // Clones share storage until one side writes.
/// let mut u = t.clone();
/// assert!(t.shares_storage(&u));
/// u.as_mut_slice()[0] = 1.0;
/// assert!(!t.shares_storage(&u));
/// assert_eq!(t.as_slice()[0], 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TensorBase<T> {
    pub(crate) data: Arc<Vec<T>>,
    pub(crate) offset: usize,
    pub(crate) shape: Shape,
}

/// The default `f64` tensor — the only dtype autodiff/training sees.
pub type Tensor = TensorBase<f64>;

/// The `f32` storage/compute tensor of the inference-only precision mode.
pub type TensorF32 = TensorBase<f32>;

impl<T> Default for TensorBase<T> {
    /// An empty rank-1 tensor (`shape [0]`, zero elements).
    ///
    /// The rank-0 `Shape::default()` would claim one element against empty
    /// storage, so the default shape must be explicitly zero-length.
    fn default() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            offset: 0,
            shape: Shape::new(&[0]),
        }
    }
}

impl<T: Element> PartialEq for TensorBase<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl<T: Element> TensorBase<T> {
    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<T>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self {
            data: Arc::new(data),
            offset: 0,
            shape,
        }
    }

    pub(crate) fn from_parts(data: Vec<T>, shape: Shape) -> Self {
        debug_assert_eq!(data.len(), shape.len());
        Self {
            data: Arc::new(data),
            offset: 0,
            shape,
        }
    }

    /// Creates a tensor windowing `storage` at `offset` without copying.
    ///
    /// This is the zero-copy bridge other crates use to share one allocation
    /// between several tensors (e.g. the real/imaginary planes of a complex
    /// matrix). Copy-on-write keeps the sharing invisible to writers.
    ///
    /// # Panics
    ///
    /// Panics if the window `[offset, offset + shape.len())` exceeds the
    /// storage length.
    pub fn from_shared(storage: Arc<Vec<T>>, offset: usize, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert!(
            offset + shape.len() <= storage.len(),
            "window [{offset}, {}) exceeds storage of {} elements",
            offset + shape.len(),
            storage.len()
        );
        Self {
            data: storage,
            offset,
            shape,
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: T) -> Self {
        Self {
            data: Arc::new(vec![value]),
            offset: 0,
            shape: Shape::scalar(),
        }
    }

    /// Creates an all-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Self {
            data: Arc::new(vec![T::ZERO; shape.len()]),
            offset: 0,
            shape,
        }
    }

    /// Creates an all-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, T::ONE)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: T) -> Self {
        let shape = Shape::new(shape);
        Self {
            data: Arc::new(vec![value; shape.len()]),
            offset: 0,
            shape,
        }
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Full shape object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether both tensors are windows into the same allocation.
    pub fn shares_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// The backing storage (shared; for zero-copy plumbing and tests).
    pub fn storage(&self) -> Arc<Vec<T>> {
        Arc::clone(&self.data)
    }

    /// This tensor's window offset into [`TensorBase::storage`].
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// Immutable view of the backing storage window (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.offset..self.offset + self.len()]
    }

    /// Detaches this tensor onto exclusively owned, offset-0 storage.
    ///
    /// No-op when the tensor already owns its full buffer exclusively; the
    /// single copy here is what makes every `&mut self` method copy-on-write.
    fn make_exclusive(&mut self) {
        let len = self.len();
        if self.offset == 0 && self.data.len() == len && Arc::get_mut(&mut self.data).is_some() {
            return;
        }
        let detached: Vec<T> = self.data[self.offset..self.offset + len].to_vec();
        self.data = Arc::new(detached);
        self.offset = 0;
    }

    /// Mutable view of the backing storage (row-major). Copy-on-write:
    /// detaches from shared storage first.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.make_exclusive();
        Arc::get_mut(&mut self.data).expect("storage exclusive after make_exclusive")
    }

    /// Consumes the tensor, returning the backing storage (copying only if
    /// it is shared or windowed).
    pub fn into_vec(mut self) -> Vec<T> {
        self.make_exclusive();
        match Arc::try_unwrap(self.data) {
            Ok(v) => v,
            Err(arc) => arc[..].to_vec(),
        }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> T {
        self.data[self.offset + self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index (copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let off = self.shape.offset(index);
        &mut self.as_mut_slice()[off]
    }

    /// Returns the tensor reinterpreted with a new shape of equal length.
    ///
    /// Zero-copy: the result shares this tensor's storage.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let new_shape = Shape::new(shape);
        assert_eq!(
            self.len(),
            new_shape.len(),
            "cannot reshape {} elements into {new_shape}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset,
            shape: new_shape,
        }
    }

    /// A strided [`ViewBase`] of the whole tensor (zero-copy).
    pub fn view(&self) -> ViewBase<T> {
        ViewBase::of(self)
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> T {
        assert_eq!(
            self.len(),
            1,
            "item() on tensor with {} elements",
            self.len()
        );
        self.as_slice()[0]
    }

    /// Extracts row `r` of a matrix as a vector tensor.
    ///
    /// Zero-copy: rows of a row-major matrix are contiguous, so the result
    /// is a window sharing this tensor's storage.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Self {
        assert_eq!(self.rank(), 2, "row() expects a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset + r * cols,
            shape: Shape::new(&[cols]),
        }
    }

    /// Extracts column `c` of a matrix as a vector tensor (strided copy).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `c` is out of bounds.
    pub fn col(&self, c: usize) -> Self {
        assert_eq!(self.rank(), 2, "col() expects a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        assert!(c < cols, "col {c} out of bounds for {cols} cols");
        let src = self.as_slice();
        let data = (0..rows).map(|r| src[r * cols + c]).collect();
        Self::from_vec(data, &[rows])
    }

    /// The contiguous sub-tensor at index `i` of the leading axis.
    ///
    /// Zero-copy: `[T, …rest]` at index `i` is the window `[…rest]` starting
    /// at `i · rest.len()`. This is how batched operations hand out per-item
    /// tensors without copying.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor or an out-of-bounds index.
    pub fn subtensor(&self, i: usize) -> Self {
        assert!(self.rank() >= 1, "subtensor() needs rank >= 1");
        let n = self.shape()[0];
        assert!(i < n, "index {i} out of bounds for leading axis of {n}");
        let rest = &self.shape()[1..];
        let stride: usize = rest.iter().product();
        Self {
            data: Arc::clone(&self.data),
            offset: self.offset + i * stride,
            shape: Shape::new(rest),
        }
    }

    /// Writes `block` into `self` (a matrix) with its top-left corner at
    /// `(r0, c0)`. Copy-on-write on `self`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Self) {
        assert_eq!(self.rank(), 2, "set_block target must be a matrix");
        assert_eq!(block.rank(), 2, "set_block source must be a matrix");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let (br, bc) = (block.shape()[0], block.shape()[1]);
        assert!(
            r0 + br <= rows && c0 + bc <= cols,
            "block {br}x{bc} at ({r0},{c0}) exceeds {rows}x{cols}"
        );
        // Copy-on-write detaches `self` first, so a storage-sharing `block`
        // keeps reading the untouched original allocation.
        let dst = self.as_mut_slice();
        let src = block.as_slice();
        for i in 0..br {
            let dst_off = (r0 + i) * cols + c0;
            dst[dst_off..dst_off + bc].copy_from_slice(&src[i * bc..(i + 1) * bc]);
        }
    }

    /// Copies the `rows`×`cols` block whose top-left corner is `(r0, c0)`.
    ///
    /// For a zero-copy handle to the same region use
    /// [`TensorBase::block_view`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the block exceeds bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        self.block_view(r0, c0, rows, cols).materialize()
    }

    /// A zero-copy strided view of the `rows`×`cols` block at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the block exceeds bounds.
    pub fn block_view(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> ViewBase<T> {
        assert_eq!(self.rank(), 2, "block_view() expects a matrix");
        let (nr, nc) = (self.shape()[0], self.shape()[1]);
        assert!(
            r0 + rows <= nr && c0 + cols <= nc,
            "block {rows}x{cols} at ({r0},{c0}) exceeds {nr}x{nc}"
        );
        self.view().slice(0, r0, rows).slice(1, c0, cols)
    }

    /// A zero-copy transposed view of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn t_view(&self) -> ViewBase<T> {
        assert_eq!(self.rank(), 2, "t_view() expects a matrix");
        self.view().transpose()
    }
}

impl Tensor {
    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self::from_parts(data, Shape::new(&[n, n]))
    }

    /// Creates a `[t, n, n]` stack of `t` identity matrices — the initial
    /// running product of the batched unitary builders.
    pub fn eye_batched(t: usize, n: usize) -> Self {
        let mut data = vec![0.0; t * n * n];
        for ti in 0..t {
            for i in 0..n {
                data[(ti * n + i) * n + i] = 1.0;
            }
        }
        Self::from_parts(data, Shape::new(&[t, n, n]))
    }

    /// Creates a 1-D tensor with `n` evenly spaced samples over
    /// `[start, stop]` (inclusive on both ends when `n > 1`).
    pub fn linspace(start: f64, stop: f64, n: usize) -> Self {
        let data = if n <= 1 {
            vec![start]
        } else {
            (0..n)
                .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
                .collect()
        };
        let len = data.len();
        Self::from_vec(data, &[len])
    }

    /// Creates a diagonal matrix from a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is not rank 1.
    pub fn from_diag(diag: &Tensor) -> Self {
        assert_eq!(diag.rank(), 1, "from_diag expects a vector");
        let n = diag.len();
        let src = diag.as_slice();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = src[i];
        }
        Self::from_parts(data, Shape::new(&[n, n]))
    }

    /// Elementwise approximate equality within absolute tolerance `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Quantizes to an `f32` tensor (one rounding pass; fresh storage).
    ///
    /// This is the freeze-time weight quantization of f32 inference plans —
    /// the *only* supported direction data enters the f32 world, so training
    /// and the autodiff tape stay f64 end to end (see [`crate::element`]).
    pub fn to_f32(&self) -> TensorF32 {
        TensorF32::from_parts(
            self.as_slice().iter().map(|&v| v as f32).collect(),
            self.shape.clone(),
        )
    }
}

impl TensorF32 {
    /// Widens back to an `f64` tensor (fresh storage).
    ///
    /// Exact: every `f32` is representable in `f64`.
    pub fn to_f64(&self) -> Tensor {
        Tensor::from_parts(
            self.as_slice().iter().map(|&v| v as f64).collect(),
            self.shape.clone(),
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let data = self.as_slice();
        if self.rank() == 2 {
            let (r, c) = (self.shape()[0], self.shape()[1]);
            writeln!(f, "[")?;
            for i in 0..r.min(8) {
                write!(f, "  [")?;
                for j in 0..c.min(8) {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:9.4}", data[i * c + j])?;
                }
                if c > 8 {
                    write!(f, ", …")?;
                }
                writeln!(f, "]")?;
            }
            if r > 8 {
                writeln!(f, "  …")?;
            }
            write!(f, "]")
        } else {
            let n = self.len().min(16);
            write!(f, "{:?}", &data[..n])?;
            if self.len() > 16 {
                write!(f, "…")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[3, 2]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).as_slice(), &[1.0; 4]);
        assert_eq!(Tensor::full(&[2], 3.5).as_slice(), &[3.5, 3.5]);
        assert_eq!(Tensor::scalar(2.0).item(), 2.0);
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[1, 1]), 1.0);
        assert_eq!(eye.at(&[0, 2]), 0.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(2.0, 9.0, 1).as_slice(), &[2.0]);
    }

    #[test]
    fn diag_round_trip() {
        let d = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let m = Tensor::from_diag(&d);
        assert_eq!(m.at(&[2, 2]), 3.0);
        assert_eq!(m.at(&[0, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_len() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn rows_cols_blocks() {
        let m = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
        assert_eq!(m.row(1).as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m.col(2).as_slice(), &[2.0, 6.0, 10.0]);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
        let mut z = Tensor::zeros(&[3, 4]);
        z.set_block(1, 2, &Tensor::ones(&[2, 2]));
        assert_eq!(z.at(&[1, 2]), 1.0);
        assert_eq!(z.at(&[2, 3]), 1.0);
        assert_eq!(z.at(&[0, 0]), 0.0);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::ones(&[2, 2]);
        let mut b = a.clone();
        *b.at_mut(&[0, 1]) += 1e-9;
        assert!(a.allclose(&b, 1e-8));
        assert!(!a.allclose(&b, 1e-10));
        assert!((a.max_abs_diff(&b) - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn clone_shares_then_cow_detaches() {
        let a = Tensor::linspace(0.0, 5.0, 6).reshape(&[2, 3]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        // Reshape and row extraction also share.
        assert!(a.shares_storage(&a.reshape(&[6])));
        assert!(a.shares_storage(&a.row(1)));
        // First write detaches; the source is untouched.
        *b.at_mut(&[0, 0]) = 99.0;
        assert!(!a.shares_storage(&b));
        assert_eq!(a.at(&[0, 0]), 0.0);
        assert_eq!(b.at(&[0, 0]), 99.0);
    }

    #[test]
    fn windowed_row_cow_is_isolated() {
        let m = Tensor::from_vec((0..6).map(|x| x as f64).collect(), &[2, 3]);
        let mut r = m.row(1);
        assert_eq!(r.storage_offset(), 3);
        r.as_mut_slice()[0] = -1.0;
        // The row detached; the matrix is unchanged.
        assert_eq!(m.at(&[1, 0]), 3.0);
        assert_eq!(r.as_slice(), &[-1.0, 4.0, 5.0]);
        assert_eq!(r.storage_offset(), 0);
    }

    #[test]
    fn subtensor_windows_leading_axis() {
        let t = Tensor::linspace(0.0, 23.0, 24).reshape(&[2, 3, 4]);
        let s1 = t.subtensor(1);
        assert_eq!(s1.shape(), &[3, 4]);
        assert!(s1.shares_storage(&t));
        assert_eq!(s1.at(&[0, 0]), 12.0);
        assert_eq!(s1.at(&[2, 3]), 23.0);
    }

    #[test]
    fn set_block_with_aliasing_source() {
        // Writing a block of a tensor into itself must read pre-write data.
        let mut m = Tensor::from_vec((0..9).map(|x| x as f64).collect(), &[3, 3]);
        let b = m.block(0, 0, 2, 2);
        m.set_block(1, 1, &b);
        assert_eq!(m.at(&[1, 1]), 0.0);
        assert_eq!(m.at(&[2, 2]), 4.0);
    }

    #[test]
    fn from_shared_windows_one_allocation() {
        let storage = Arc::new((0..8).map(|x| x as f64).collect::<Vec<_>>());
        let a = Tensor::from_shared(Arc::clone(&storage), 0, &[2, 2]);
        let b = Tensor::from_shared(storage, 4, &[2, 2]);
        assert!(a.shares_storage(&b));
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn default_is_consistent_empty_tensor() {
        let t = Tensor::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.as_slice(), &[] as &[f64]);
        assert_eq!(t, t.clone());
    }

    #[test]
    fn into_vec_handles_shared_and_windowed() {
        let a = Tensor::linspace(0.0, 3.0, 4).reshape(&[2, 2]);
        let keep = a.clone();
        assert_eq!(a.into_vec(), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(keep.row(1).into_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn f32_tensors_share_and_cow_like_f64() {
        let a = TensorF32::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.as_mut_slice()[0] = 9.0;
        assert!(!a.shares_storage(&b));
        assert_eq!(a.at(&[0, 0]), 1.0);
        assert_eq!(b.at(&[0, 0]), 9.0);
        // f32 slabs back views too.
        let t = a.t_view();
        assert_eq!(t.at(&[1, 0]), 2.0);
        assert_eq!(t.materialize().as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn dtype_conversions_round_trip() {
        let a = Tensor::from_vec(vec![0.5, -1.25, 0.1, 3.0], &[2, 2]);
        let narrow = a.to_f32();
        assert_eq!(narrow.shape(), &[2, 2]);
        assert_eq!(narrow.at(&[0, 1]), -1.25f32);
        // 0.1 rounds; 0.5/-1.25/3.0 are exact in f32.
        let wide = narrow.to_f64();
        assert_eq!(wide.at(&[0, 0]), 0.5);
        assert_eq!(wide.at(&[1, 0]), 0.1f32 as f64);
        assert_ne!(wide.at(&[1, 0]), 0.1);
    }
}
