//! Strided, zero-copy views into tensor storage.
//!
//! A [`View`] is an offset + per-axis strides window into the same
//! `Arc<Vec<T>>` buffer a [`TensorBase`] owns — generic over the element
//! dtype like the tensors themselves, so f32 inference slabs back views
//! exactly as f64 training tensors do. Views express slicing, transposition
//! and tile extraction without touching the data; they materialize back
//! into contiguous tensors only when (and if) a kernel needs contiguity —
//! and even then [`ViewBase::materialize`] is zero-copy for views that are
//! already contiguous.

use crate::element::Element;
use crate::tensor::TensorBase;
use std::sync::Arc;

/// A non-owning, possibly non-contiguous window into tensor storage.
///
/// # Examples
///
/// ```
/// use adept_tensor::Tensor;
///
/// let m = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4]);
/// let t = m.view().transpose();          // zero-copy transpose
/// assert_eq!(t.shape(), &[4, 3]);
/// assert_eq!(t.at(&[1, 2]), m.at(&[2, 1]));
/// let tile = m.block_view(1, 1, 2, 2);   // zero-copy tile
/// assert_eq!(tile.materialize().as_slice(), &[5.0, 6.0, 9.0, 10.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ViewBase<T> {
    data: Arc<Vec<T>>,
    offset: usize,
    dims: Vec<usize>,
    strides: Vec<usize>,
}

/// The default `f64` view.
pub type View = ViewBase<f64>;

impl<T: Element> ViewBase<T> {
    /// Views the whole of `t` with its natural row-major strides.
    pub fn of(t: &TensorBase<T>) -> ViewBase<T> {
        ViewBase {
            data: t.storage(),
            offset: t.storage_offset(),
            dims: t.shape().to_vec(),
            strides: t.shape_obj().strides(),
        }
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        &self.dims
    }

    /// Per-axis strides in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Offset of the first element within the backing storage.
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the view holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view and `t` share one allocation.
    pub fn shares_storage(&self, t: &TensorBase<T>) -> bool {
        Arc::ptr_eq(&self.data, &t.storage())
    }

    /// Whether the elements are laid out contiguously in row-major order.
    pub fn is_contiguous(&self) -> bool {
        let mut expect = 1;
        for (d, s) in self.dims.iter().zip(&self.strides).rev() {
            if *d != 1 && *s != expect {
                return false;
            }
            expect *= d;
        }
        true
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> T {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = self.offset;
        for (d, (&i, (&n, &s))) in index
            .iter()
            .zip(self.dims.iter().zip(&self.strides))
            .enumerate()
        {
            assert!(i < n, "index {i} out of bounds for dim {d} of extent {n}");
            off += i * s;
        }
        self.data[off]
    }

    /// Restricts axis `axis` to `[start, start + len)` (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the axis or range is out of bounds.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> ViewBase<T> {
        assert!(axis < self.rank(), "axis {axis} out of bounds");
        assert!(
            start + len <= self.dims[axis],
            "slice [{start}, {}) exceeds extent {}",
            start + len,
            self.dims[axis]
        );
        let mut out = self.clone();
        out.offset += start * self.strides[axis];
        out.dims[axis] = len;
        out
    }

    /// Swaps the last two axes (zero-copy transpose).
    ///
    /// # Panics
    ///
    /// Panics on views of rank < 2.
    pub fn transpose(&self) -> ViewBase<T> {
        assert!(self.rank() >= 2, "transpose needs rank >= 2");
        let mut out = self.clone();
        let r = out.dims.len();
        out.dims.swap(r - 2, r - 1);
        out.strides.swap(r - 2, r - 1);
        out
    }

    /// Drops a leading axis of extent 1 (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics unless the leading axis has extent 1.
    pub fn squeeze0(&self) -> ViewBase<T> {
        assert!(
            self.rank() >= 1 && self.dims[0] == 1,
            "squeeze0 needs a leading axis of extent 1"
        );
        let mut out = self.clone();
        out.dims.remove(0);
        out.strides.remove(0);
        out
    }

    /// The sub-view at index `i` of the leading axis (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 views or out-of-bounds `i`.
    pub fn index0(&self, i: usize) -> ViewBase<T> {
        self.slice(0, i, 1).squeeze0()
    }

    /// Copies the view's elements in row-major order into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != self.len()`.
    pub fn copy_into(&self, dst: &mut [T]) {
        assert_eq!(dst.len(), self.len(), "destination length mismatch");
        if self.is_empty() {
            return;
        }
        // Fast path: the innermost axis is unit-stride, copy row slabs.
        let rank = self.rank();
        if rank == 0 {
            dst[0] = self.data[self.offset];
            return;
        }
        let inner = self.dims[rank - 1];
        let inner_contig = self.strides[rank - 1] == 1 && inner > 0;
        let outer: usize = self.dims[..rank - 1].iter().product();
        let mut idx = vec![0usize; rank - 1];
        for o in 0..outer {
            let mut off = self.offset;
            for (d, &i) in idx.iter().enumerate() {
                off += i * self.strides[d];
            }
            let row = &mut dst[o * inner..(o + 1) * inner];
            if inner_contig {
                row.copy_from_slice(&self.data[off..off + inner]);
            } else {
                let s = self.strides[rank - 1];
                for (j, out) in row.iter_mut().enumerate() {
                    *out = self.data[off + j * s];
                }
            }
            // Odometer increment over the outer axes.
            for d in (0..rank - 1).rev() {
                idx[d] += 1;
                if idx[d] < self.dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Converts to a contiguous [`TensorBase`].
    ///
    /// Zero-copy when the view is already contiguous (the tensor windows the
    /// same storage); otherwise performs one tight strided copy.
    pub fn materialize(&self) -> TensorBase<T> {
        if self.is_contiguous() {
            return TensorBase::from_shared(Arc::clone(&self.data), self.offset, &self.dims);
        }
        let mut out = vec![T::ZERO; self.len()];
        self.copy_into(&mut out);
        TensorBase::from_vec(out, &self.dims)
    }

    pub(crate) fn storage_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::{Tensor, TensorF32};

    fn m34() -> Tensor {
        Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[3, 4])
    }

    #[test]
    fn full_view_is_contiguous_and_zero_copy() {
        let m = m34();
        let v = m.view();
        assert!(v.is_contiguous());
        assert!(v.shares_storage(&m));
        let back = v.materialize();
        assert!(back.shares_storage(&m));
        assert_eq!(back, m);
    }

    #[test]
    fn transpose_view_matches_elementwise() {
        let m = m34();
        let t = m.view().transpose();
        assert_eq!(t.shape(), &[4, 3]);
        assert!(!t.is_contiguous());
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), m.at(&[j, i]));
            }
        }
        let mat = t.materialize();
        assert!(!mat.shares_storage(&m));
        assert_eq!(mat.at(&[2, 1]), m.at(&[1, 2]));
    }

    #[test]
    fn slices_and_tiles() {
        let m = m34();
        let rows = m.view().slice(0, 1, 2);
        assert_eq!(rows.shape(), &[2, 4]);
        assert!(rows.is_contiguous());
        assert_eq!(rows.at(&[0, 0]), 4.0);
        let tile = m.block_view(1, 1, 2, 2);
        assert_eq!(tile.shape(), &[2, 2]);
        assert!(!tile.is_contiguous());
        assert_eq!(tile.materialize().as_slice(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn row_slices_of_matrix_are_contiguous_windows() {
        let m = m34();
        let r = m.view().slice(0, 2, 1);
        assert!(r.is_contiguous());
        let mat = r.materialize();
        assert!(mat.shares_storage(&m));
        assert_eq!(mat.shape(), &[1, 4]);
        assert_eq!(mat.as_slice(), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn index0_walks_batches() {
        let t = Tensor::linspace(0.0, 23.0, 24).reshape(&[2, 3, 4]);
        let b1 = t.view().index0(1);
        assert_eq!(b1.shape(), &[3, 4]);
        assert_eq!(b1.at(&[0, 0]), 12.0);
        let mat = b1.materialize();
        assert!(mat.shares_storage(&t), "contiguous batch item is zero-copy");
    }

    #[test]
    fn copy_into_strided() {
        let m = m34();
        let t = m.view().transpose();
        let mut dst = vec![0.0; 12];
        t.copy_into(&mut dst);
        assert_eq!(dst[..4], [0.0, 4.0, 8.0, 1.0]);
    }

    #[test]
    fn f32_views_window_f32_slabs() {
        // The dtype axis reaches views: f32 slabs slice, transpose and
        // materialize exactly like f64 ones, zero-copy when contiguous.
        let m = TensorF32::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let v = m.view();
        assert!(v.is_contiguous() && v.shares_storage(&m));
        let t = v.transpose();
        assert_eq!(t.at(&[2, 1]), m.at(&[1, 2]));
        let row = m.view().slice(0, 1, 1);
        assert!(row.materialize().shares_storage(&m));
    }

    #[test]
    #[should_panic(expected = "exceeds extent")]
    fn slice_bounds_checked() {
        let m = m34();
        let _ = m.view().slice(1, 2, 3);
    }
}
