//! Shape bookkeeping: dimension lists, stride computation, broadcasting.

use std::fmt;

/// A tensor shape: an ordered list of dimension extents.
///
/// Row-major (C order) layout is assumed throughout the workspace.
///
/// # Examples
///
/// ```
/// use adept_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let strides = self.strides();
        let mut off = 0;
        for (d, (&i, &n)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < n, "index {i} out of bounds for dim {d} of extent {n}");
            off += i * strides[d];
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// Returns `None` when the shapes are incompatible.
///
/// # Examples
///
/// ```
/// use adept_tensor::broadcast_shapes;
///
/// assert_eq!(broadcast_shapes(&[4, 1], &[3]), Some(vec![4, 3]));
/// assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    seen.insert(s.offset(&[i, j, k]));
                }
            }
        }
        assert_eq!(seen.len(), 24);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn broadcasting_rules() {
        assert_eq!(broadcast_shapes(&[1], &[7]), Some(vec![7]));
        assert_eq!(broadcast_shapes(&[8, 1, 6], &[7, 1]), Some(vec![8, 7, 6]));
        assert_eq!(broadcast_shapes(&[], &[2, 2]), Some(vec![2, 2]));
        assert_eq!(broadcast_shapes(&[3], &[4]), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
