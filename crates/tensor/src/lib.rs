//! Dense dual-precision tensor substrate for the ADEPT reproduction.
//!
//! This crate is the numeric foundation everything else builds on. Since the
//! zero-copy refactor it is organized around these ideas:
//!
//! * **Shared, copy-on-write storage with a dtype axis** — a
//!   [`TensorBase<T>`] is a contiguous window into an `Arc<Vec<T>>`, where
//!   `T` is an [`Element`] (`f64` or `f32`). [`Tensor`] remains the `f64`
//!   alias and the only dtype autodiff/training ever sees; [`TensorF32`]
//!   backs the f32 inference mode (see [`element`] for the "training stays
//!   f64" invariant). Clones, reshapes, row extraction, batch items
//!   ([`Tensor::subtensor`]) and autodiff tape reads are all
//!   reference-count bumps; the first mutation of a shared tensor detaches
//!   it onto exclusive storage. Aliasing is therefore never observable
//!   through writes.
//! * **Strided views** — a [`View`] is an offset + per-axis strides window
//!   over the same storage. Slicing, transposition and `K×K` tile
//!   extraction are pure stride arithmetic; [`View::materialize`] is
//!   zero-copy when the view is contiguous.
//! * **Batched, strided kernels over a register-blocked microkernel** —
//!   [`matmul_into`] (threaded GEMM with row- or column-partitioning, a
//!   packed MR×NR register-tile core for large tiles, generic over
//!   [`Element`]), [`matmul_view`] (GEMM straight off view
//!   strides), [`batched_matmul_into`] (all PTC tiles of a layer in one
//!   sweep, addressed by [`Tile`] descriptors) and
//!   [`batched_matmul_ragged_into`] (mixed-shape [`GemmSpec`] jobs, so the
//!   cropped edge tiles of non-multiple-of-K layers join the same sweep)
//!   avoid materializing operands entirely.
//! * **Batched broadcast kernels over a leading tile axis** —
//!   [`batched_row_combine`]/[`batched_row_scale`]/[`batched_row_dot`]
//!   (phase-rotation row broadcasts and their adjoints),
//!   [`Tensor::batched_permute_rows`] (crossing networks as row gathers)
//!   and [`Tensor::matmul_bcast_left`] (one shared factor against a whole
//!   `[T, K, K]` stack). These power the batched PTC unitary builder: one
//!   walk over the mesh blocks updates all `T` tiles' running products,
//!   with every element computed by the same scalar expression as the
//!   per-tile reference so results stay bit-identical.
//!
//! Elementwise maps, axis reductions and `im2col`/`col2im` for convolution
//! lowering (with [`im2col_into`] reusing a per-layer scratch buffer across
//! training steps) round out the API.
//!
//! # Examples
//!
//! ```
//! use adept_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert!(c.allclose(&a, 1e-12));
//!
//! // Views slice and transpose without copying.
//! let t = a.t_view();
//! assert_eq!(t.at(&[0, 1]), 3.0);
//! ```

mod batched;
mod conv;
pub mod element;
mod matmul;
mod ops;
pub mod pool;
mod random;
mod shape;
mod tensor;
mod view;

pub use batched::{batched_row_combine, batched_row_dot, batched_row_scale};
pub use conv::{col2im, im2col, im2col_into, im2col_slice_into, Conv2dGeometry};
pub use element::Element;
pub use matmul::{
    batched_matmul_into, batched_matmul_ragged_into, gemm_thread_count, matmul_into, matmul_view,
    set_gemm_threads, set_wide_gemm_cols, GemmSpec, Tile,
};
#[doc(hidden)]
pub use matmul::{gemm_micro_into, gemm_scalar_ref_into, matmul_into_one_axis_partition};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::{Tensor, TensorBase, TensorF32};
pub use view::{View, ViewBase};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_compiles() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::eye(2);
        assert!(a.matmul(&b).allclose(&a, 1e-12));
    }

    #[test]
    fn views_and_cow_interact() {
        let a = Tensor::linspace(0.0, 8.0, 9).reshape(&[3, 3]);
        let v = a.block_view(0, 0, 2, 2);
        let mut b = a.clone();
        *b.at_mut(&[0, 0]) = 100.0;
        // The view still reads the original storage.
        assert_eq!(v.at(&[0, 0]), 0.0);
        assert_eq!(b.at(&[0, 0]), 100.0);
    }
}
