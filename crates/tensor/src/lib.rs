//! Dense `f64` tensor kernel for the ADEPT reproduction.
//!
//! This crate is the numeric substrate everything else builds on: an owned,
//! row-major, dynamically shaped tensor with the operations the ADEPT stack
//! needs — elementwise maps, axis reductions, a threaded GEMM, transposes and
//! `im2col`/`col2im` for convolution lowering.
//!
//! # Examples
//!
//! ```
//! use adept_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert!(c.allclose(&a, 1e-12));
//! ```

mod conv;
mod matmul;
mod ops;
mod random;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use matmul::{matmul_into, set_gemm_threads};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_compiles() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::eye(2);
        assert!(a.matmul(&b).allclose(&a, 1e-12));
    }
}
