//! Batched elementwise/broadcast kernels over a leading batch axis.
//!
//! These are the building blocks of the batched PTC unitary builder: one
//! `[T, R, C]` buffer holds the running products of all `T` tiles and every
//! mesh block applies its phase rotation, coupler column and crossing
//! permutation to the whole stack at once. The kernels below are written so
//! each output element is computed by *exactly the same scalar expression*
//! as the per-tile reference path, which is what lets the batched builder
//! pin bit-equivalence against `tile_unitary`.

use crate::matmul::{batched_matmul_into, Tile};
use crate::tensor::Tensor;

fn dims3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(t.rank(), 3, "{what} must be rank 3, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1], t.shape()[2])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.rank(), 2, "{what} must be rank 2, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1])
}

/// Fused batched row-broadcast combine:
/// `out[t, i, j] = c[t, i]·a[t, i, j] + s[t, i]·b[t, i, j]`.
///
/// This is one phase-rotation half applied to all `T` tiles at once
/// (`R(Φ)` scales row `i` of the running product by `e^{-jφ_i}`; the real
/// part is `cosΦ⊙M_re + sinΦ⊙M_im`, the imaginary part is the same kernel
/// with `(cosΦ, −sinΦ)` on swapped operands). Each element is
/// `c·a + s·b` — the identical expression the per-tile path evaluates —
/// so results are bit-equal to the scalar reference.
///
/// # Panics
///
/// Panics unless `c`/`s` are `[T, R]` and `a`/`b` are `[T, R, C]` with
/// agreeing extents.
pub fn batched_row_combine(c: &Tensor, s: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    let (t, r, cols) = dims3(a, "batched_row_combine lhs");
    assert_eq!(b.shape(), a.shape(), "operand stacks must agree");
    assert_eq!(c.shape(), &[t, r], "row coefficients must be [T, R]");
    assert_eq!(s.shape(), &[t, r], "row coefficients must be [T, R]");
    let mut out = Tensor::zeros(&[t, r, cols]);
    let (cv, sv) = (c.as_slice(), s.as_slice());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let dst = out.as_mut_slice();
    for row in 0..t * r {
        let (ci, si) = (cv[row], sv[row]);
        let off = row * cols;
        let arow = &av[off..off + cols];
        let brow = &bv[off..off + cols];
        for (j, slot) in dst[off..off + cols].iter_mut().enumerate() {
            *slot = ci * arow[j] + si * brow[j];
        }
    }
    out
}

/// Batched row-broadcast scale: `out[t, i, j] = α·rows[t, i]·m[t, i, j]`.
///
/// The backward companion of [`batched_row_combine`] (each operand's
/// gradient is the upstream gradient scaled by its row coefficient).
///
/// # Panics
///
/// Panics unless `rows` is `[T, R]` and `m` is `[T, R, C]`.
pub fn batched_row_scale(rows: &Tensor, m: &Tensor, alpha: f64) -> Tensor {
    let (t, r, cols) = dims3(m, "batched_row_scale operand");
    assert_eq!(rows.shape(), &[t, r], "row coefficients must be [T, R]");
    let mut out = Tensor::zeros(&[t, r, cols]);
    let rv = rows.as_slice();
    let mv = m.as_slice();
    let dst = out.as_mut_slice();
    for row in 0..t * r {
        let coeff = alpha * rv[row];
        let off = row * cols;
        let src = &mv[off..off + cols];
        for (j, slot) in dst[off..off + cols].iter_mut().enumerate() {
            *slot = coeff * src[j];
        }
    }
    out
}

/// Batched per-row dot product: `out[t, i] = Σ_j a[t, i, j]·b[t, i, j]`.
///
/// Reduces a `[T, R, C]` gradient against a saved operand stack down to the
/// `[T, R]` shape of the broadcast row coefficients.
///
/// # Panics
///
/// Panics unless both stacks are `[T, R, C]` with equal shapes.
pub fn batched_row_dot(a: &Tensor, b: &Tensor) -> Tensor {
    let (t, r, cols) = dims3(a, "batched_row_dot lhs");
    assert_eq!(b.shape(), a.shape(), "operand stacks must agree");
    let mut out = Tensor::zeros(&[t, r]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let dst = out.as_mut_slice();
    for (row, slot) in dst.iter_mut().enumerate() {
        let off = row * cols;
        *slot = av[off..off + cols]
            .iter()
            .zip(&bv[off..off + cols])
            .map(|(x, y)| x * y)
            .sum();
    }
    out
}

impl Tensor {
    /// Permutation-as-gather fast path: `out[t, i, :] = self[t, src[i], :]`
    /// for every batch item.
    ///
    /// Left-multiplying by a permutation matrix `P` with `P[i, σ(i)] = 1`
    /// reorders rows; doing it as row-slab copies instead of a GEMM skips
    /// `K²` multiply-adds per row and is exact (copies, not arithmetic).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[T, R, C]` and `src` is a permutation-length
    /// index list into `0..R`.
    pub fn batched_permute_rows(&self, src: &[usize]) -> Tensor {
        let (t, r, cols) = dims3(self, "batched_permute_rows operand");
        assert_eq!(src.len(), r, "need one source row per output row");
        let mut out = Tensor::zeros(&[t, r, cols]);
        let sv = self.as_slice();
        let dst = out.as_mut_slice();
        for ti in 0..t {
            let base = ti * r * cols;
            for (i, &si) in src.iter().enumerate() {
                assert!(si < r, "source row {si} out of bounds for {r} rows");
                let d = base + i * cols;
                let s = base + si * cols;
                dst[d..d + cols].copy_from_slice(&sv[s..s + cols]);
            }
        }
        out
    }

    /// Shared-left batched matmul: `out[t] = op(self) · rhs[t]` where `self`
    /// is one `[m, k]` matrix broadcast over the whole `[T, k, n]` batch and
    /// `op` transposes when `trans_a` is set (a pure stride swap).
    ///
    /// This lowers the constant coupler/permutation columns of the batched
    /// unitary builder to a single [`batched_matmul_into`] sweep per mesh
    /// block: every batch item's left descriptor points at the same shared
    /// matrix, so nothing is replicated. Results are bit-identical to
    /// per-item [`Tensor::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul_bcast_left(&self, rhs: &Tensor, trans_a: bool) -> Tensor {
        let (ar, ac) = dims2(self, "matmul_bcast_left lhs");
        let (t, k2, n) = dims3(rhs, "matmul_bcast_left rhs");
        let (m, k) = if trans_a { (ac, ar) } else { (ar, ac) };
        assert_eq!(k, k2, "matmul_bcast_left inner dimension mismatch");
        let a_tile = if trans_a {
            Tile {
                offset: 0,
                row_stride: 1,
                col_stride: ac,
            }
        } else {
            Tile::contiguous(0, ac)
        };
        let a_tiles = vec![a_tile; t];
        let b_tiles: Vec<Tile> = (0..t).map(|i| Tile::contiguous(i * k2 * n, n)).collect();
        let c_tiles: Vec<Tile> = (0..t).map(|i| Tile::contiguous(i * m * n, n)).collect();
        let mut out = Tensor::zeros(&[t, m, n]);
        // SAFETY: c tiles are the disjoint per-batch slabs of `out`.
        unsafe {
            batched_matmul_into(
                self.as_slice(),
                &a_tiles,
                rhs.as_slice(),
                &b_tiles,
                out.as_mut_slice(),
                &c_tiles,
                m,
                k,
                n,
            );
        }
        out
    }

    /// Batch-summed product `Σ_t self[t] · rhs[t]ᵀ` of `[T, m, n]` by
    /// `[T, k, n]`, producing `[m, k]`.
    ///
    /// This is the gradient of a shared left operand: when one `[m, k]`
    /// matrix multiplies every batch item, its gradient sums the per-item
    /// outer products. Runs directly off row dot products — no transposes
    /// or per-item temporaries are materialized.
    ///
    /// # Panics
    ///
    /// Panics on rank, batch or trailing-dimension mismatch.
    pub fn matmul_sum_nt(&self, rhs: &Tensor) -> Tensor {
        let (t, m, n) = dims3(self, "matmul_sum_nt lhs");
        let (t2, k, n2) = dims3(rhs, "matmul_sum_nt rhs");
        assert_eq!(t, t2, "batch size mismatch");
        assert_eq!(n, n2, "trailing dimension mismatch");
        let mut out = Tensor::zeros(&[m, k]);
        let gv = self.as_slice();
        let bv = rhs.as_slice();
        let dst = out.as_mut_slice();
        for ti in 0..t {
            for i in 0..m {
                let g_row = &gv[(ti * m + i) * n..(ti * m + i + 1) * n];
                for p in 0..k {
                    let b_row = &bv[(ti * k + p) * n..(ti * k + p + 1) * n];
                    dst[i * k + p] += g_row.iter().zip(b_row).map(|(x, y)| x * y).sum::<f64>();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(shape: &[usize], scale: f64) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|i| ((i * 31 % 17) as f64 - 8.0) * scale)
                .collect(),
            shape,
        )
    }

    #[test]
    fn row_combine_matches_per_tile_expression() {
        let (t, r, cols) = (3, 4, 5);
        let c = arange(&[t, r], 0.1);
        let s = arange(&[t, r], 0.2);
        let a = arange(&[t, r, cols], 0.3);
        let b = arange(&[t, r, cols], 0.4);
        let got = batched_row_combine(&c, &s, &a, &b);
        for ti in 0..t {
            for i in 0..r {
                for j in 0..cols {
                    let want =
                        c.at(&[ti, i]) * a.at(&[ti, i, j]) + s.at(&[ti, i]) * b.at(&[ti, i, j]);
                    assert_eq!(got.at(&[ti, i, j]), want, "exact at ({ti},{i},{j})");
                }
            }
        }
    }

    #[test]
    fn row_scale_and_dot_are_adjoint() {
        // <scale(rows, m), g> == <rows, dot(g, m)> — the identity the
        // rotate backward pass relies on.
        let (t, r, cols) = (2, 3, 4);
        let rows = arange(&[t, r], 0.13);
        let m = arange(&[t, r, cols], 0.07);
        let g = arange(&[t, r, cols], 0.11);
        let lhs = batched_row_scale(&rows, &m, 1.0).dot(&g);
        let rhs = rows.dot(&batched_row_dot(&g, &m));
        assert!(
            (lhs - rhs).abs() < 1e-12,
            "adjoint violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn permute_rows_matches_matrix_product() {
        let (t, r, cols) = (3, 4, 4);
        let m = arange(&[t, r, cols], 0.21);
        let src = [2usize, 0, 3, 1];
        let mut p = Tensor::zeros(&[r, r]);
        for (i, &si) in src.iter().enumerate() {
            p.as_mut_slice()[i * r + si] = 1.0;
        }
        let got = m.batched_permute_rows(&src);
        for ti in 0..t {
            let want = p.matmul(&m.subtensor(ti));
            assert_eq!(got.subtensor(ti).as_slice(), want.as_slice());
        }
    }

    #[test]
    fn bcast_left_matches_per_item_matmul_bitwise() {
        let a = arange(&[3, 5], 0.17);
        let b = arange(&[4, 5, 2], 0.23);
        let got = a.matmul_bcast_left(&b, false);
        assert_eq!(got.shape(), &[4, 3, 2]);
        for t in 0..4 {
            let want = a.matmul(&b.subtensor(t));
            assert_eq!(got.subtensor(t).as_slice(), want.as_slice());
        }
        // Transposed left operand: stride swap, no materialization.
        let rhs = arange(&[2, 3, 4], 0.29);
        let got_t = a.matmul_bcast_left(&rhs, true);
        assert_eq!(got_t.shape(), &[2, 5, 4]);
        for t in 0..2 {
            let want = a.transpose().matmul(&rhs.subtensor(t));
            assert_eq!(got_t.subtensor(t).as_slice(), want.as_slice());
        }
    }

    #[test]
    fn matmul_sum_nt_matches_loop() {
        let g = arange(&[3, 2, 4], 0.31);
        let b = arange(&[3, 5, 4], 0.37);
        let got = g.matmul_sum_nt(&b);
        let mut want = Tensor::zeros(&[2, 5]);
        for t in 0..3 {
            want.axpy(1.0, &g.subtensor(t).matmul(&b.subtensor(t).transpose()));
        }
        assert!(got.allclose(&want, 1e-12));
    }
}
