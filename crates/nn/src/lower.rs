//! Lowering trained layers into a flat, tape-free step list.
//!
//! The inference compiler (`adept-infer`) cannot run the tape forward —
//! its whole point is to skip `Graph`/`Var` construction — so every layer
//! that wants to be servable lowers itself into a [`LoweredStep`]: a plain
//! value-level description (materialized weight matrices, running
//! statistics, pool geometry) that an executor can replay with nothing but
//! slice arithmetic.
//!
//! Weight materialization goes through the exact tape machinery a forward
//! pass would use — [`crate::mesh::prebuild_mesh_weights`] staging plus
//! `MeshWeight::build` on a throwaway graph — so the captured matrices are
//! **bit-identical** to what the tape forward multiplies by, including the
//! noise stream: lowering with seed `s` draws the same phase noise, in the
//! same order, as `evaluate_seeded` with seed `s`. The throwaway graph is
//! dropped before the plan ever runs; only the frozen tensors survive.

use crate::layers::Layer;
use crate::mesh::prebuild_mesh_weights;
use crate::param::{ForwardCtx, ParamStore};
use adept_autodiff::Graph;
use adept_tensor::{Conv2dGeometry, Tensor};

/// One value-level inference step, in forward order.
///
/// The variants mirror the workspace's layer zoo at the *arithmetic*
/// level: photonic and electronic linear layers both lower to
/// [`LoweredStep::Linear`] (the mesh is already folded into the frozen
/// matrix), and every convolution family lowers to [`LoweredStep::Conv2d`]
/// (im2col + GEMM + NCHW reorder, exactly the tape's lowering).
#[derive(Debug, Clone)]
pub enum LoweredStep {
    /// `y = x·Wᵀ + b`, with the transpose already materialized: `w_t` is
    /// `[in_features, out_features]`, bias `[out_features]`.
    Linear {
        /// Frozen transposed weight.
        w_t: Tensor,
        /// Frozen bias.
        bias: Tensor,
    },
    /// im2col-lowered convolution: `w` is `[out_channels, C·k·k]`.
    Conv2d {
        /// Frozen GEMM weight.
        w: Tensor,
        /// Frozen bias, `[out_channels]`.
        bias: Tensor,
        /// Input/kernel geometry.
        geom: Conv2dGeometry,
        /// Output channel count.
        out_channels: usize,
    },
    /// Eval-mode batch normalization over NCHW maps, per channel:
    /// `y = (x - mean[c]) * inv_std[c] * gamma[c] + beta[c]` — the same
    /// two-step arithmetic as the tape's `batch_norm2d_op`, so results are
    /// bit-identical (the affine is deliberately *not* folded).
    BatchNorm2d {
        /// Frozen running mean per channel.
        mean: Vec<f64>,
        /// Frozen `1 / sqrt(running_var + eps)` per channel.
        inv_std: Vec<f64>,
        /// Frozen scale per channel.
        gamma: Vec<f64>,
        /// Frozen shift per channel.
        beta: Vec<f64>,
    },
    /// `max(x, 0)` elementwise.
    Relu,
    /// `[N, …] → [N, features]`. Pure metadata — executors drop it.
    Flatten,
    /// Average pooling, square window with stride = kernel.
    AvgPool2d {
        /// Window size.
        kernel: usize,
    },
    /// Max pooling, square window with stride = kernel.
    MaxPool2d {
        /// Window size.
        kernel: usize,
    },
}

/// A layer that cannot lower itself (stateful in a way no [`LoweredStep`]
/// captures, or simply not yet taught to).
#[derive(Debug, Clone)]
pub struct LowerError {
    layer: String,
}

impl LowerError {
    /// Error naming the offending layer type.
    pub fn unsupported(layer: &str) -> Self {
        Self {
            layer: layer.to_string(),
        }
    }
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "layer `{}` has no tape-free lowering (implement Layer::lower)",
            self.layer
        )
    }
}

impl std::error::Error for LowerError {}

/// Lowers a trained model into its flat step list.
///
/// Runs the same staging walk as one evaluation batch — a throwaway graph,
/// an eval-mode [`ForwardCtx`] seeded with `seed`, and
/// [`prebuild_mesh_weights`] over the model's mesh weights — then asks each
/// layer to append its [`LoweredStep`]s. Photonic layers consume their
/// prebuilt variables, so frozen matrices (and any phase noise drawn under
/// `seed`) are bit-identical to what `evaluate_seeded(model, …, seed)`'s
/// first batch would multiply by.
///
/// # Errors
///
/// Returns [`LowerError`] if any layer lacks a lowering.
pub fn lower_model(
    model: &dyn Layer,
    store: &ParamStore,
    seed: u64,
) -> Result<Vec<LoweredStep>, LowerError> {
    lower_model_faulted(model, store, seed, None)
}

/// Like [`lower_model`], but every photonic weight is materialized on
/// hardware damaged by `faults`: the frozen matrices bake in the
/// scenario's dead/stuck shifters, dead couplers, frozen drift and
/// quantization, bit-identical to what `evaluate_faulted` would multiply
/// by. `None` (or an empty scenario) is exactly [`lower_model`].
///
/// # Errors
///
/// Returns [`LowerError`] if any layer lacks a lowering.
pub fn lower_model_faulted(
    model: &dyn Layer,
    store: &ParamStore,
    seed: u64,
    faults: Option<std::sync::Arc<adept_photonics::FaultScenario>>,
) -> Result<Vec<LoweredStep>, LowerError> {
    let graph = Graph::new();
    let ctx = ForwardCtx::with_faults(&graph, store, false, seed, faults);
    prebuild_mesh_weights(&ctx, &model.mesh_weights());
    let mut steps = Vec::new();
    model.lower(&ctx, &mut steps)?;
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu, Sequential};
    use crate::param::ParamStore;

    #[test]
    fn sequential_lowering_walks_layers_in_order() {
        let mut store = ParamStore::new();
        let mut seq = Sequential::new();
        seq.push(Flatten);
        seq.push(Linear::new(&mut store, "fc", 8, 4, 1));
        seq.push(Relu);
        let steps = lower_model(&seq, &store, 0).unwrap();
        assert_eq!(steps.len(), 3);
        assert!(matches!(steps[0], LoweredStep::Flatten));
        let LoweredStep::Linear { w_t, bias } = &steps[1] else {
            panic!("expected Linear step");
        };
        assert_eq!(w_t.shape(), vec![8, 4]);
        assert_eq!(bias.shape(), vec![4]);
        assert!(matches!(steps[2], LoweredStep::Relu));
    }

    #[test]
    fn linear_lowering_matches_tape_transpose_bitwise() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 6, 3, 2);
        let w = store.value(lin.param_ids()[0]).clone();
        let mut seq = Sequential::new();
        seq.push(lin);
        let steps = lower_model(&seq, &store, 0).unwrap();
        let LoweredStep::Linear { w_t, .. } = &steps[0] else {
            panic!("expected Linear step");
        };
        assert_eq!(w_t.as_slice(), w.transpose().as_slice());
    }

    #[test]
    fn unsupported_layer_reports_its_type() {
        struct Opaque;
        impl Layer for Opaque {
            fn forward<'g>(
                &mut self,
                _ctx: &ForwardCtx<'g, '_>,
                x: adept_autodiff::Var<'g>,
            ) -> adept_autodiff::Var<'g> {
                x
            }
        }
        let store = ParamStore::new();
        let err = lower_model(&Opaque, &store, 0).unwrap_err();
        assert!(err.to_string().contains("Opaque"), "{err}");
    }
}
