//! Photonic layers: weights materialized from photonic tensor cores.
//!
//! An ONN layer's weight `W ∈ R^{M×N}` is partitioned into `K×K` tiles
//! `W_pq = Re(U_pq · Σ_pq · V_pq)` (paper Eq. 1): the unitaries share one
//! searched/fixed circuit *topology* across tiles while phases `Φ` and the
//! diagonal `Σ` are per-tile trainable weights (Eq. 2). [`PtcWeight`]
//! implements that construction differentiably on the autodiff tape;
//! [`OnnLinear`] and [`OnnConv2d`] wrap it into layers. [`MziLinear`] is the
//! universal MZI-ONN baseline: it trains a dense weight (exactly the
//! expressiveness of an SVD-parametrized Clements mesh) and simulates phase
//! drift by decomposing each tile into MZI rotations, perturbing them and
//! reconstructing.
//!
//! # The batched unitary builder
//!
//! [`batched_tile_unitary`] stacks every tile's phases into one `[T, B, K]`
//! tensor and walks the `B` mesh blocks *once*, carrying a `[T, K, K]`
//! running product for all `T` tiles: the phase rotation is a two-node
//! row-broadcast, the constant coupler column one strided GEMM sweep shared
//! across the batch, the crossing network a row gather. The tape therefore
//! holds `O(B)` nodes per unitary instead of the `O(T·B)` chains
//! [`tile_unitary`] records — the scalar builder is kept as the reference
//! implementation and the batched path is pinned bit-equal to it.

use crate::layers::{cols_to_nchw, im2col_var_scratch, Layer};
use crate::lower::{LowerError, LoweredStep};
use crate::mesh::{build_mesh_weight, MeshWeight, StagedBuild};
use crate::param::{next_weight_uid, ForwardCtx, ParamId, ParamStore};
use adept_autodiff::{
    batched_permute_rows, batched_phase_rotate, batched_tile_product, batched_tile_product_grid,
    record_segment, record_segment_pair, stack, Graph, TapeSegment, Var,
};
use adept_linalg::{svd, CMatrix, C64};
use adept_photonics::clements::decompose;
use adept_photonics::{BlockMeshTopology, DeviceCount, FaultScenario, PhaseNoise};
use adept_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Builds the complex unitary of one tile from a fixed topology and a
/// `[B, K]` phase variable, returning `(re, im)` matrix variables.
///
/// The construction applies `U = Π_b P_b·T_b·R(Φ_b)` right-to-left with
/// structured products, all differentiable with respect to the phases.
///
/// This is the **scalar reference implementation**: it records one node
/// chain per tile, so building `T` tiles costs `O(T·B)` tape nodes. Hot
/// paths use [`batched_tile_unitary`], which is pinned bit-equivalent.
///
/// # Panics
///
/// Panics if the phase variable shape does not match the topology.
pub fn tile_unitary<'g>(
    ctx: &ForwardCtx<'g, '_>,
    topo: &BlockMeshTopology,
    phases: Var<'g>,
) -> (Var<'g>, Var<'g>) {
    let k = topo.k();
    let b = topo.blocks().len();
    assert_eq!(phases.shape(), vec![b, k], "phases must be [B, K]");
    let graph = ctx.graph;
    let mut m_re = graph.constant(Tensor::eye(k));
    let mut m_im = graph.constant(Tensor::zeros(&[k, k]));
    // Rightmost block acts first: iterate blocks in reverse.
    for (bi, block) in topo.blocks().iter().enumerate().rev() {
        // R(Φ): scale row i by e^{-jφ_i}.
        let positions: Vec<usize> = (0..k).map(|j| bi * k + j).collect();
        let phi = phases.reshape(&[b * k]).gather(&positions).reshape(&[k, 1]);
        let c = phi.cos();
        let s = phi.sin();
        let new_re = c.mul(m_re).add(s.mul(m_im));
        let new_im = c.mul(m_im).sub(s.mul(m_re));
        m_re = new_re;
        m_im = new_im;
        // T: block-diagonal coupler column (constant structure).
        if block.dc_count() > 0 {
            let t = block.coupler_column_matrix(k);
            let t_re = ctx.constant(t.re());
            let t_im = ctx.constant(t.im());
            let new_re = t_re.matmul(m_re).sub(t_im.matmul(m_im));
            let new_im = t_re.matmul(m_im).add(t_im.matmul(m_re));
            m_re = new_re;
            m_im = new_im;
        }
        // P: crossing permutation (constant).
        if !block.perm.is_identity() {
            let p = ctx.constant(block.perm.to_matrix());
            m_re = p.matmul(m_re);
            m_im = p.matmul(m_im);
        }
    }
    (m_re, m_im)
}

/// Builds the complex unitaries of **all** `T` tiles at once from a fixed
/// topology and a stacked `[T, B, K]` phase variable, returning
/// `(re, im)` stacks of shape `[T, K, K]`.
///
/// One walk over the `B` mesh blocks updates every tile's running product:
/// `R(Φ_b)` is a two-node batched row-broadcast
/// ([`batched_phase_rotate`]), the constant coupler column a shared-left
/// strided GEMM sweep ([`Var::matmul_bcast_left`]) and the crossing
/// permutation a row gather ([`batched_permute_rows`]). The tape holds
/// `O(B)` nodes regardless of `T`, and every value is bit-identical to the
/// per-tile [`tile_unitary`] chain.
///
/// # Panics
///
/// Panics if the phase variable shape does not match the topology.
pub fn batched_tile_unitary<'g>(
    ctx: &ForwardCtx<'g, '_>,
    topo: &BlockMeshTopology,
    phases: Var<'g>,
) -> (Var<'g>, Var<'g>) {
    batched_tile_unitary_on(ctx.graph, topo, phases)
}

/// [`batched_tile_unitary`] against a bare [`Graph`] — the form the
/// parallel build scheduler records onto private sub-tapes, where no
/// [`ForwardCtx`] exists (parameters arrive as segment imports).
pub fn batched_tile_unitary_on<'g>(
    graph: &'g Graph,
    topo: &BlockMeshTopology,
    phases: Var<'g>,
) -> (Var<'g>, Var<'g>) {
    let k = topo.k();
    let b = topo.blocks().len();
    let shape = phases.shape();
    assert_eq!(shape.len(), 3, "phases must be [T, B, K]");
    assert_eq!(&shape[1..], &[b, k], "phases must be [T, B, K]");
    let t = shape[0];
    let mut m_re = graph.constant(Tensor::eye_batched(t, k));
    let mut m_im = graph.constant(Tensor::zeros(&[t, k, k]));
    // Rightmost block acts first: iterate blocks in reverse.
    for (bi, block) in topo.blocks().iter().enumerate().rev() {
        // R(Φ_b): one [T, K] phase column scales the rows of every tile.
        let phi = phases.index_axis1(bi);
        let (new_re, new_im) = batched_phase_rotate(phi, m_re, m_im);
        m_re = new_re;
        m_im = new_im;
        // T_b: the constant coupler column, shared across the batch.
        if block.dc_count() > 0 {
            let tmat = block.coupler_column_matrix(k);
            let t_re = graph.constant(tmat.re());
            let t_im = graph.constant(tmat.im());
            let new_re = t_re
                .matmul_bcast_left(m_re)
                .sub(t_im.matmul_bcast_left(m_im));
            let new_im = t_re
                .matmul_bcast_left(m_im)
                .add(t_im.matmul_bcast_left(m_re));
            m_re = new_re;
            m_im = new_im;
        }
        // P_b: crossing permutation as a batched row gather.
        if !block.perm.is_identity() {
            let src = block.perm.as_slice();
            m_re = batched_permute_rows(m_re, src);
            m_im = batched_permute_rows(m_im, src);
        }
    }
    (m_re, m_im)
}

/// A weight matrix realized by a photonic tensor core with a fixed
/// topology: `K×K` tiles of `Re(U·Σ·V)` with shared topology and per-tile
/// phases.
pub struct PtcWeight {
    uid: u64,
    k: usize,
    out_features: usize,
    in_features: usize,
    grid_rows: usize,
    grid_cols: usize,
    topo_u: BlockMeshTopology,
    topo_v: BlockMeshTopology,
    phases_u: Vec<ParamId>,
    phases_v: Vec<ParamId>,
    sigma: Vec<ParamId>,
    /// Gaussian phase-drift std applied on every build when positive
    /// (variation-aware training and noisy evaluation).
    pub phase_noise_std: f64,
}

impl PtcWeight {
    /// Registers the per-tile parameters for an `out × in` weight.
    ///
    /// # Panics
    ///
    /// Panics if the topologies disagree on `k` or features are zero.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        topo_u: BlockMeshTopology,
        topo_v: BlockMeshTopology,
        seed: u64,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "features must be positive"
        );
        assert_eq!(topo_u.k(), topo_v.k(), "U and V topologies must share k");
        let k = topo_u.k();
        let grid_rows = out_features.div_ceil(k);
        let grid_cols = in_features.div_ceil(k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut phases_u = Vec::new();
        let mut phases_v = Vec::new();
        let mut sigma = Vec::new();
        let bu = topo_u.blocks().len();
        let bv = topo_v.blocks().len();
        let sig_bound = (6.0 * k as f64 / in_features.max(1) as f64).sqrt().min(2.0);
        for tile in 0..grid_rows * grid_cols {
            phases_u.push(store.register(
                format!("{name}.u{tile}"),
                Tensor::rand_uniform(
                    &mut rng,
                    &[bu, k],
                    -std::f64::consts::PI,
                    std::f64::consts::PI,
                ),
                1e-4,
            ));
            phases_v.push(store.register(
                format!("{name}.v{tile}"),
                Tensor::rand_uniform(
                    &mut rng,
                    &[bv, k],
                    -std::f64::consts::PI,
                    std::f64::consts::PI,
                ),
                1e-4,
            ));
            sigma.push(store.register(
                format!("{name}.s{tile}"),
                Tensor::rand_uniform(&mut rng, &[k], -sig_bound, sig_bound),
                1e-4,
            ));
        }
        Self {
            uid: next_weight_uid(),
            k,
            out_features,
            in_features,
            grid_rows,
            grid_cols,
            topo_u,
            topo_v,
            phases_u,
            phases_v,
            sigma,
            phase_noise_std: 0.0,
        }
    }

    /// PTC size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Process-unique id of this weight (key of the per-step prebuilt
    /// cache; see [`crate::build::prebuild_ptc_weights`]).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Device count of the underlying photonic core (U and V meshes).
    pub fn device_count(&self) -> DeviceCount {
        self.topo_u.ptc_device_count(&self.topo_v)
    }

    /// All parameter handles.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.phases_u
            .iter()
            .chain(&self.phases_v)
            .chain(&self.sigma)
            .copied()
            .collect()
    }

    /// Draws per-tile phase noise for both meshes, preserving the sampling
    /// order of the per-tile path (tile 0's U noise, tile 0's V noise,
    /// tile 1's U noise, …) so noisy builds stay stream-compatible.
    fn sample_phase_noise(&self, ctx: &ForwardCtx<'_, '_>, n_tiles: usize) -> (Tensor, Tensor) {
        let noise = PhaseNoise::new(self.phase_noise_std);
        let k = self.k;
        let (bu, bv) = (self.topo_u.blocks().len(), self.topo_v.blocks().len());
        let mut nu = Tensor::zeros(&[n_tiles, bu, k]);
        let mut nv = Tensor::zeros(&[n_tiles, bv, k]);
        ctx.with_rng(|rng| {
            let (du, dv) = (nu.as_mut_slice(), nv.as_mut_slice());
            for tile in 0..n_tiles {
                for slot in &mut du[tile * bu * k..(tile + 1) * bu * k] {
                    *slot = noise.sample(rng);
                }
                for slot in &mut dv[tile * bv * k..(tile + 1) * bv * k] {
                    *slot = noise.sample(rng);
                }
            }
        });
        (nu, nv)
    }

    /// Computes the stage-time fault payload for an active
    /// [`FaultScenario`]: per-phase delta constants such that
    /// `programmed + delta` is the faulted realized phase (recomputed
    /// against the *current* parameter values each build, so a dead
    /// shifter stays pinned at 0 while gradients keep flowing
    /// straight-through to the programmed phase), plus the degraded mesh
    /// topologies under coupler faults.
    ///
    /// Fault sites are keyed by the tile-0 parameter names (`"{name}.u0"`
    /// / `"{name}.v0"`): a PTC time-multiplexes one physical mesh across
    /// all tiles, so every tile shares the same damage.
    fn stage_faults(
        &self,
        ctx: &ForwardCtx<'_, '_>,
        scenario: &FaultScenario,
        noise: &[Tensor],
        n_tiles: usize,
    ) -> (Vec<Tensor>, Option<(BlockMeshTopology, BlockMeshTopology)>) {
        let k = self.k;
        let key_u = ctx.store.name(self.phases_u[0]);
        let key_v = ctx.store.name(self.phases_v[0]);
        let (bu, bv) = (self.topo_u.blocks().len(), self.topo_v.blocks().len());
        let mut du = Tensor::zeros(&[n_tiles, bu, k]);
        let mut dv = Tensor::zeros(&[n_tiles, bv, k]);
        let fill =
            |delta: &mut [f64], ids: &[ParamId], b: usize, key: &str, noise: Option<&Tensor>| {
                for (tile, &id) in ids.iter().enumerate() {
                    let phases = ctx.store.value(id).as_slice();
                    for block in 0..b {
                        for wire in 0..k {
                            let idx = block * k + wire;
                            let programmed = phases[idx]
                                + noise.map_or(0.0, |n| n.as_slice()[tile * b * k + idx]);
                            let site = FaultScenario::shifter_site(key, block, wire);
                            delta[tile * b * k + idx] =
                                scenario.apply_phase(site, programmed) - programmed;
                        }
                    }
                }
            };
        let (nu, nv) = match noise {
            [nu, nv] => (Some(nu), Some(nv)),
            _ => (None, None),
        };
        fill(du.as_mut_slice(), &self.phases_u, bu, key_u, nu);
        fill(dv.as_mut_slice(), &self.phases_v, bv, key_v, nv);
        let topos = if scenario.has_coupler_faults() {
            Some((
                scenario.faulted_topology(key_u, &self.topo_u),
                scenario.faulted_topology(key_v, &self.topo_v),
            ))
        } else {
            None
        };
        (vec![du, dv], topos)
    }

    /// Materializes the `[out_features, in_features]` weight on the tape.
    ///
    /// All tiles' unitaries are built by **one** walk over the mesh blocks
    /// ([`batched_tile_unitary`]) on stacked `[T, B, K]` phases, and all
    /// tile products `Re(UΣ·V)` land in their grid cells through one ragged
    /// batched GEMM sweep ([`batched_tile_product_grid`]) that crops edge
    /// tiles in place. The tape holds `O(B)` nodes per mesh — independent
    /// of the tile count — and the values are bit-identical to the per-tile
    /// reference path ([`PtcWeight::build_per_tile`]).
    ///
    /// Internally the build runs the [`MeshWeight`] three-phase walk
    /// through [`build_mesh_weight`]; the splice invariant of
    /// [`adept_autodiff::record_segment`] guarantees it records the exact
    /// node sequence of the historical monolithic builder. When the
    /// parallel scheduler ([`crate::mesh::prebuild_mesh_weights`]) already
    /// materialized this weight for the step, that variable is returned
    /// instead.
    pub fn build<'g>(&self, ctx: &ForwardCtx<'g, '_>) -> Var<'g> {
        build_mesh_weight(ctx, self)
    }
}

impl<'g> MeshWeight<'g> for PtcWeight {
    fn uid(&self) -> u64 {
        self.uid
    }

    fn param_ids(&self) -> Vec<ParamId> {
        PtcWeight::param_ids(self)
    }

    fn noise_active(&self) -> bool {
        self.phase_noise_std > 0.0
    }

    /// Build phase 1 (main thread): creates the phase-parameter leaves on
    /// the shared tape and draws this weight's phase noise from the shared
    /// RNG stream — both in the exact order of the serial walk, so staging
    /// all weights in layer order pins leaf ids and noise draws regardless
    /// of how phase 2 is scheduled.
    fn stage(&self, ctx: &ForwardCtx<'g, '_>) -> StagedBuild {
        let n_tiles = self.grid_rows * self.grid_cols;
        let mut imports = Vec::with_capacity(2 * n_tiles);
        for &id in &self.phases_u {
            imports.push(ctx.param(id).export_import());
        }
        for &id in &self.phases_v {
            imports.push(ctx.param(id).export_import());
        }
        let noise = if self.phase_noise_std > 0.0 {
            let (nu, nv) = self.sample_phase_noise(ctx, n_tiles);
            vec![nu, nv]
        } else {
            Vec::new()
        };
        let (fault_deltas, fault_topos) = match ctx.fault_scenario() {
            Some(scenario) => self.stage_faults(ctx, scenario, &noise, n_tiles),
            None => (Vec::new(), None),
        };
        StagedBuild {
            imports,
            noise,
            fault_deltas,
            fault_topos,
        }
    }

    /// Build phase 2 (any thread): records `[stack, stack, noise, fault
    /// delta, U-walk, V-walk]` on a private sub-tape (the noise and fault
    /// adds only when active, and the walks against the fault-degraded
    /// topologies when couplers died). With `parallel_uv` set the two mesh
    /// walks — independent until the tile product — record as two sub-tape
    /// builds running concurrently on the shared pool, spliced back in
    /// U-then-V order so the node sequence is identical to the serial walk.
    fn record_build_segment(&self, staged: &StagedBuild, parallel_uv: bool) -> TapeSegment {
        let n_tiles = self.grid_rows * self.grid_cols;
        record_segment(&staged.imports, |g, proxies| {
            let (pu, pv) = proxies.split_at(n_tiles);
            let mut su = stack(pu); // [T, Bu, K]
            let mut sv = stack(pv); // [T, Bv, K]
            if let [nu, nv] = staged.noise.as_slice() {
                su = su.add(g.constant(nu.clone()));
                sv = sv.add(g.constant(nv.clone()));
            }
            if let [fu, fv] = staged.fault_deltas.as_slice() {
                su = su.add(g.constant(fu.clone()));
                sv = sv.add(g.constant(fv.clone()));
            }
            let (topo_u, topo_v) = match &staged.fault_topos {
                Some((tu, tv)) => (tu, tv),
                None => (&self.topo_u, &self.topo_v),
            };
            let (u_re, u_im, v_re, v_im) = if parallel_uv {
                let (seg_u, seg_v) = record_segment_pair(
                    &[su.export_import()],
                    |g2, v| {
                        let (re, im) = batched_tile_unitary_on(g2, topo_u, v[0]);
                        vec![re, im]
                    },
                    &[sv.export_import()],
                    |g2, v| {
                        let (re, im) = batched_tile_unitary_on(g2, topo_v, v[0]);
                        vec![re, im]
                    },
                );
                let u = g.splice(seg_u);
                let v = g.splice(seg_v);
                (u[0], u[1], v[0], v[1])
            } else {
                let (u_re, u_im) = batched_tile_unitary_on(g, topo_u, su);
                let (v_re, v_im) = batched_tile_unitary_on(g, topo_v, sv);
                (u_re, u_im, v_re, v_im)
            };
            vec![u_re, u_im, v_re, v_im]
        })
    }

    /// Build phase 3 (main thread): splices the mesh-walk segment into the
    /// step tape, creates the Σ leaves and records the fused `Re(UΣ·V)`
    /// grid product — the serial walk's exact tail.
    fn finish_build(&self, ctx: &ForwardCtx<'g, '_>, segment: TapeSegment) -> Var<'g> {
        let k = self.k;
        let n_tiles = self.grid_rows * self.grid_cols;
        let spliced = ctx.graph.splice(segment);
        let (u_re, u_im, v_re, v_im) = (spliced[0], spliced[1], spliced[2], spliced[3]);
        // Σ broadcasts over U's columns: [T, 1, K] against [T, K, K].
        let sigs: Vec<Var<'g>> = self.sigma.iter().map(|&id| ctx.param(id)).collect();
        let sig = stack(&sigs).reshape(&[n_tiles, 1, k]);
        let us_re = u_re.mul(sig);
        let us_im = u_im.mul(sig);
        batched_tile_product_grid(
            us_re,
            us_im,
            v_re,
            v_im,
            self.grid_rows,
            self.grid_cols,
            self.out_features,
            self.in_features,
        )
    }
}

impl PtcWeight {
    /// The per-tile **reference-only** build: one [`tile_unitary`] node
    /// chain per tile followed by the stacked tile product. It exists to
    /// pin the batched path bit-equal to the paper's literal per-tile
    /// construction (bit-equivalence tests, the `unitary_build` benchmark)
    /// and is never on a hot path — production code always goes through
    /// [`PtcWeight::build`] / the [`MeshWeight`] engine. Fault scenarios
    /// are deliberately not applied here: the reference pins the healthy
    /// construction only.
    pub fn build_per_tile<'g>(&self, ctx: &ForwardCtx<'g, '_>) -> Var<'g> {
        let k = self.k;
        let n_tiles = self.grid_rows * self.grid_cols;
        let noise = if self.phase_noise_std > 0.0 {
            Some(PhaseNoise::new(self.phase_noise_std))
        } else {
            None
        };
        let mut us_re_tiles = Vec::with_capacity(n_tiles);
        let mut us_im_tiles = Vec::with_capacity(n_tiles);
        let mut v_re_tiles = Vec::with_capacity(n_tiles);
        let mut v_im_tiles = Vec::with_capacity(n_tiles);
        for tile in 0..n_tiles {
            let mut pu = ctx.param(self.phases_u[tile]);
            let mut pv = ctx.param(self.phases_v[tile]);
            if let Some(n) = &noise {
                let nu = ctx.with_rng(|rng| {
                    Tensor::from_vec(
                        (0..pu.shape().iter().product::<usize>())
                            .map(|_| n.sample(rng))
                            .collect(),
                        &pu.shape(),
                    )
                });
                let nv = ctx.with_rng(|rng| {
                    Tensor::from_vec(
                        (0..pv.shape().iter().product::<usize>())
                            .map(|_| n.sample(rng))
                            .collect(),
                        &pv.shape(),
                    )
                });
                pu = pu.add(ctx.constant(nu));
                pv = pv.add(ctx.constant(nv));
            }
            let (u_re, u_im) = tile_unitary(ctx, &self.topo_u, pu);
            let (v_re, v_im) = tile_unitary(ctx, &self.topo_v, pv);
            let sig = ctx.param(self.sigma[tile]); // [K] broadcasts over U's columns
            us_re_tiles.push(u_re.mul(sig));
            us_im_tiles.push(u_im.mul(sig));
            v_re_tiles.push(v_re);
            v_im_tiles.push(v_im);
        }
        // Re(UΣ · V) = (UΣ)_re·V_re − (UΣ)_im·V_im, batched over all tiles.
        let full = batched_tile_product(
            &us_re_tiles,
            &us_im_tiles,
            &v_re_tiles,
            &v_im_tiles,
            self.grid_rows,
            self.grid_cols,
        );
        if self.grid_rows * k == self.out_features && self.grid_cols * k == self.in_features {
            full
        } else {
            full.crop2d(self.out_features, self.in_features)
        }
    }
}

/// Fully connected photonic layer `y = x·Wᵀ + b` with a PTC weight.
pub struct OnnLinear {
    /// The underlying PTC weight (public so experiments can toggle noise).
    pub weight: PtcWeight,
    bias: ParamId,
}

impl OnnLinear {
    /// Registers the layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        topo_u: BlockMeshTopology,
        topo_v: BlockMeshTopology,
        seed: u64,
    ) -> Self {
        let weight = PtcWeight::new(store, name, in_features, out_features, topo_u, topo_v, seed);
        Self {
            weight,
            bias: store.register(format!("{name}.b"), Tensor::zeros(&[out_features]), 0.0),
        }
    }
}

impl Layer for OnnLinear {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = self.weight.build(ctx);
        let b = ctx.param(self.bias);
        x.matmul(w.transpose()).add(b)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.weight.param_ids();
        ids.push(self.bias);
        ids
    }

    fn set_phase_noise(&mut self, std: f64) {
        self.weight.phase_noise_std = std;
    }

    fn device_count(&self) -> Option<DeviceCount> {
        Some(self.weight.device_count())
    }

    fn mesh_weights<'g>(&self) -> Vec<&dyn MeshWeight<'g>> {
        vec![&self.weight]
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        // Materialize Re(U·diag(σ)·V) through the tape builder itself —
        // consuming the prebuilt variable (and its staged noise draws), so
        // the frozen matrix is bit-identical to the forward pass's.
        let w = self.weight.build(ctx).value();
        out.push(LoweredStep::Linear {
            w_t: w.transpose(),
            bias: ctx.store.value(self.bias).clone(),
        });
        Ok(())
    }
}

/// Convolutional photonic layer: `im2col` lowering onto a PTC weight.
pub struct OnnConv2d {
    /// The underlying PTC weight over `[out_channels, C·k·k]`.
    pub weight: PtcWeight,
    bias: ParamId,
    geom: Conv2dGeometry,
    out_channels: usize,
    /// Patch-matrix scratch reused across training steps.
    scratch: Tensor,
}

impl OnnConv2d {
    /// Registers the layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        geom: Conv2dGeometry,
        out_channels: usize,
        topo_u: BlockMeshTopology,
        topo_v: BlockMeshTopology,
        seed: u64,
    ) -> Self {
        let weight = PtcWeight::new(
            store,
            name,
            geom.col_rows(),
            out_channels,
            topo_u,
            topo_v,
            seed,
        );
        Self {
            weight,
            bias: store.register(format!("{name}.b"), Tensor::zeros(&[out_channels]), 0.0),
            geom,
            out_channels,
            scratch: Tensor::default(),
        }
    }
}

impl Layer for OnnConv2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = self.weight.build(ctx);
        let cols = im2col_var_scratch(x, self.geom, &mut self.scratch);
        let y = w.matmul(cols);
        let n = x.shape()[0];
        let y = cols_to_nchw(
            y,
            n,
            self.out_channels,
            self.geom.out_h(),
            self.geom.out_w(),
        );
        let b = ctx.param(self.bias).reshape(&[self.out_channels, 1, 1]);
        y.add(b)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.weight.param_ids();
        ids.push(self.bias);
        ids
    }

    fn set_phase_noise(&mut self, std: f64) {
        self.weight.phase_noise_std = std;
    }

    fn device_count(&self) -> Option<DeviceCount> {
        Some(self.weight.device_count())
    }

    fn mesh_weights<'g>(&self) -> Vec<&dyn MeshWeight<'g>> {
        vec![&self.weight]
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Conv2d {
            w: self.weight.build(ctx).value(),
            bias: ctx.store.value(self.bias).clone(),
            geom: self.geom,
            out_channels: self.out_channels,
        });
        Ok(())
    }
}

type TileDecomp = (
    adept_photonics::clements::MeshDecomposition, // U
    Vec<f64>,                                     // singular values
    adept_photonics::clements::MeshDecomposition, // Vᵀ
);

/// The MZI-ONN baseline linear layer (Shen et al.).
///
/// The Clements-mesh SVD parametrization is universal, so for training this
/// layer keeps a dense weight — identical expressiveness, far cheaper.
/// Phase drift is simulated faithfully: each `K×K` tile is SVD-decomposed,
/// its orthogonal factors are factored into MZI rotations
/// ([`adept_photonics::clements::decompose`]), every rotation phase is
/// perturbed, and the tile is rebuilt. The weight gradient treats the noise
/// as an additive constant (straight-through), matching how variation-aware
/// training perturbs forward passes in the paper.
pub struct MziLinear {
    w: ParamId,
    bias: ParamId,
    k: usize,
    in_features: usize,
    out_features: usize,
    /// Phase-drift std; 0 disables the mesh simulation entirely.
    pub phase_noise_std: f64,
    cache: RefCell<Option<(Tensor, Vec<TileDecomp>)>>,
}

impl MziLinear {
    /// Registers the layer with PTC size `k`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Tensor::kaiming_uniform(&mut rng, &[out_features, in_features], in_features);
        Self {
            w: store.register(format!("{name}.w"), w, 1e-4),
            bias: store.register(format!("{name}.b"), Tensor::zeros(&[out_features]), 0.0),
            k,
            in_features,
            out_features,
            phase_noise_std: 0.0,
            cache: RefCell::new(None),
        }
    }

    /// Device count of the underlying `k×k` MZI PTC.
    pub fn mzi_device_count(&self) -> DeviceCount {
        DeviceCount::mzi_ptc(self.k)
    }

    fn decompose_tiles(&self, w: &Tensor) -> Vec<TileDecomp> {
        let k = self.k;
        let rows = self.out_features.div_ceil(k);
        let cols = self.in_features.div_ceil(k);
        let mut padded = Tensor::zeros(&[rows * k, cols * k]);
        padded.set_block(0, 0, w);
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let tile = padded.block(r * k, c * k, k, k);
                let d = svd(&tile);
                let u = real_to_cmatrix(&d.u);
                let vt = real_to_cmatrix(&d.v.transpose());
                out.push((decompose(&u), d.s.clone(), decompose(&vt)));
            }
        }
        out
    }

    /// The noisy weight value under the current phase-drift std.
    fn noisy_weight(&self, w: &Tensor, rng: &mut StdRng) -> Tensor {
        let k = self.k;
        let rows = self.out_features.div_ceil(k);
        let cols = self.in_features.div_ceil(k);
        // Reuse the cached decomposition if the weight is unchanged.
        let stale = {
            let cache = self.cache.borrow();
            matches!(cache.as_ref(), Some((cached_w, _)) if cached_w != w)
        };
        if stale {
            self.cache.replace(None);
        }
        if self.cache.borrow().is_none() {
            let tiles = self.decompose_tiles(w);
            self.cache.replace(Some((w.clone(), tiles)));
        }
        let cache = self.cache.borrow();
        let (_, tiles) = cache.as_ref().expect("cache populated above");
        let noise = PhaseNoise::new(self.phase_noise_std);
        let mut noisy = Tensor::zeros(&[rows * k, cols * k]);
        for (idx, (du, s, dvt)) in tiles.iter().enumerate() {
            let (r, c) = (idx / cols, idx % cols);
            let un = du.perturbed(|| noise.sample(rng)).reconstruct();
            let vn = dvt.perturbed(|| noise.sample(rng)).reconstruct();
            // Re(Ũ · diag(S) · Ṽ).
            let mut us = un;
            for j in 0..k {
                for i in 0..k {
                    us.update(i, j, |z| z * s[j]);
                }
            }
            let tile = us.matmul(&vn).re();
            noisy.set_block(r * k, c * k, &tile);
        }
        noisy.block(0, 0, self.out_features, self.in_features)
    }

    /// The weight value a tape forward would multiply by under the current
    /// noise setting: clean `W`, or the straight-through `W + (W̃ − W)`
    /// computed with the same elementwise ops as the tape's `w.add(delta)`
    /// — the FP rounding of `w + (noisy − w)` is *not* the bits of
    /// `noisy`, so the compiled plan must replay the tape's arithmetic.
    fn frozen_weight(&self, ctx: &ForwardCtx<'_, '_>) -> Tensor {
        let wv = ctx.store.value(self.w).clone();
        if self.phase_noise_std > 0.0 {
            let noisy = ctx.with_rng(|rng| self.noisy_weight(&wv, rng));
            let delta = &noisy - &wv;
            &wv + &delta
        } else {
            wv
        }
    }
}

fn real_to_cmatrix(t: &Tensor) -> CMatrix {
    let (r, c) = (t.shape()[0], t.shape()[1]);
    CMatrix::from_vec(
        t.as_slice().iter().map(|&x| C64::new(x, 0.0)).collect(),
        r,
        c,
    )
}

impl Layer for MziLinear {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = ctx.param(self.w);
        let b = ctx.param(self.bias);
        let w = if self.phase_noise_std > 0.0 {
            let wv = w.value();
            let noisy = ctx.with_rng(|rng| self.noisy_weight(&wv, rng));
            // Straight-through: W_noisy = W + const(ΔW).
            let delta = ctx.constant(&noisy - &wv);
            w.add(delta)
        } else {
            w
        };
        x.matmul(w.transpose()).add(b)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w, self.bias]
    }

    fn set_phase_noise(&mut self, std: f64) {
        self.phase_noise_std = std;
    }

    fn device_count(&self) -> Option<DeviceCount> {
        Some(self.mzi_device_count())
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Linear {
            w_t: self.frozen_weight(ctx).transpose(),
            bias: ctx.store.value(self.bias).clone(),
        });
        Ok(())
    }
}

/// Convolutional MZI-ONN baseline (dense weight + mesh noise simulation).
pub struct MziConv2d {
    inner: MziLinear,
    geom: Conv2dGeometry,
    out_channels: usize,
    /// Patch-matrix scratch reused across training steps.
    scratch: Tensor,
}

impl MziConv2d {
    /// Registers the layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        geom: Conv2dGeometry,
        out_channels: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        Self {
            inner: MziLinear::new(store, name, geom.col_rows(), out_channels, k, seed),
            geom,
            out_channels,
            scratch: Tensor::default(),
        }
    }
}

impl Layer for MziConv2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = ctx.param(self.inner.w);
        let b = ctx.param(self.inner.bias);
        let w = if self.inner.phase_noise_std > 0.0 {
            let wv = w.value();
            let noisy = ctx.with_rng(|rng| self.inner.noisy_weight(&wv, rng));
            let delta = ctx.constant(&noisy - &wv);
            w.add(delta)
        } else {
            w
        };
        let cols = im2col_var_scratch(x, self.geom, &mut self.scratch);
        let y = w.matmul(cols);
        let n = x.shape()[0];
        let y = cols_to_nchw(
            y,
            n,
            self.out_channels,
            self.geom.out_h(),
            self.geom.out_w(),
        );
        y.add(b.reshape(&[self.out_channels, 1, 1]))
    }

    fn param_ids(&self) -> Vec<ParamId> {
        self.inner.param_ids()
    }

    fn set_phase_noise(&mut self, std: f64) {
        self.inner.phase_noise_std = std;
    }

    fn device_count(&self) -> Option<DeviceCount> {
        Some(self.inner.mzi_device_count())
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Conv2d {
            w: self.inner.frozen_weight(ctx),
            bias: ctx.store.value(self.inner.bias).clone(),
            geom: self.geom,
            out_channels: self.out_channels,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_autodiff::Graph;
    use adept_linalg::Permutation;

    fn small_topology(k: usize, b: usize, seed: u64) -> BlockMeshTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        BlockMeshTopology::random(&mut rng, k, b)
    }

    #[test]
    fn tile_unitary_matches_cmatrix_reference() {
        // The autodiff construction must agree with the direct complex
        // transfer-matrix product from the photonics crate.
        let topo = small_topology(6, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let phases = Tensor::rand_uniform(&mut rng, &[4, 6], -3.0, 3.0);
        let store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let pv = graph.constant(phases.clone());
        let (re, im) = tile_unitary(&ctx, &topo, pv);
        let phase_cols: Vec<Vec<f64>> = (0..4)
            .map(|b| (0..6).map(|j| phases.at(&[b, j])).collect())
            .collect();
        let want = topo.unitary(&phase_cols);
        assert!(re.value().allclose(&want.re(), 1e-10));
        assert!(im.value().allclose(&want.im(), 1e-10));
    }

    #[test]
    fn tile_unitary_is_unitary_numerically() {
        let topo = small_topology(8, 5, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let phases = Tensor::rand_uniform(&mut rng, &[5, 8], -3.0, 3.0);
        let store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let pv = graph.constant(phases);
        let (re, im) = tile_unitary(&ctx, &topo, pv);
        let u = CMatrix::from_re_im(&re.value(), &im.value());
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn tile_unitary_gradcheck() {
        let topo = small_topology(4, 3, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let phases = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
        adept_autodiff::check_gradients(
            |g, vars| {
                let store = ParamStore::new();
                let ctx = ForwardCtx::new(g, &store, false, 0);
                let (re, im) = tile_unitary(&ctx, &topo, vars[0]);
                re.square().sum().add(im.mul(re).sum())
            },
            &[phases],
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn batched_tile_unitary_is_bit_equal_to_scalar_reference() {
        let topo = small_topology(6, 4, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let tiles = 5;
        let phases = Tensor::rand_uniform(&mut rng, &[tiles, 4, 6], -3.0, 3.0);
        let store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let (re, im) = batched_tile_unitary(&ctx, &topo, graph.constant(phases.clone()));
        assert_eq!(re.shape(), vec![tiles, 6, 6]);
        for t in 0..tiles {
            let (sre, sim) = tile_unitary(&ctx, &topo, graph.constant(phases.subtensor(t)));
            assert_eq!(
                re.value().subtensor(t).as_slice(),
                sre.value().as_slice(),
                "tile {t} real part must match bit-for-bit"
            );
            assert_eq!(
                im.value().subtensor(t).as_slice(),
                sim.value().as_slice(),
                "tile {t} imaginary part must match bit-for-bit"
            );
        }
    }

    #[test]
    fn batched_build_matches_per_tile_build_bitwise() {
        // Exact-multiple and ragged (cropped edge tiles) shapes, with and
        // without phase noise: the batched path must reproduce the per-tile
        // reference bit for bit (noise streams are sampled in the same
        // order).
        for &(inf, outf, noise) in &[(8usize, 8usize, 0.0f64), (6, 5, 0.0), (6, 5, 0.05)] {
            let mut store = ParamStore::new();
            let topo = small_topology(4, 3, 23);
            let mut w = PtcWeight::new(&mut store, "w", inf, outf, topo.clone(), topo, 24);
            w.phase_noise_std = noise;
            let graph1 = Graph::new();
            let ctx1 = ForwardCtx::new(&graph1, &store, false, 7);
            let batched = w.build(&ctx1).value();
            let graph2 = Graph::new();
            let ctx2 = ForwardCtx::new(&graph2, &store, false, 7);
            let per_tile = w.build_per_tile(&ctx2).value();
            assert_eq!(batched.shape(), per_tile.shape());
            assert_eq!(
                batched.as_slice(),
                per_tile.as_slice(),
                "({inf},{outf},noise={noise}) must be bit-identical"
            );
        }
    }

    #[test]
    fn batched_build_tape_is_at_least_5x_smaller() {
        // The acceptance criterion of the batched builder: one PtcWeight
        // forward build must record ≥5× fewer tape nodes than the per-tile
        // path (here 64 tiles shrink it by well over an order of magnitude).
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(8);
        let w = PtcWeight::new(&mut store, "w", 64, 64, topo.clone(), topo, 25);
        let graph_pt = Graph::new();
        let ctx = ForwardCtx::new(&graph_pt, &store, false, 0);
        let _ = w.build_per_tile(&ctx);
        let per_tile_nodes = graph_pt.len();
        let graph_b = Graph::new();
        let ctx = ForwardCtx::new(&graph_b, &store, false, 0);
        let _ = w.build(&ctx);
        let batched_nodes = graph_b.len();
        assert!(
            per_tile_nodes >= 5 * batched_nodes,
            "tape must shrink ≥5×: per-tile {per_tile_nodes} vs batched {batched_nodes}"
        );
    }

    #[test]
    fn batched_build_gradients_match_per_tile() {
        let mut store = ParamStore::new();
        let topo = small_topology(4, 2, 26);
        let w = PtcWeight::new(&mut store, "w", 6, 5, topo.clone(), topo, 27);
        let grads_of = |batched: bool| -> Vec<(String, Tensor)> {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 0);
            let built = if batched {
                w.build(&ctx)
            } else {
                w.build_per_tile(&ctx)
            };
            let grads = graph.backward(built.square().sum());
            let mut out: Vec<(String, Tensor)> = ctx
                .into_param_grads(&grads)
                .into_iter()
                .map(|(id, g)| (store.name(id).to_string(), g))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let gb = grads_of(true);
        let gp = grads_of(false);
        assert_eq!(gb.len(), gp.len(), "same parameters must receive grads");
        for ((name, b), (name2, p)) in gb.iter().zip(&gp) {
            assert_eq!(name, name2);
            assert!(
                b.allclose(p, 1e-9),
                "gradient of {name} diverges: max diff {}",
                b.max_abs_diff(p)
            );
        }
    }

    #[test]
    fn ptc_weight_shape_and_grad_flow() {
        let mut store = ParamStore::new();
        let topo = small_topology(4, 2, 7);
        let w = PtcWeight::new(&mut store, "w", 6, 5, topo.clone(), topo, 8);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let built = w.build(&ctx);
        assert_eq!(built.shape(), vec![5, 6]);
        let loss = built.square().sum();
        let grads = graph.backward(loss);
        let mut any = 0;
        for (_, var) in ctx.into_leaves() {
            if grads.grad(var).map(|g| g.norm() > 1e-12).unwrap_or(false) {
                any += 1;
            }
        }
        assert!(
            any >= 6,
            "gradients must reach phase/sigma params, got {any}"
        );
    }

    #[test]
    fn onn_linear_runs_and_learns_direction() {
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        let mut layer = OnnLinear::new(&mut store, "fc", 4, 3, topo.clone(), topo, 9);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let x = graph.constant(Tensor::ones(&[2, 4]));
        let y = layer.forward(&ctx, x);
        assert_eq!(y.shape(), vec![2, 3]);
        let loss = y.cross_entropy_logits(&[0, 1]);
        let grads = graph.backward(loss);
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        let total: f64 = layer
            .param_ids()
            .iter()
            .map(|&id| store.grad(id).norm())
            .sum();
        assert!(total > 1e-9, "some gradient must flow");
    }

    #[test]
    fn phase_noise_changes_output_only_when_enabled() {
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        let mut layer = OnnLinear::new(&mut store, "fc", 4, 4, topo.clone(), topo, 10);
        let xval = Tensor::ones(&[1, 4]);
        let run = |layer: &mut OnnLinear, store: &ParamStore, seed: u64| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, store, false, seed);
            let x = graph.constant(xval.clone());
            layer.forward(&ctx, x).value()
        };
        let clean1 = run(&mut layer, &store, 1);
        let clean2 = run(&mut layer, &store, 2);
        assert!(clean1.allclose(&clean2, 1e-12), "no noise → deterministic");
        layer.set_phase_noise(0.05);
        let noisy1 = run(&mut layer, &store, 1);
        let noisy2 = run(&mut layer, &store, 2);
        assert!(noisy1.max_abs_diff(&clean1) > 1e-6);
        assert!(
            noisy1.max_abs_diff(&noisy2) > 1e-9,
            "different seeds differ"
        );
    }

    #[test]
    fn mzi_noise_simulation_perturbs_weight_mildly() {
        let mut store = ParamStore::new();
        let mut layer = MziLinear::new(&mut store, "fc", 8, 8, 8, 11);
        let xval = Tensor::ones(&[1, 8]);
        let run = |layer: &mut MziLinear, store: &ParamStore, seed: u64| {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, store, false, seed);
            let x = graph.constant(xval.clone());
            layer.forward(&ctx, x).value()
        };
        let clean = run(&mut layer, &store, 1);
        layer.set_phase_noise(0.01);
        let small = run(&mut layer, &store, 1);
        layer.set_phase_noise(0.2);
        let large = run(&mut layer, &store, 1);
        let d_small = small.max_abs_diff(&clean);
        let d_large = large.max_abs_diff(&clean);
        assert!(d_small > 1e-9, "noise must act");
        assert!(d_large > d_small, "more drift → bigger deviation");
    }

    #[test]
    fn mzi_grad_flows_through_noise_ste() {
        let mut store = ParamStore::new();
        let mut layer = MziLinear::new(&mut store, "fc", 4, 2, 4, 12);
        layer.set_phase_noise(0.02);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 3);
        let x = graph.constant(Tensor::ones(&[3, 4]));
        let y = layer.forward(&ctx, x);
        let loss = y.cross_entropy_logits(&[0, 1, 0]);
        let grads = graph.backward(loss);
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        assert!(store.grad(layer.param_ids()[0]).norm() > 1e-9);
    }

    #[test]
    fn identity_topology_gives_diagonal_weight_structure() {
        // With identity perms, no couplers and zero phases, U = I so the
        // tile reduces to diag(σ).
        let mut store = ParamStore::new();
        let block = |_k: usize| adept_photonics::MeshBlock {
            dc_start: 0,
            couplers: vec![false; 2],
            perm: Permutation::identity(4),
        };
        let topo = BlockMeshTopology::new(4, vec![block(4)]);
        let w = PtcWeight::new(&mut store, "w", 4, 4, topo.clone(), topo, 13);
        // Zero the phases, fix sigma.
        for id in w.phases_u.iter().chain(&w.phases_v) {
            *store.value_mut(*id) = Tensor::zeros(&[1, 4]);
        }
        *store.value_mut(w.sigma[0]) = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let built = w.build(&ctx).value();
        let want = Tensor::from_diag(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        assert!(built.allclose(&want, 1e-10));
    }
}
