//! Optimizers and learning-rate schedules (the paper trains with Adam and a
//! cosine schedule).

use crate::param::{ParamId, ParamStore};
use adept_tensor::Tensor;
use std::collections::HashMap;

/// Adam with decoupled per-parameter weight decay.
///
/// # Examples
///
/// ```
/// use adept_nn::optim::Adam;
/// use adept_nn::ParamStore;
/// use adept_tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::from_vec(vec![1.0], &[1]), 0.0);
/// let mut opt = Adam::new(0.1);
/// store.accumulate_grad(w, &Tensor::from_vec(vec![1.0], &[1]));
/// opt.step(&mut store, &[w]);
/// assert!(store.value(w).item() < 1.0);
/// ```
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: usize,
    state: HashMap<ParamId, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the standard β = (0.9, 0.999), ε = 1e-8.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Applies one update to `params` using accumulated gradients, then
    /// leaves the gradients untouched (call [`ParamStore::zero_grads`]
    /// afterwards).
    pub fn step(&mut self, store: &mut ParamStore, params: &[ParamId]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &id in params {
            let wd = store.weight_decay(id);
            let g = {
                let g = store.grad(id).clone();
                if wd > 0.0 {
                    let mut g = g;
                    g.axpy(wd, store.value(id));
                    g
                } else {
                    g
                }
            };
            let (m, v) = self
                .state
                .entry(id)
                .or_insert_with(|| (Tensor::zeros(g.shape()), Tensor::zeros(g.shape())));
            for i in 0..g.len() {
                let gi = g.as_slice()[i];
                m.as_mut_slice()[i] = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                v.as_mut_slice()[i] = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
            }
            let mut delta = Tensor::zeros(g.shape());
            for i in 0..g.len() {
                let mhat = m.as_slice()[i] / bc1;
                let vhat = v.as_slice()[i] / bc2;
                delta.as_mut_slice()[i] = -self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            store.apply_delta(id, &delta);
        }
    }
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Creates SGD.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Overrides the learning rate.
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Applies one update.
    pub fn step(&mut self, store: &mut ParamStore, params: &[ParamId]) {
        for &id in params {
            let wd = store.weight_decay(id);
            let mut g = store.grad(id).clone();
            if wd > 0.0 {
                g.axpy(wd, store.value(id));
            }
            let v = self
                .velocity
                .entry(id)
                .or_insert_with(|| Tensor::zeros(g.shape()));
            for i in 0..g.len() {
                v.as_mut_slice()[i] = self.momentum * v.as_slice()[i] + g.as_slice()[i];
            }
            let delta = v.scale(-self.lr);
            store.apply_delta(id, &delta);
        }
    }
}

/// Cosine learning-rate schedule from `base` down to `floor`.
#[derive(Debug, Clone, Copy)]
pub struct CosineLr {
    base: f64,
    floor: f64,
    total_steps: usize,
}

impl CosineLr {
    /// Creates a schedule over `total_steps`.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps == 0`.
    pub fn new(base: f64, floor: f64, total_steps: usize) -> Self {
        assert!(total_steps > 0, "schedule needs at least one step");
        Self {
            base,
            floor,
            total_steps,
        }
    }

    /// Learning rate at `step` (clamped to the end value beyond the total).
    pub fn lr(&self, step: usize) -> f64 {
        let t = (step.min(self.total_steps)) as f64 / self.total_steps as f64;
        self.floor + 0.5 * (self.base - self.floor) * (1.0 + (std::f64::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (w - 3)² from w = 0.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(&[1]), 0.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            store.zero_grads();
            let wv = store.value(w).item();
            store.accumulate_grad(w, &Tensor::from_vec(vec![2.0 * (wv - 3.0)], &[1]));
            opt.step(&mut store, &[w]);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_with_momentum_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![5.0], &[1]), 0.0);
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..200 {
            store.zero_grads();
            let wv = store.value(w).item();
            store.accumulate_grad(w, &Tensor::from_vec(vec![2.0 * wv], &[1]));
            opt.step(&mut store, &[w]);
        }
        assert!(store.value(w).item().abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![1.0], &[1]), 0.5);
        let mut opt = Sgd::new(0.1, 0.0);
        // Zero task gradient; only decay acts.
        for _ in 0..10 {
            store.zero_grads();
            opt.step(&mut store, &[w]);
        }
        let v = store.value(w).item();
        assert!(v < 1.0 && v > 0.0, "decay must shrink, got {v}");
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let sched = CosineLr::new(1.0, 0.1, 100);
        assert!((sched.lr(0) - 1.0).abs() < 1e-12);
        assert!((sched.lr(100) - 0.1).abs() < 1e-12);
        assert!(sched.lr(50) < 1.0 && sched.lr(50) > 0.1);
        // Monotone decreasing.
        let mut prev = sched.lr(0);
        for s in 1..=100 {
            let cur = sched.lr(s);
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }
}
