//! Training and evaluation loops, including the paper's variation-aware
//! training (Gaussian phase noise injected during training, §4.1).
//!
//! Each step prebuilds every photonic layer's weight through the parallel
//! build engine ([`crate::mesh::prebuild_mesh_weights`]) before running the
//! forward chain, and replays the backward pass through
//! `Graph::backward_parallel`, which evaluates the spliced per-weight
//! gradient subtrees concurrently with main-thread accumulation in splice
//! order. The resulting tape — node ids, values, noise draws and
//! gradients — is **bit-identical at any thread count** (pinned by the
//! root `parallel_build`/`parallel_backward` suites): all noise is drawn
//! on the main thread in layer order during staging. For all-PTC models it is also bit-identical
//! to the historical walk that interleaved each build with its forward
//! ops. One caveat: a model mixing *noisy* [`crate::onn::MziLinear`]-style
//! layers (which draw from the shared RNG mid-forward) with noisy PTC
//! layers consumes the stream in prebuild order — deterministic, but a
//! different fixed sequence than the historical interleaving.

use crate::layers::Layer;
use crate::mesh::{prebuild_mesh_weights, MeshWeight};
use crate::optim::{Adam, CosineLr};
use crate::param::{ForwardCtx, ParamStore};
use adept_autodiff::Graph;
use adept_datasets::Dataset;
use adept_photonics::FaultScenario;
use adept_telemetry::Counter;
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Logical training totals — identical at any `ONN_THREADS`.
static TRAIN_STEPS: Counter = Counter::stable("train.steps");
static TRAIN_SAMPLES: Counter = Counter::stable("train.samples");

/// Hyper-parameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-annealed to 10% of this).
    pub lr: f64,
    /// Base RNG seed (shuffling and noise).
    pub seed: u64,
    /// Variation-aware training noise: Gaussian phase-drift std applied to
    /// photonic layers during training (0 disables).
    pub phase_noise_std: f64,
    /// Static hardware damage realized by every photonic build — training
    /// *and* the final evaluation (fault-aware retraining targets the
    /// damaged hardware the model will actually run on). `None` trains on
    /// healthy hardware.
    pub fault: Option<FaultScenario>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 32,
            lr: 2e-3,
            seed: 0,
            phase_noise_std: 0.0,
            fault: None,
        }
    }
}

/// Summary of a finished run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
    /// Accuracy on the held-out set with noise disabled.
    pub test_accuracy: f64,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
}

/// Trains a classifier with Adam + cosine schedule and reports clean test
/// accuracy.
///
/// If `cfg.phase_noise_std > 0`, photonic layers see fresh Gaussian phase
/// drift on every forward pass (variation-aware training); the noise is
/// switched off again before the final evaluation.
pub fn train_classifier(
    model: &mut dyn Layer,
    store: &mut ParamStore,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let params = model.param_ids();
    let mut opt = Adam::new(cfg.lr);
    let steps_per_epoch = train.len().div_ceil(cfg.batch_size).max(1);
    let sched = CosineLr::new(cfg.lr, cfg.lr * 0.1, cfg.epochs * steps_per_epoch);
    let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed);
    let faults = cfg
        .fault
        .as_ref()
        .filter(|f| !f.is_empty())
        .map(|f| Arc::new(f.clone()));
    if cfg.phase_noise_std > 0.0 {
        model.set_phase_noise(cfg.phase_noise_std);
    }
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        let data = train.shuffled(&mut shuffle_rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut start = 0;
        while start < data.len() {
            let count = cfg.batch_size.min(data.len() - start);
            let (images, labels) = data.batch(start, count);
            start += count;
            // Per-phase spans: children of one `train_step` span, with
            // paths derived from the handle — the tree is identical at
            // any thread count (only the durations vary).
            let step_span = adept_telemetry::span("train_step");
            TRAIN_STEPS.incr();
            TRAIN_SAMPLES.add(count as u64);
            let graph = Graph::new();
            let ctx = ForwardCtx::with_faults(
                &graph,
                store,
                true,
                cfg.seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add((epoch * steps_per_epoch + batches) as u64),
                faults.clone(),
            );
            {
                let _span = step_span.child("prebuild");
                prebuild_mesh_weights(&ctx, &model.mesh_weights());
            }
            let x = graph.constant(images);
            let logits = {
                let _span = step_span.child("forward");
                model.forward(&ctx, x)
            };
            let loss = {
                let _span = step_span.child("loss");
                let loss = logits.cross_entropy_logits(&labels);
                epoch_loss += loss.value().item();
                loss
            };
            batches += 1;
            // The spliced weight-build segments replay their gradient
            // subtrees concurrently; bit-identical to `backward` at any
            // thread count (see `Graph::backward_parallel`).
            let updates = {
                let _span = step_span.child("backward");
                let grads = graph.backward_parallel(loss);
                ctx.into_param_grads(&grads)
            };
            {
                let _span = step_span.child("optimizer");
                store.zero_grads();
                store.accumulate_many(&updates);
                opt.set_lr(sched.lr(step));
                opt.step(store, &params);
            }
            step += 1;
        }
        loss_history.push(epoch_loss / batches.max(1) as f64);
    }
    if cfg.phase_noise_std > 0.0 {
        model.set_phase_noise(0.0);
    }
    // Noise off for the final evaluation, but static damage persists: a
    // fault-aware run reports accuracy on the hardware it retrained for.
    let test_accuracy = evaluate_impl(model, store, test, cfg.batch_size, 0, faults);
    TrainReport {
        final_loss: *loss_history.last().unwrap_or(&f64::NAN),
        test_accuracy,
        loss_history,
    }
}

/// Classification accuracy of `model` on `data` (eval mode, no parameter
/// updates).
pub fn evaluate(
    model: &mut dyn Layer,
    store: &ParamStore,
    data: &Dataset,
    batch_size: usize,
) -> f64 {
    evaluate_seeded(model, store, data, batch_size, 0)
}

/// Like [`evaluate`] but with an explicit noise seed — used by the Fig. 4
/// robustness sweeps where each run draws fresh phase drift.
///
/// Evaluation never updates parameters, so any mesh weight whose build
/// depends only on its own parameters (`build_tag() == 0`) and draws no
/// noise is identical in every batch. The first batch materializes all
/// weights through the normal prebuild; later batches replay the captured
/// noise-free values as constants and only re-stage the noisy rest —
/// per-batch outputs (and the noise stream consumed by noisy weights) stay
/// bit-identical to rebuilding everything.
pub fn evaluate_seeded(
    model: &mut dyn Layer,
    store: &ParamStore,
    data: &Dataset,
    batch_size: usize,
    seed: u64,
) -> f64 {
    evaluate_impl(model, store, data, batch_size, seed, None)
}

/// Classification accuracy on hardware damaged by a static
/// [`FaultScenario`]: every photonic build realizes the scenario's
/// dead/stuck shifters, dead couplers, frozen drift and quantization.
///
/// Faults are static per scenario — unlike per-build phase noise — so the
/// frozen-weight replay of [`evaluate_seeded`] applies unchanged: the
/// first batch materializes the *faulted* weights once and later batches
/// replay them as constants.
pub fn evaluate_faulted(
    model: &mut dyn Layer,
    store: &ParamStore,
    data: &Dataset,
    batch_size: usize,
    seed: u64,
    faults: &FaultScenario,
) -> f64 {
    let faults = if faults.is_empty() {
        None
    } else {
        Some(Arc::new(faults.clone()))
    };
    evaluate_impl(model, store, data, batch_size, seed, faults)
}

fn evaluate_impl(
    model: &mut dyn Layer,
    store: &ParamStore,
    data: &Dataset,
    batch_size: usize,
    seed: u64,
    faults: Option<Arc<FaultScenario>>,
) -> f64 {
    let mut correct = 0usize;
    let mut start = 0;
    let mut batch_idx = 0u64;
    let mut frozen: Option<Vec<(u64, Tensor)>> = None;
    while start < data.len() {
        let count = batch_size.min(data.len() - start);
        let (images, labels) = data.batch(start, count);
        start += count;
        let graph = Graph::new();
        let ctx = ForwardCtx::with_faults(
            &graph,
            store,
            false,
            seed.wrapping_add(batch_idx),
            faults.clone(),
        );
        batch_idx += 1;
        let mesh = model.mesh_weights();
        let cacheable = |w: &dyn MeshWeight<'_>| w.build_tag() == 0 && !w.noise_active();
        match &frozen {
            None => {
                prebuild_mesh_weights(&ctx, &mesh);
                // Capture the noise-free weight values out of the prebuilt
                // cache (re-registering each variable, so this batch's
                // forward still consumes it normally).
                let mut cache = Vec::new();
                for w in mesh.iter().filter(|w| cacheable(**w)) {
                    if let Some(var) = ctx.take_prebuilt(w.uid(), 0) {
                        cache.push((w.uid(), var.value()));
                        ctx.register_prebuilt(w.uid(), 0, var);
                    }
                }
                frozen = Some(cache);
            }
            Some(cache) => {
                // Stage only the weights that genuinely change per batch;
                // the noise-free rest replays as constants. Noisy weights
                // stage in the same relative order as a full prebuild
                // (noise-free stagings draw nothing), so the RNG stream is
                // unchanged.
                let rebuild: Vec<&dyn MeshWeight<'_>> =
                    mesh.iter().filter(|w| !cacheable(**w)).copied().collect();
                prebuild_mesh_weights(&ctx, &rebuild);
                for (uid, value) in cache {
                    ctx.register_prebuilt(*uid, 0, graph.constant(value.clone()));
                }
            }
        }
        let x = graph.constant(images);
        let logits = model.forward(&ctx, x).value();
        let classes = logits.shape()[1];
        for (i, &label) in labels.iter().enumerate() {
            let row = &logits.as_slice()[i * classes..(i + 1) * classes];
            let mut best = 0;
            for c in 1..classes {
                if row[c] > row[best] {
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mlp, proxy_cnn, Backend, InputShape};
    use adept_datasets::{gaussian_blobs, DatasetKind, SyntheticConfig};
    use adept_tensor::Tensor;

    /// Wraps blob data in the image Dataset container (1×1 "images") and
    /// splits one generation into train/test so they share class centers.
    fn blob_datasets(n: usize, dim: usize, classes: usize, seed: u64) -> (Dataset, Dataset) {
        let (x, labels) = gaussian_blobs(n, dim, classes, 0.25, seed);
        let all = Dataset {
            images: x.reshape(&[n, 1, 1, dim]),
            labels,
            num_classes: classes,
        };
        let n_train = 2 * n / 3;
        let (tr_i, tr_l) = all.batch(0, n_train);
        let (te_i, te_l) = all.batch(n_train, n - n_train);
        (
            Dataset {
                images: tr_i,
                labels: tr_l,
                num_classes: classes,
            },
            Dataset {
                images: te_i,
                labels: te_l,
                num_classes: classes,
            },
        )
    }

    #[test]
    fn mlp_learns_blobs() {
        let (train, test) = blob_datasets(180, 6, 3, 1);
        let mut store = ParamStore::new();
        let mut model = crate::layers::Sequential::new();
        model.push(crate::layers::Flatten);
        let inner = mlp(&mut store, 6, 16, 3, 0);
        model.push(inner);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 20,
            lr: 5e-3,
            ..Default::default()
        };
        let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
        assert!(
            report.test_accuracy > 0.9,
            "accuracy {} too low (loss history {:?})",
            report.test_accuracy,
            report.loss_history
        );
        // Loss must broadly decrease.
        assert!(report.loss_history.first().unwrap() > report.loss_history.last().unwrap());
    }

    #[test]
    fn onn_proxy_cnn_learns_small_mnist_like() {
        let cfg_data = SyntheticConfig::new(DatasetKind::MnistLike)
            .with_sizes(96, 48)
            .with_image_size(8)
            .with_classes(4);
        let (train, test) = cfg_data.generate(3);
        let mut store = ParamStore::new();
        let mut model = proxy_cnn(
            &mut store,
            InputShape::new(1, 8, 8),
            4,
            4,
            &Backend::butterfly(4),
            0,
        );
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 24,
            lr: 5e-3,
            ..Default::default()
        };
        let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
        assert!(
            report.test_accuracy > 0.45,
            "ONN accuracy {} barely above chance (0.25)",
            report.test_accuracy
        );
    }

    #[test]
    fn variation_aware_training_runs_and_disables_noise_after() {
        let (train, test) = blob_datasets(60, 4, 2, 5);
        let mut store = ParamStore::new();
        let topo = adept_photonics::BlockMeshTopology::butterfly(4);
        let mut model = crate::layers::Sequential::new();
        model.push(crate::layers::Flatten);
        model.push(crate::onn::OnnLinear::new(
            &mut store,
            "fc",
            4,
            2,
            topo.clone(),
            topo,
            1,
        ));
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 20,
            lr: 5e-3,
            phase_noise_std: 0.02,
            ..Default::default()
        };
        let _ = train_classifier(&mut model, &mut store, &train, &test, &cfg);
        // After training, evaluation must be deterministic (noise off).
        let a = evaluate_seeded(&mut model, &store, &test, 10, 1);
        let b = evaluate_seeded(&mut model, &store, &test, 10, 99);
        assert_eq!(
            a, b,
            "noise must be disabled after variation-aware training"
        );
    }

    #[test]
    fn evaluate_counts_correctly() {
        // A fixed "model" that routes input feature argmax straight through.
        struct Passthrough;
        impl Layer for Passthrough {
            fn forward<'g>(
                &mut self,
                _ctx: &ForwardCtx<'g, '_>,
                x: adept_autodiff::Var<'g>,
            ) -> adept_autodiff::Var<'g> {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshape(&[n, rest])
            }
        }
        let images = Tensor::from_vec(
            vec![
                1.0, 0.0, // class 0
                0.0, 1.0, // class 1
                1.0, 0.0, // labelled 1 → wrong
            ],
            &[3, 1, 1, 2],
        );
        let data = Dataset {
            images,
            labels: vec![0, 1, 1],
            num_classes: 2,
        };
        let store = ParamStore::new();
        let acc = evaluate(&mut Passthrough, &store, &data, 2);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
