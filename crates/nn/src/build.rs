//! The parallel weight-build scheduler.
//!
//! A training step's dominant cost is constructing every layer's PTC
//! weight: the per-layer mesh-unitary walks are long serial chains of small
//! batched kernels, each below the GEMM threading threshold, and the shared
//! tape serializes them further. The builds are, however, *independent* of
//! one another (and of the activations) — the step's build-order graph is
//! flat. This module exploits that:
//!
//! 1. **Stage** (main thread, layer order): every weight creates its
//!    parameter leaves on the shared tape and draws its phase noise from
//!    the shared RNG — exactly the serial walk's order, so leaf ids and
//!    noise streams never depend on scheduling.
//! 2. **Record** (worker threads): each weight's mesh walks record onto a
//!    private sub-tape ([`adept_autodiff::record_segment`]) on the shared
//!    pool; within one weight the independent U- and V-mesh walks fork into
//!    two concurrent sub-tape builds fused at the `Re(UΣ·Vᴴ)` tile product.
//! 3. **Splice + finish** (main thread, layer order): segments splice into
//!    the step tape in layer-index order and each weight's Σ product is
//!    recorded — producing the *identical* node sequence, values, and
//!    gradients of a serial walk, at every thread count. Splicing streams:
//!    weight `i` splices as soon as its segment lands (while `i+1..` are
//!    still recording) instead of barriering on the whole batch.
//!
//! Layers then pick their weight up from the [`ForwardCtx`] prebuilt cache
//! instead of rebuilding it. The bit-determinism guarantee is pinned by the
//! root `tests/parallel_build.rs` suite across thread counts {1, 2, 8}.

use crate::onn::{PtcWeight, StagedPtcBuild};
use crate::param::ForwardCtx;
use adept_autodiff::TapeSegment;
use adept_tensor::{gemm_thread_count, pool};
use std::sync::Mutex;

/// Phases 2+3 of every weight-build scheduler: records one tape segment
/// per staged weight — concurrently on the shared pool when more than one
/// thread is configured, serially (and with the in-weight U/V fork
/// disabled) otherwise — and hands each segment to `finish` **in
/// layer-index order, as soon as it lands**. Weight `i` splices while
/// weights `i+1..` are still recording, so the main thread never barriers
/// on the whole batch (the tails are cheap, but on many-layer models the
/// old barrier left it idle).
///
/// `record(weight, staged, parallel_within)` must be deterministic, and
/// `finish` runs on the calling thread in index order regardless of how
/// the record jobs were scheduled — which is what keeps the spliced tape
/// bit-identical at every thread count.
///
/// This is the single scheduling discipline shared by
/// [`prebuild_ptc_weights`] and the search-side
/// `adept::supermesh::prebuild_super_ptc_weights`.
pub fn schedule_segments<W, S>(
    weights: &[&W],
    staged: &[S],
    record: impl Fn(&W, &S, bool) -> TapeSegment + Sync,
    mut finish: impl FnMut(usize, TapeSegment),
) where
    W: Sync + ?Sized,
    S: Sync,
{
    assert_eq!(weights.len(), staged.len(), "one staging per weight");
    if gemm_thread_count() <= 1 {
        for (i, (w, st)) in weights.iter().zip(staged).enumerate() {
            finish(i, record(w, st, false));
        }
        return;
    }
    let slots: Vec<Mutex<Option<TapeSegment>>> =
        (0..weights.len()).map(|_| Mutex::new(None)).collect();
    pool::scope(|scope| {
        let handles: Vec<pool::JobHandle> = weights
            .iter()
            .zip(staged)
            .zip(&slots)
            .map(|((w, st), slot)| {
                let record = &record;
                scope.spawn_handle(move || {
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(record(w, st, true));
                })
            })
            .collect();
        for (i, handle) in handles.iter().enumerate() {
            scope.wait(handle);
            // An empty slot means the record job panicked: stop finishing
            // and let the scope's join propagate the worker's original
            // payload instead of masking it with a scheduler-internal one.
            let Some(segment) = slots[i].lock().unwrap_or_else(|p| p.into_inner()).take() else {
                break;
            };
            finish(i, segment);
        }
    });
}

/// Builds every weight's mesh-unitary segment concurrently and registers
/// the finished weight variables in `ctx`'s prebuilt cache (keyed by
/// [`PtcWeight::uid`]), so the subsequent forward pass consumes them
/// without re-recording.
///
/// With one configured thread (or one weight and no pool win) this runs the
/// serial staged walk — same code path, same tape, zero scheduling. The
/// resulting tape is bit-identical either way.
pub fn prebuild_ptc_weights<'g>(ctx: &ForwardCtx<'g, '_>, weights: &[&PtcWeight]) {
    if weights.is_empty() {
        return;
    }
    // Phase 1: stage in layer order on the main thread (tape + RNG order).
    let staged: Vec<StagedPtcBuild> = weights.iter().map(|w| w.stage(ctx)).collect();
    // Phases 2+3: record on the pool, splice + finish on this thread in
    // layer-index order as each weight's segment lands.
    schedule_segments(
        weights,
        &staged,
        |w, st, par| w.record_build_segment(st, par),
        |i, segment| {
            let weight = weights[i].finish_build(ctx, segment);
            ctx.register_prebuilt(weights[i].uid(), 0, weight);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onn::OnnLinear;
    use crate::param::ParamStore;
    use adept_autodiff::Graph;
    use adept_photonics::BlockMeshTopology;
    use adept_tensor::{set_gemm_threads, Tensor};

    /// Serializes tests that override the global thread count.
    static THREAD_OVERRIDE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn prebuild_matches_direct_build_bitwise() {
        let _guard = THREAD_OVERRIDE.lock().unwrap_or_else(|p| p.into_inner());
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        // Ragged 6×10 weight exercises cropped edge tiles.
        let layers: Vec<OnnLinear> = (0..3)
            .map(|i| {
                OnnLinear::new(
                    &mut store,
                    &format!("fc{i}"),
                    10,
                    6,
                    topo.clone(),
                    topo.clone(),
                    40 + i as u64,
                )
            })
            .collect();
        let weights: Vec<&PtcWeight> = layers.iter().map(|l| &l.weight).collect();

        let run = |threads: usize, prebuild: bool| -> (usize, Vec<Tensor>) {
            set_gemm_threads(threads);
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 3);
            if prebuild {
                prebuild_ptc_weights(&ctx, &weights);
            }
            let vals: Vec<Tensor> = weights.iter().map(|w| w.build(&ctx).value()).collect();
            set_gemm_threads(0);
            (graph.len(), vals)
        };

        let (len_serial, serial) = run(1, false);
        let (len_pre1, pre1) = run(1, true);
        let (len_pre8, pre8) = run(8, true);
        assert_eq!(len_serial, len_pre1, "prebuild must not change the tape");
        assert_eq!(len_pre1, len_pre8, "thread count must not change the tape");
        for ((a, b), c) in serial.iter().zip(&pre1).zip(&pre8) {
            assert_eq!(a.as_slice(), b.as_slice(), "serial vs prebuilt(1)");
            assert_eq!(a.as_slice(), c.as_slice(), "serial vs prebuilt(8)");
        }
    }

    #[test]
    fn prebuilt_cache_is_consumed_once() {
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        let layer = OnnLinear::new(&mut store, "fc", 4, 4, topo.clone(), topo, 7);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        prebuild_ptc_weights(&ctx, &[&layer.weight]);
        let first = layer.weight.build(&ctx);
        let len_after_first = graph.len();
        let second = layer.weight.build(&ctx);
        assert_eq!(
            first.value().as_slice(),
            second.value().as_slice(),
            "second build re-records the same weight"
        );
        assert!(
            graph.len() > len_after_first,
            "second build must record fresh nodes, not reuse the cache"
        );
    }
}
