//! Convenience entry points of the parallel weight-build scheduler.
//!
//! The actual stage→record→splice engine lives in [`crate::mesh`] and is
//! shared by every mesh family through the [`crate::mesh::MeshWeight`]
//! trait; this module only keeps the historical monomorphic entry point
//! for fixed-topology [`PtcWeight`] batches.

use crate::mesh::{prebuild_mesh_weights, MeshWeight};
use crate::onn::PtcWeight;
use crate::param::ForwardCtx;

/// Builds every weight's mesh-unitary segment concurrently and registers
/// the finished weight variables in `ctx`'s prebuilt cache — the
/// [`PtcWeight`]-typed convenience form of
/// [`crate::mesh::prebuild_mesh_weights`].
pub fn prebuild_ptc_weights<'g>(ctx: &ForwardCtx<'g, '_>, weights: &[&PtcWeight]) {
    let dyns: Vec<&dyn MeshWeight<'g>> = weights.iter().map(|w| *w as _).collect();
    prebuild_mesh_weights(ctx, &dyns);
}
