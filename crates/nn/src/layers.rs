//! Electronic (non-photonic) layers lowered onto the autodiff tape.

use crate::lower::{LowerError, LoweredStep};
use crate::param::{ForwardCtx, ParamId, ParamStore};
use adept_autodiff::Var;
use adept_photonics::DeviceCount;
use adept_tensor::{col2im, Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trainable or stateless network layer.
///
/// Layers take `&mut self` so stateful layers (batch-norm running statistics)
/// can update during training-mode forwards.
pub trait Layer {
    /// Runs the layer on the tape.
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g>;

    /// Parameters owned by this layer.
    fn param_ids(&self) -> Vec<ParamId> {
        Vec::new()
    }

    /// Sets the Gaussian phase-drift std on photonic layers (no-op for
    /// electronic ones). Used by variation-aware training and the Fig. 4
    /// robustness sweeps.
    fn set_phase_noise(&mut self, _std: f64) {}

    /// Device count of the layer's photonic tensor core, if it has one.
    fn device_count(&self) -> Option<DeviceCount> {
        None
    }

    /// Mesh weights this layer materializes each step, in forward order.
    ///
    /// The parallel build engine
    /// ([`crate::mesh::prebuild_mesh_weights`]) collects these across a
    /// model and constructs their mesh unitaries concurrently before the
    /// forward pass; layers without photonic weights report none.
    fn mesh_weights<'g>(&self) -> Vec<&dyn crate::mesh::MeshWeight<'g>> {
        Vec::new()
    }

    /// Non-parameter state that must survive checkpointing, as named flat
    /// f64 vectors — batch-norm running statistics are the one case in
    /// this workspace. Stateless layers report none. Names are
    /// `{layer}.{stat}` (e.g. `bn1.running_mean`), unique within a model,
    /// so a [`Sequential`] can concatenate its children's entries.
    fn state(&self) -> Vec<(String, Vec<f64>)> {
        Vec::new()
    }

    /// Restores state captured by [`Layer::state`]. Each layer picks out
    /// its own entries by name and ignores the rest, so a [`Sequential`]
    /// can broadcast one flat map to every child. Returns an error naming
    /// the entry on a missing stat or a length mismatch.
    fn load_state(&mut self, _state: &[(String, Vec<f64>)]) -> Result<(), String> {
        Ok(())
    }

    /// Appends this layer's tape-free inference steps to `out`
    /// (see [`crate::lower`]). `ctx` is the staging context of
    /// [`crate::lower::lower_model`]: photonic layers build their frozen
    /// weight matrices through it, consuming the prebuilt cache and the
    /// shared RNG exactly as a tape forward would. The default declines,
    /// naming the layer type — only layers whose eval-mode arithmetic is
    /// expressible as [`LoweredStep`]s opt in.
    fn lower<'g>(
        &self,
        _ctx: &ForwardCtx<'g, '_>,
        _out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        Err(LowerError::unsupported(std::any::type_name::<Self>()))
    }
}

impl<L: Layer + ?Sized> Layer for Box<L> {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        (**self).forward(ctx, x)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        (**self).param_ids()
    }

    fn set_phase_noise(&mut self, std: f64) {
        (**self).set_phase_noise(std);
    }

    fn device_count(&self) -> Option<DeviceCount> {
        (**self).device_count()
    }

    fn mesh_weights<'g>(&self) -> Vec<&dyn crate::mesh::MeshWeight<'g>> {
        (**self).mesh_weights()
    }

    fn state(&self) -> Vec<(String, Vec<f64>)> {
        (**self).state()
    }

    fn load_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        (**self).load_state(state)
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        (**self).lower(ctx, out)
    }
}

/// A sequence of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer. Accepts any [`Layer`] value directly — boxing
    /// happens internally, so `seq.push(Relu)` just works. An already
    /// boxed `Box<dyn Layer>` also compiles (via the blanket
    /// `Layer for Box<L>` impl) but pays an extra indirection; prefer
    /// [`Sequential::push_boxed`] for those.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer without re-boxing it (the form the
    /// model builders use for backend-erased layers).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let mut h = x;
        for layer in &mut self.layers {
            h = layer.forward(ctx, h);
        }
        h
    }

    fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(|l| l.param_ids()).collect()
    }

    fn set_phase_noise(&mut self, std: f64) {
        for layer in &mut self.layers {
            layer.set_phase_noise(std);
        }
    }

    fn device_count(&self) -> Option<DeviceCount> {
        self.layers.iter().find_map(|l| l.device_count())
    }

    fn mesh_weights<'g>(&self) -> Vec<&dyn crate::mesh::MeshWeight<'g>> {
        self.layers.iter().flat_map(|l| l.mesh_weights()).collect()
    }

    fn state(&self) -> Vec<(String, Vec<f64>)> {
        self.layers.iter().flat_map(|l| l.state()).collect()
    }

    fn load_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        for layer in &mut self.layers {
            layer.load_state(state)?;
        }
        Ok(())
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        // Forward order — photonic layers consume prebuilt weights and any
        // noise draws in the same sequence as the tape forward.
        for layer in &self.layers {
            layer.lower(ctx, out)?;
        }
        Ok(())
    }
}

/// Rectified linear unit.
#[derive(Debug, Default, Clone, Copy)]
pub struct Relu;

impl Layer for Relu {
    fn forward<'g>(&mut self, _ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        x.relu()
    }

    fn lower<'g>(
        &self,
        _ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Relu);
        Ok(())
    }
}

/// Flattens `[N, …]` to `[N, features]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Flatten;

impl Layer for Flatten {
    fn forward<'g>(&mut self, _ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn lower<'g>(
        &self,
        _ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Flatten);
        Ok(())
    }
}

/// Dense affine layer `y = x·Wᵀ + b`.
pub struct Linear {
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Registers a Kaiming-initialized linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Tensor::kaiming_uniform(&mut rng, &[out_features, in_features], in_features);
        Self {
            w: store.register(format!("{name}.w"), w, 1e-4),
            b: store.register(format!("{name}.b"), Tensor::zeros(&[out_features]), 0.0),
        }
    }
}

impl Layer for Linear {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        x.matmul(w.transpose()).add(b)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        // The tape multiplies by the materialized `w.transpose()` node
        // value — capture exactly that tensor so GEMMs see the same bits.
        out.push(LoweredStep::Linear {
            w_t: ctx.store.value(self.w).transpose(),
            bias: ctx.store.value(self.b).clone(),
        });
        Ok(())
    }
}

/// 2-D convolution via `im2col` lowering (dense electronic weights).
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    geom: Conv2dGeometry,
    out_channels: usize,
    /// Patch-matrix scratch reused across training steps.
    scratch: Tensor,
}

impl Conv2d {
    /// Registers a convolution with square kernels.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        geom: Conv2dGeometry,
        out_channels: usize,
        seed: u64,
    ) -> Self {
        let fan_in = geom.col_rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Tensor::kaiming_uniform(&mut rng, &[out_channels, fan_in], fan_in);
        Self {
            w: store.register(format!("{name}.w"), w, 1e-4),
            b: store.register(format!("{name}.b"), Tensor::zeros(&[out_channels]), 0.0),
            geom,
            out_channels,
            scratch: Tensor::default(),
        }
    }

    /// Convolution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geom
    }
}

impl Layer for Conv2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        let cols = im2col_var_scratch(x, self.geom, &mut self.scratch);
        let y = w.matmul(cols); // [OC, N·OH·OW]
        let n = x.shape()[0];
        let y = cols_to_nchw(
            y,
            n,
            self.out_channels,
            self.geom.out_h(),
            self.geom.out_w(),
        );
        let b3 = b.reshape(&[self.out_channels, 1, 1]);
        y.add(b3)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::Conv2d {
            w: ctx.store.value(self.w).clone(),
            bias: ctx.store.value(self.b).clone(),
            geom: self.geom,
            out_channels: self.out_channels,
        });
        Ok(())
    }
}

/// Differentiable `im2col` node (backward is `col2im`).
pub fn im2col_var<'g>(x: Var<'g>, geom: Conv2dGeometry) -> Var<'g> {
    let mut fresh = Tensor::default();
    im2col_var_scratch(x, geom, &mut fresh)
}

/// Differentiable `im2col` node writing into a reusable `scratch` buffer.
///
/// The unrolled patch matrix is the largest per-step allocation of a
/// convolution layer. Each layer keeps one scratch tensor across training
/// steps: the tape's handle from step `n` is dropped with the graph, so by
/// step `n+1` the scratch owns its buffer exclusively again and
/// [`adept_tensor::im2col_into`] fills it in place without allocating.
/// After the call, `scratch` and the tape node share the same storage
/// (a refcount bump, not a copy).
pub fn im2col_var_scratch<'g>(x: Var<'g>, geom: Conv2dGeometry, scratch: &mut Tensor) -> Var<'g> {
    let input = x.value();
    let n = input.shape()[0];
    let mut cols = std::mem::take(scratch);
    adept_tensor::im2col_into(&input, &geom, &mut cols);
    *scratch = cols.clone();
    x.graph().custom(
        &[x],
        cols,
        Box::new(move |g| vec![Some(col2im(g, &geom, n))]),
    )
}

/// Reorders a `[OC, N·P]` column matrix into NCHW `[N, OC, OH, OW]`.
pub fn cols_to_nchw<'g>(y: Var<'g>, n: usize, oc: usize, oh: usize, ow: usize) -> Var<'g> {
    let p = oh * ow;
    let mut positions = Vec::with_capacity(n * oc * p);
    for ni in 0..n {
        for c in 0..oc {
            for pix in 0..p {
                positions.push(c * (n * p) + ni * p + pix);
            }
        }
    }
    y.reshape(&[oc * n * p])
        .gather(&positions)
        .reshape(&[n, oc, oh, ow])
}

/// Differentiable batch normalization primitive over NCHW input.
///
/// When `training` is true, batch statistics are computed from `x`; in eval
/// mode the supplied `running` statistics are used. Returns the normalized
/// output plus the `(mean, var)` actually used, so stateful layers can
/// update their running averages.
///
/// # Panics
///
/// Panics if shapes disagree or eval mode is requested without statistics.
pub fn batch_norm2d_op<'g>(
    x: Var<'g>,
    gamma: Var<'g>,
    beta: Var<'g>,
    training: bool,
    running: Option<(&[f64], &[f64])>,
    eps: f64,
) -> (Var<'g>, Vec<f64>, Vec<f64>) {
    let v = x.value();
    assert_eq!(v.rank(), 4, "batch_norm2d_op expects NCHW");
    let (n, c, h, w) = (v.shape()[0], v.shape()[1], v.shape()[2], v.shape()[3]);
    let per = (n * h * w) as f64;
    let (mean, var) = if training {
        let mut mean = vec![0.0f64; c];
        let mut var = vec![0.0f64; c];
        for ci in 0..c {
            let mut s = 0.0;
            for ni in 0..n {
                let off = ((ni * c + ci) * h) * w;
                s += v.as_slice()[off..off + h * w].iter().sum::<f64>();
            }
            mean[ci] = s / per;
            let mut s2 = 0.0;
            for ni in 0..n {
                let off = ((ni * c + ci) * h) * w;
                s2 += v.as_slice()[off..off + h * w]
                    .iter()
                    .map(|&x| (x - mean[ci]) * (x - mean[ci]))
                    .sum::<f64>();
            }
            var[ci] = s2 / per;
        }
        (mean, var)
    } else {
        let (m, vv) = running.expect("eval mode requires running statistics");
        (m.to_vec(), vv.to_vec())
    };
    let inv_std: Vec<f64> = var.iter().map(|&x| 1.0 / (x + eps).sqrt()).collect();
    let mut xhat = v.clone();
    for ni in 0..n {
        for ci in 0..c {
            let off = ((ni * c + ci) * h) * w;
            for p in 0..h * w {
                xhat.as_mut_slice()[off + p] = (v.as_slice()[off + p] - mean[ci]) * inv_std[ci];
            }
        }
    }
    let gval = gamma.value();
    let bval = beta.value();
    let mut out = xhat.clone();
    for ni in 0..n {
        for ci in 0..c {
            let off = ((ni * c + ci) * h) * w;
            for p in 0..h * w {
                out.as_mut_slice()[off + p] =
                    out.as_slice()[off + p] * gval.as_slice()[ci] + bval.as_slice()[ci];
            }
        }
    }
    let xhat_saved = xhat;
    let inv_std_saved = inv_std;
    let mean_out = mean.clone();
    let var_out = var.clone();
    let node = x.graph().custom(
        &[x, gamma, beta],
        out,
        Box::new(move |g| {
            let mut dgamma = Tensor::zeros(&[c]);
            let mut dbeta = Tensor::zeros(&[c]);
            let mut dx = Tensor::zeros(&[n, c, h, w]);
            for ci in 0..c {
                let mut sum_g = 0.0;
                let mut sum_gx = 0.0;
                for ni in 0..n {
                    let off = ((ni * c + ci) * h) * w;
                    for p in 0..h * w {
                        let gi = g.as_slice()[off + p];
                        sum_g += gi;
                        sum_gx += gi * xhat_saved.as_slice()[off + p];
                    }
                }
                dbeta.as_mut_slice()[ci] = sum_g;
                dgamma.as_mut_slice()[ci] = sum_gx;
                let gam = gval.as_slice()[ci];
                for ni in 0..n {
                    let off = ((ni * c + ci) * h) * w;
                    for p in 0..h * w {
                        let gi = g.as_slice()[off + p];
                        let xh = xhat_saved.as_slice()[off + p];
                        dx.as_mut_slice()[off + p] = if training {
                            gam * inv_std_saved[ci] * (gi - sum_g / per - xh * sum_gx / per)
                        } else {
                            gam * inv_std_saved[ci] * gi
                        };
                    }
                }
            }
            vec![Some(dx), Some(dgamma), Some(dbeta)]
        }),
    );
    (node, mean_out, var_out)
}

/// Batch normalization over NCHW batches (per-channel statistics).
pub struct BatchNorm2d {
    gamma: ParamId,
    beta: ParamId,
    /// Construction name; keys the running statistics in [`Layer::state`].
    name: String,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    channels: usize,
}

impl BatchNorm2d {
    /// Registers a batch-norm layer for `channels` feature maps.
    pub fn new(store: &mut ParamStore, name: &str, channels: usize) -> Self {
        Self {
            gamma: store.register(format!("{name}.gamma"), Tensor::ones(&[channels]), 0.0),
            beta: store.register(format!("{name}.beta"), Tensor::zeros(&[channels]), 0.0),
            name: name.to_owned(),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        assert_eq!(x.shape()[1], self.channels, "channel mismatch");
        let gamma = ctx.param(self.gamma);
        let beta = ctx.param(self.beta);
        let (y, mean, var) = batch_norm2d_op(
            x,
            gamma,
            beta,
            ctx.training,
            Some((&self.running_mean, &self.running_var)),
            self.eps,
        );
        if ctx.training {
            for ci in 0..self.channels {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
        }
        y
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.gamma, self.beta]
    }

    fn state(&self) -> Vec<(String, Vec<f64>)> {
        vec![
            (
                format!("{}.running_mean", self.name),
                self.running_mean.clone(),
            ),
            (
                format!("{}.running_var", self.name),
                self.running_var.clone(),
            ),
        ]
    }

    fn load_state(&mut self, state: &[(String, Vec<f64>)]) -> Result<(), String> {
        for (field, dst) in [
            ("running_mean", &mut self.running_mean),
            ("running_var", &mut self.running_var),
        ] {
            let key = format!("{}.{field}", self.name);
            let entry = state
                .iter()
                .find(|(name, _)| *name == key)
                .ok_or_else(|| format!("missing layer state `{key}`"))?;
            if entry.1.len() != self.channels {
                return Err(format!(
                    "layer state `{key}` holds {} values, expected {}",
                    entry.1.len(),
                    self.channels
                ));
            }
            dst.copy_from_slice(&entry.1);
        }
        Ok(())
    }

    fn lower<'g>(
        &self,
        ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        // Freeze the eval-mode path of `batch_norm2d_op`: running stats
        // with inv_std precomputed the same way (`1/sqrt(var + eps)`).
        out.push(LoweredStep::BatchNorm2d {
            mean: self.running_mean.clone(),
            inv_std: self
                .running_var
                .iter()
                .map(|&v| 1.0 / (v + self.eps).sqrt())
                .collect(),
            gamma: ctx.store.value(self.gamma).as_slice().to_vec(),
            beta: ctx.store.value(self.beta).as_slice().to_vec(),
        });
        Ok(())
    }
}

/// Average pooling with square window and equal stride.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    kernel: usize,
}

impl AvgPool2d {
    /// Creates a pool with window `kernel` (stride = kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        Self { kernel }
    }
}

impl Layer for AvgPool2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let v = x.value();
        assert_eq!(v.rank(), 4, "AvgPool2d expects NCHW");
        let (n, c, h, w) = (v.shape()[0], v.shape()[1], v.shape()[2], v.shape()[3]);
        let k = self.kernel;
        assert!(
            h >= k && w >= k,
            "pool window {k} larger than input {h}x{w}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0;
                        for dy in 0..k {
                            for dx in 0..k {
                                s += v.at(&[ni, ci, oy * k + dy, ox * k + dx]);
                            }
                        }
                        *out.at_mut(&[ni, ci, oy, ox]) = s / (k * k) as f64;
                    }
                }
            }
        }
        ctx.graph.custom(
            &[x],
            out,
            Box::new(move |g| {
                let mut dx = Tensor::zeros(&[n, c, h, w]);
                let scale = 1.0 / (k * k) as f64;
                for ni in 0..n {
                    for ci in 0..c {
                        for oy in 0..(h / k) {
                            for ox in 0..(w / k) {
                                let gi = g.at(&[ni, ci, oy, ox]) * scale;
                                for dy in 0..k {
                                    for dx2 in 0..k {
                                        *dx.at_mut(&[ni, ci, oy * k + dy, ox * k + dx2]) += gi;
                                    }
                                }
                            }
                        }
                    }
                }
                vec![Some(dx)]
            }),
        )
    }

    fn lower<'g>(
        &self,
        _ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::AvgPool2d {
            kernel: self.kernel,
        });
        Ok(())
    }
}

/// Max pooling with square window and equal stride.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    kernel: usize,
}

impl MaxPool2d {
    /// Creates a pool with window `kernel` (stride = kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        Self { kernel }
    }
}

impl Layer for MaxPool2d {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let v = x.value();
        assert_eq!(v.rank(), 4, "MaxPool2d expects NCHW");
        let (n, c, h, w) = (v.shape()[0], v.shape()[1], v.shape()[2], v.shape()[3]);
        let k = self.kernel;
        assert!(
            h >= k && w >= k,
            "pool window {k} larger than input {h}x{w}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..k {
                            for dx in 0..k {
                                let off = ((ni * c + ci) * h + oy * k + dy) * w + ox * k + dx;
                                if v.as_slice()[off] > best {
                                    best = v.as_slice()[off];
                                    best_off = off;
                                }
                            }
                        }
                        *out.at_mut(&[ni, ci, oy, ox]) = best;
                        argmax[((ni * c + ci) * oh + oy) * ow + ox] = best_off;
                    }
                }
            }
        }
        ctx.graph.custom(
            &[x],
            out,
            Box::new(move |g| {
                let mut dx = Tensor::zeros(&[n, c, h, w]);
                for (i, &off) in argmax.iter().enumerate() {
                    dx.as_mut_slice()[off] += g.as_slice()[i];
                }
                vec![Some(dx)]
            }),
        )
    }

    fn lower<'g>(
        &self,
        _ctx: &ForwardCtx<'g, '_>,
        out: &mut Vec<LoweredStep>,
    ) -> Result<(), LowerError> {
        out.push(LoweredStep::MaxPool2d {
            kernel: self.kernel,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_autodiff::{check_gradients, Graph};
    use adept_tensor::im2col;

    #[test]
    fn linear_forward_shape_and_grad() {
        let mut store = ParamStore::new();
        let mut lin = Linear::new(&mut store, "fc", 4, 3, 0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let x = graph.constant(Tensor::ones(&[2, 4]));
        let y = lin.forward(&ctx, x);
        assert_eq!(y.shape(), vec![2, 3]);
        let grads = graph.backward(y.sum());
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        assert!(store.grad(lin.param_ids()[0]).norm() > 0.0);
        assert_eq!(store.grad(lin.param_ids()[1]).as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn conv_matches_im2col_reference() {
        let geom = Conv2dGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut store = ParamStore::new();
        let mut conv = Conv2d::new(&mut store, "c", geom, 4, 1);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let xval = Tensor::linspace(-1.0, 1.0, 50).reshape(&[1, 2, 5, 5]);
        let x = graph.constant(xval.clone());
        let y = conv.forward(&ctx, x);
        assert_eq!(y.shape(), vec![1, 4, 5, 5]);
        // Reference: weight · im2col + bias.
        let wv = store.value(conv.param_ids()[0]).clone();
        let cols = im2col(&xval, &geom);
        let want = wv.matmul(&cols);
        for oc in 0..4 {
            for p in 0..25 {
                let got = y.value().at(&[0, oc, p / 5, p % 5]);
                assert!((got - want.at(&[oc, p])).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn conv_gradcheck() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let x = Tensor::linspace(-1.0, 1.0, 16).reshape(&[1, 1, 4, 4]);
        let w = Tensor::linspace(0.5, -0.5, 9).reshape(&[1, 9]);
        check_gradients(
            |g, vars| {
                let cols = im2col_var(vars[0], geom);
                let y = Var::matmul(vars[1], cols);
                let _ = g;
                y.square().sum()
            },
            &[x, w],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn batchnorm_normalizes_and_gradchecks() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm2d::new(&mut store, "bn", 2);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let xv = Tensor::rand_normal(&mut rng, &[4, 2, 3, 3], 3.0, 2.0);
        let x = graph.constant(xv);
        let y = bn.forward(&ctx, x).value();
        // Per-channel output stats ≈ (0, 1).
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for i in 0..3 {
                    for j in 0..3 {
                        vals.push(y.at(&[n, c, i, j]));
                    }
                }
            }
            let m: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let v: f64 = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            assert!(m.abs() < 1e-9, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
        // Gradient check of the primitive in both training and eval modes.
        let xv = Tensor::rand_normal(&mut rng, &[2, 2, 2, 2], 0.0, 1.0);
        let gamma = Tensor::from_vec(vec![1.2, 0.8], &[2]);
        let beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        check_gradients(
            |_, vars| {
                let (y, _, _) = batch_norm2d_op(vars[0], vars[1], vars[2], true, None, 1e-5);
                y.square().sum()
            },
            &[xv.clone(), gamma.clone(), beta.clone()],
            1e-5,
            1e-4,
        )
        .unwrap();
        let rm = [0.3, -0.1];
        let rv = [1.5, 0.7];
        check_gradients(
            |_, vars| {
                let (y, _, _) =
                    batch_norm2d_op(vars[0], vars[1], vars[2], false, Some((&rm, &rv)), 1e-5);
                y.square().sum()
            },
            &[xv, gamma, beta],
            1e-5,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn avg_and_max_pool() {
        let mut store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let x = graph.leaf(Tensor::linspace(1.0, 16.0, 16).reshape(&[1, 1, 4, 4]));
        let mut avg = AvgPool2d::new(2);
        let y = avg.forward(&ctx, x);
        assert_eq!(y.shape(), vec![1, 1, 2, 2]);
        assert!((y.value().at(&[0, 0, 0, 0]) - 3.5).abs() < 1e-12);
        let mut maxp = MaxPool2d::new(2);
        let ym = maxp.forward(&ctx, x);
        assert_eq!(ym.value().at(&[0, 0, 0, 0]), 6.0);
        assert_eq!(ym.value().at(&[0, 0, 1, 1]), 16.0);
        // Max-pool gradient lands on the argmax only.
        let grads = graph.backward(ym.sum());
        let gx = grads.grad(x).unwrap();
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
        let _ = store.ids();
        store.zero_grads();
    }

    #[test]
    fn pooling_gradchecks() {
        let x = Tensor::linspace(-2.0, 2.0, 16).reshape(&[1, 1, 4, 4]);
        check_gradients(
            |g, vars| {
                let st = ParamStore::new();
                let ctx = ForwardCtx::new(g, &st, true, 0);
                AvgPool2d::new(2).forward(&ctx, vars[0]).square().sum()
            },
            &[x.clone()],
            1e-6,
            1e-6,
        )
        .unwrap();
        check_gradients(
            |g, vars| {
                let st = ParamStore::new();
                let ctx = ForwardCtx::new(g, &st, true, 0);
                MaxPool2d::new(2).forward(&ctx, vars[0]).square().sum()
            },
            &[x],
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn sequential_composes() {
        let mut store = ParamStore::new();
        let mut seq = Sequential::new();
        seq.push(Flatten);
        seq.push(Linear::new(&mut store, "fc", 8, 4, 1));
        seq.push(Relu);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.param_ids().len(), 2);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let x = graph.constant(Tensor::ones(&[3, 2, 2, 2]));
        let y = seq.forward(&ctx, x);
        assert_eq!(y.shape(), vec![3, 4]);
        assert!(y.value().min() >= 0.0, "relu output must be non-negative");
    }
}
