//! The paper's NN models, parametrized by a photonic backend.
//!
//! * Proxy model: the 2-layer CNN the SuperMesh is searched on
//!   (`C32K5-BN-ReLU-C32K5-BN-ReLU-Pool5-FC10` at paper scale);
//! * LeNet-5 and VGG-8: the transfer models of Table 3.
//!
//! Every convolution/linear layer is photonic; batch-norm, activations and
//! pooling stay electronic, as in the TorchONN convention. The `scale`
//! profiles shrink channel counts so the reproduction runs on CPU in
//! reasonable time; the structure is unchanged.

use crate::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, Sequential,
};
use crate::onn::{MziConv2d, MziLinear, OnnConv2d, OnnLinear};
use crate::param::ParamStore;
use adept_photonics::BlockMeshTopology;
use adept_tensor::Conv2dGeometry;

/// How each weight is realized photonically.
#[derive(Clone)]
pub enum Backend {
    /// Universal MZI-ONN (dense-equivalent) with PTC size `k`.
    Mzi {
        /// PTC tile size.
        k: usize,
    },
    /// Fixed block-mesh topology for `U` and `V` (FFT-ONN uses butterflies;
    /// ADEPT uses searched meshes).
    Topology {
        /// Topology of the `U` unitary mesh.
        u: BlockMeshTopology,
        /// Topology of the `V` unitary mesh.
        v: BlockMeshTopology,
    },
}

impl Backend {
    /// The FFT-ONN baseline backend: butterfly meshes for both unitaries.
    /// Builds trainable butterfly [`crate::onn::PtcWeight`]s end-to-end —
    /// every conv/linear weight's unitaries walk the `log2(k)`-stage
    /// butterfly through the batched `[T, B, K]` builder.
    pub fn butterfly(k: usize) -> Self {
        let t = BlockMeshTopology::butterfly(k);
        Backend::Topology { u: t.clone(), v: t }
    }

    /// A dense `b`-block mesh with full coupler columns and identity
    /// routing for both unitaries — the Clements-style "no routing
    /// search" reference design.
    pub fn dense(k: usize, blocks: usize) -> Self {
        let t = BlockMeshTopology::dense_identity_routing(k, blocks);
        Backend::Topology { u: t.clone(), v: t }
    }

    /// A fixed (frozen) pair of block-mesh topologies — e.g. a searched
    /// design exported by `adept::SearchOutcome`.
    pub fn topology(u: BlockMeshTopology, v: BlockMeshTopology) -> Self {
        Backend::Topology { u, v }
    }

    /// The backend a registry device spec describes: the MZI baseline for
    /// `kind = "mzi"`, otherwise the spec's block mesh programmed into
    /// both unitaries.
    pub fn from_device(spec: &adept_photonics::DeviceSpec) -> Self {
        match spec.topology.mesh() {
            None => Backend::Mzi {
                k: spec.topology.k(),
            },
            Some(t) => Backend::Topology { u: t.clone(), v: t },
        }
    }

    /// PTC size of the backend.
    pub fn k(&self) -> usize {
        match self {
            Backend::Mzi { k } => *k,
            Backend::Topology { u, .. } => u.k(),
        }
    }

    fn conv(
        &self,
        store: &mut ParamStore,
        name: &str,
        geom: Conv2dGeometry,
        out_channels: usize,
        seed: u64,
    ) -> Box<dyn Layer> {
        match self {
            Backend::Mzi { k } => {
                Box::new(MziConv2d::new(store, name, geom, out_channels, *k, seed))
            }
            Backend::Topology { u, v } => Box::new(OnnConv2d::new(
                store,
                name,
                geom,
                out_channels,
                u.clone(),
                v.clone(),
                seed,
            )),
        }
    }

    fn linear(
        &self,
        store: &mut ParamStore,
        name: &str,
        in_f: usize,
        out_f: usize,
        seed: u64,
    ) -> Box<dyn Layer> {
        match self {
            Backend::Mzi { k } => Box::new(MziLinear::new(store, name, in_f, out_f, *k, seed)),
            Backend::Topology { u, v } => Box::new(OnnLinear::new(
                store,
                name,
                in_f,
                out_f,
                u.clone(),
                v.clone(),
                seed,
            )),
        }
    }
}

/// Shape of the model input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputShape {
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
}

impl InputShape {
    /// Creates a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }
}

fn geom(c: usize, h: usize, w: usize, kernel: usize, padding: usize) -> Conv2dGeometry {
    Conv2dGeometry {
        in_channels: c,
        in_h: h,
        in_w: w,
        kernel,
        stride: 1,
        padding,
    }
}

/// The paper's proxy model: a 2-layer CNN
/// `Conv-BN-ReLU-Conv-BN-ReLU-Pool-FC`.
///
/// `channels` is 32 at paper scale; the repro default in the experiment
/// harness uses 8 for CPU speed.
pub fn proxy_cnn(
    store: &mut ParamStore,
    input: InputShape,
    channels: usize,
    classes: usize,
    backend: &Backend,
    seed: u64,
) -> Sequential {
    let mut m = Sequential::new();
    let k = 3;
    let g1 = geom(input.channels, input.height, input.width, k, 1);
    m.push_boxed(backend.conv(store, "conv1", g1, channels, seed));
    m.push(BatchNorm2d::new(store, "bn1", channels));
    m.push(Relu);
    let g2 = geom(channels, g1.out_h(), g1.out_w(), k, 1);
    m.push_boxed(backend.conv(store, "conv2", g2, channels, seed + 1));
    m.push(BatchNorm2d::new(store, "bn2", channels));
    m.push(Relu);
    // Pool down to a small map (paper uses Pool5 on 24×24 maps).
    let pool = (g2.out_h() / 3).max(1);
    m.push(AvgPool2d::new(pool));
    let fh = g2.out_h() / pool;
    let fw = g2.out_w() / pool;
    m.push(Flatten);
    m.push_boxed(backend.linear(store, "fc", channels * fh * fw, classes, seed + 2));
    m
}

/// LeNet-5 (channel-scaled): two conv+pool stages and three dense layers.
pub fn lenet5(
    store: &mut ParamStore,
    input: InputShape,
    classes: usize,
    backend: &Backend,
    scale: f64,
    seed: u64,
) -> Sequential {
    let c1 = ((6.0 * scale).round() as usize).max(2);
    let c2 = ((16.0 * scale).round() as usize).max(4);
    let f1 = ((120.0 * scale).round() as usize).max(8);
    let f2 = ((84.0 * scale).round() as usize).max(8);
    let mut m = Sequential::new();
    let g1 = geom(input.channels, input.height, input.width, 3, 1);
    m.push_boxed(backend.conv(store, "c1", g1, c1, seed));
    m.push(BatchNorm2d::new(store, "bn1", c1));
    m.push(Relu);
    m.push(MaxPool2d::new(2));
    let (h1, w1) = (g1.out_h() / 2, g1.out_w() / 2);
    let g2 = geom(c1, h1, w1, 3, 0);
    m.push_boxed(backend.conv(store, "c2", g2, c2, seed + 1));
    m.push(BatchNorm2d::new(store, "bn2", c2));
    m.push(Relu);
    m.push(MaxPool2d::new(2));
    let (h2, w2) = (g2.out_h() / 2, g2.out_w() / 2);
    m.push(Flatten);
    m.push_boxed(backend.linear(store, "f1", c2 * h2 * w2, f1, seed + 2));
    m.push(Relu);
    m.push_boxed(backend.linear(store, "f2", f1, f2, seed + 3));
    m.push(Relu);
    m.push_boxed(backend.linear(store, "f3", f2, classes, seed + 4));
    m
}

/// VGG-8 (channel-scaled): three double-conv stages with pooling, then a
/// classifier head.
pub fn vgg8(
    store: &mut ParamStore,
    input: InputShape,
    classes: usize,
    backend: &Backend,
    scale: f64,
    seed: u64,
) -> Sequential {
    let widths: Vec<usize> = [64.0, 128.0, 256.0]
        .iter()
        .map(|w| ((w * scale).round() as usize).max(4))
        .collect();
    let mut m = Sequential::new();
    let (mut c, mut h, mut w) = (input.channels, input.height, input.width);
    let mut seed = seed;
    for (stage, &width) in widths.iter().enumerate() {
        for rep in 0..2 {
            let g = geom(c, h, w, 3, 1);
            m.push_boxed(backend.conv(store, &format!("s{stage}c{rep}"), g, width, seed));
            m.push(BatchNorm2d::new(store, &format!("s{stage}b{rep}"), width));
            m.push(Relu);
            c = width;
            h = g.out_h();
            w = g.out_w();
            seed += 1;
        }
        if h >= 2 && w >= 2 {
            m.push(MaxPool2d::new(2));
            h /= 2;
            w /= 2;
        }
    }
    m.push(Flatten);
    let hidden = (widths[2] / 2).max(8);
    m.push_boxed(backend.linear(store, "fc1", c * h * w, hidden, seed));
    m.push(Relu);
    m.push_boxed(backend.linear(store, "fc2", hidden, classes, seed + 1));
    m
}

/// A small dense-only MLP (electronic reference, used by fast tests).
pub fn mlp(
    store: &mut ParamStore,
    in_features: usize,
    hidden: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut m = Sequential::new();
    m.push(Linear::new(store, "h", in_features, hidden, seed));
    m.push(Relu);
    m.push(Linear::new(store, "o", hidden, classes, seed + 1));
    m
}

/// Electronic CNN twin of [`proxy_cnn`] (dense conv weights), used as a
/// sanity reference in tests.
pub fn proxy_cnn_electronic(
    store: &mut ParamStore,
    input: InputShape,
    channels: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut m = Sequential::new();
    let g1 = geom(input.channels, input.height, input.width, 3, 1);
    m.push(Conv2d::new(store, "conv1", g1, channels, seed));
    m.push(BatchNorm2d::new(store, "bn1", channels));
    m.push(Relu);
    let pool = (g1.out_h() / 3).max(1);
    m.push(AvgPool2d::new(pool));
    let fh = g1.out_h() / pool;
    let fw = g1.out_w() / pool;
    m.push(Flatten);
    m.push(Linear::new(
        store,
        "fc",
        channels * fh * fw,
        classes,
        seed + 2,
    ));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ForwardCtx;
    use adept_autodiff::Graph;
    use adept_tensor::Tensor;

    fn forward_shape(
        model: &mut Sequential,
        store: &ParamStore,
        input: InputShape,
        n: usize,
    ) -> Vec<usize> {
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, store, false, 0);
        let x = graph.constant(Tensor::ones(&[
            n,
            input.channels,
            input.height,
            input.width,
        ]));
        model.forward(&ctx, x).shape()
    }

    #[test]
    fn proxy_cnn_output_shape() {
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 12, 12);
        let mut m = proxy_cnn(&mut store, input, 4, 10, &Backend::butterfly(4), 0);
        assert_eq!(forward_shape(&mut m, &store, input, 2), vec![2, 10]);
        assert!(
            m.device_count().is_some(),
            "photonic layer must report a PTC"
        );
    }

    #[test]
    fn proxy_cnn_dense_backend_trains_through_the_mesh_engine() {
        // The Clements-style dense-identity-routing backend must build and
        // backprop through the same batched builder as every other block
        // topology.
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 8, 8);
        let mut m = proxy_cnn(&mut store, input, 4, 4, &Backend::dense(4, 3), 0);
        assert_eq!(forward_shape(&mut m, &store, input, 2), vec![2, 4]);
        let count = m.device_count().expect("dense backend reports a PTC");
        // 3 blocks per unitary, full coupler columns, no crossings.
        assert_eq!(count.blocks, 6);
        assert_eq!(count.cr, 0);
        assert!(count.dc > 0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        crate::mesh::prebuild_mesh_weights(&ctx, &m.mesh_weights());
        let x = graph.constant(Tensor::ones(&[2, 1, 8, 8]));
        let loss = m.forward(&ctx, x).cross_entropy_logits(&[0, 1]);
        let grads = graph.backward_parallel(loss);
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        let total: f64 = m.param_ids().iter().map(|&id| store.grad(id).norm()).sum();
        assert!(total > 1e-9, "gradient must flow through the dense mesh");
    }

    #[test]
    fn proxy_cnn_mzi_backend() {
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 12, 12);
        let mut m = proxy_cnn(&mut store, input, 4, 10, &Backend::Mzi { k: 8 }, 0);
        assert_eq!(forward_shape(&mut m, &store, input, 1), vec![1, 10]);
        assert_eq!(m.device_count().unwrap().blocks, 32); // 4k for k=8
    }

    #[test]
    fn lenet5_output_shape() {
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 12, 12);
        let mut m = lenet5(&mut store, input, 10, &Backend::butterfly(4), 0.5, 0);
        assert_eq!(forward_shape(&mut m, &store, input, 2), vec![2, 10]);
    }

    #[test]
    fn vgg8_output_shape_rgb() {
        let mut store = ParamStore::new();
        let input = InputShape::new(3, 12, 12);
        let mut m = vgg8(&mut store, input, 10, &Backend::butterfly(4), 0.1, 0);
        assert_eq!(forward_shape(&mut m, &store, input, 2), vec![2, 10]);
    }

    #[test]
    fn phase_noise_propagates_to_all_photonic_layers() {
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 12, 12);
        let mut m = proxy_cnn(&mut store, input, 4, 10, &Backend::butterfly(4), 0);
        // Two forwards with the same seed must agree; after enabling noise,
        // outputs must change.
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 7);
        let x = graph.constant(Tensor::ones(&[1, 1, 12, 12]));
        let clean = m.forward(&ctx, x).value();
        m.set_phase_noise(0.05);
        let graph2 = Graph::new();
        let ctx2 = ForwardCtx::new(&graph2, &store, false, 7);
        let x2 = graph2.constant(Tensor::ones(&[1, 1, 12, 12]));
        let noisy = m.forward(&ctx2, x2).value();
        assert!(noisy.max_abs_diff(&clean) > 1e-9);
    }
}
