//! Parameter storage and the per-step forward context.
//!
//! Parameters persist across steps in a [`ParamStore`]; each optimization
//! step builds a fresh autodiff [`Graph`], and a [`ForwardCtx`] lazily
//! creates one leaf per touched parameter (memoized, so shared parameters
//! accumulate gradients correctly).

use adept_autodiff::{Gradients, Graph, Var};
use adept_photonics::FaultScenario;
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct ParamSlot {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Per-parameter weight-decay rate (the paper uses 1e-4 for Φ/Σ and
    /// 5e-4 for architecture θ).
    weight_decay: f64,
}

/// Registry of trainable tensors.
///
/// # Examples
///
/// ```
/// use adept_nn::ParamStore;
/// use adept_tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::zeros(&[2, 2]), 0.0);
/// assert_eq!(store.value(w).shape(), &[2, 2]);
/// ```
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        value: Tensor,
        weight_decay: f64,
    ) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.slots.push(ParamSlot {
            name: name.into(),
            value,
            grad,
            weight_decay,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total scalar element count.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable value (e.g. for manual re-initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// Weight-decay rate of this parameter.
    pub fn weight_decay(&self, id: ParamId) -> f64 {
        self.slots[id.0].weight_decay
    }

    /// Adds `g` into the parameter's gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.slots[id.0].grad.axpy(1.0, g);
    }

    /// Accumulates a batch of `(parameter, gradient)` pairs, typically from
    /// [`ForwardCtx::into_param_grads`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate_many(&mut self, updates: &[(ParamId, Tensor)]) {
        for (id, g) in updates {
            self.accumulate_grad(*id, g);
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad = Tensor::zeros(s.value.shape());
        }
    }

    /// All parameter ids.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.slots.len()).map(ParamId).collect()
    }

    /// Applies a raw update `value += delta` (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_delta(&mut self, id: ParamId, delta: &Tensor) {
        self.slots[id.0].value.axpy(1.0, delta);
    }
}

/// Returns a process-unique id for a buildable weight (used as the key of
/// the per-step prebuilt-weight cache — see [`ForwardCtx::take_prebuilt`]).
pub fn next_weight_uid() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Per-step forward context: one autodiff graph plus memoized parameter
/// leaves and shared randomness.
pub struct ForwardCtx<'g, 's> {
    /// The step's tape.
    pub graph: &'g Graph,
    /// The persistent parameters (read-only during forward).
    pub store: &'s ParamStore,
    /// Whether noise/statistics updates of training mode apply.
    pub training: bool,
    leaves: RefCell<HashMap<ParamId, Var<'g>>>,
    rng: RefCell<StdRng>,
    /// Weights materialized ahead of the forward pass by the parallel
    /// build scheduler, keyed by weight uid and tagged with the inputs
    /// they were built against. Consumed on first use.
    prebuilt: RefCell<HashMap<u64, (u64, Var<'g>)>>,
    /// Static hardware damage the step's mesh builds must realize
    /// (`None` = healthy hardware, the default).
    faults: Option<Arc<FaultScenario>>,
}

impl<'g, 's> ForwardCtx<'g, 's> {
    /// Creates a context for one step.
    pub fn new(graph: &'g Graph, store: &'s ParamStore, training: bool, seed: u64) -> Self {
        Self {
            graph,
            store,
            training,
            leaves: RefCell::new(HashMap::new()),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            prebuilt: RefCell::new(HashMap::new()),
            faults: None,
        }
    }

    /// Creates a context whose mesh builds realize a static fault
    /// scenario (fault-aware training and faulted evaluation). An empty
    /// or absent scenario leaves the tape byte-identical to
    /// [`ForwardCtx::new`].
    pub fn with_faults(
        graph: &'g Graph,
        store: &'s ParamStore,
        training: bool,
        seed: u64,
        faults: Option<Arc<FaultScenario>>,
    ) -> Self {
        let mut ctx = Self::new(graph, store, training, seed);
        ctx.faults = faults.filter(|f| !f.is_empty());
        ctx
    }

    /// The active fault scenario, if any (never an empty scenario).
    pub fn fault_scenario(&self) -> Option<&Arc<FaultScenario>> {
        self.faults.as_ref()
    }

    /// Registers a weight materialized ahead of the forward pass, so the
    /// layer's own `build` call picks it up instead of re-recording it.
    ///
    /// `tag` fingerprints the step inputs the weight was built against
    /// (the SuperMesh frame variables for search weights; 0 for weights
    /// with no per-step inputs beyond their own parameters); the matching
    /// [`ForwardCtx::take_prebuilt`] call must present the same tag.
    pub fn register_prebuilt(&self, uid: u64, tag: u64, weight: Var<'g>) {
        self.prebuilt.borrow_mut().insert(uid, (tag, weight));
    }

    /// Removes and returns the prebuilt weight for `uid`, if the scheduler
    /// materialized one this step. Consuming semantics keep repeated
    /// `build` calls (reference/equivalence tests build twice per step)
    /// recording fresh tape nodes after the first use.
    ///
    /// # Panics
    ///
    /// Panics if a prebuilt weight exists but was registered under a
    /// different `tag` — the caller is asking for the weight against
    /// different inputs (e.g. rebuilt SuperMesh frames) than the scheduler
    /// used, and silently returning the cached node would wire values and
    /// gradients to the wrong variables.
    pub fn take_prebuilt(&self, uid: u64, tag: u64) -> Option<Var<'g>> {
        let entry = self.prebuilt.borrow_mut().remove(&uid);
        entry.map(|(stored_tag, weight)| {
            assert_eq!(
                stored_tag, tag,
                "prebuilt weight {uid} was scheduled against different step inputs"
            );
            weight
        })
    }

    /// The (memoized) leaf variable of a parameter.
    pub fn param(&self, id: ParamId) -> Var<'g> {
        if let Some(v) = self.leaves.borrow().get(&id) {
            return *v;
        }
        let v = self.graph.leaf(self.store.value(id).clone());
        self.leaves.borrow_mut().insert(id, v);
        v
    }

    /// Runs `f` with the context's RNG (for noise injection).
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.rng.borrow_mut())
    }

    /// Wraps a plain tensor as a tape constant.
    pub fn constant(&self, t: Tensor) -> Var<'g> {
        self.graph.constant(t)
    }

    /// Consumes the context, returning every `(parameter, leaf)` pair
    /// created during the forward pass.
    pub fn into_leaves(self) -> Vec<(ParamId, Var<'g>)> {
        self.leaves.into_inner().into_iter().collect()
    }

    /// Consumes the context and extracts the gradient of every parameter
    /// leaf from `grads`. The result is owned, so the store can be mutated
    /// afterwards: `store.accumulate_many(&ctx.into_param_grads(&grads))`.
    pub fn into_param_grads(self, grads: &Gradients) -> Vec<(ParamId, Tensor)> {
        self.into_leaves()
            .into_iter()
            .filter_map(|(pid, var)| grads.grad(var).cloned().map(|g| (pid, g)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::ones(&[3]), 1e-4);
        let b = store.register("b", Tensor::zeros(&[2, 2]), 0.0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 7);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.weight_decay(a), 1e-4);
        assert_eq!(store.value(b).shape(), &[2, 2]);
    }

    #[test]
    fn shared_parameter_accumulates_once_graph_twice_use() {
        // Using the same parameter twice in a forward pass must produce the
        // summed gradient through the single memoized leaf.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]), 0.0);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let v1 = ctx.param(w);
        let v2 = ctx.param(w);
        assert_eq!(v1.id(), v2.id(), "leaf must be memoized");
        let loss = v1.mul(v2).sum(); // w² → dw = 2w = 6
        let grads = graph.backward(loss);
        let updates = ctx.into_param_grads(&grads);
        store.accumulate_many(&updates);
        assert_eq!(store.grad(w).as_slice(), &[6.0]);
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[2]), 0.0);
        store.accumulate_grad(w, &Tensor::ones(&[2]));
        assert_eq!(store.grad(w).as_slice(), &[1.0, 1.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let store = ParamStore::new();
        let graph = Graph::new();
        let c1 = ForwardCtx::new(&graph, &store, true, 42);
        let c2 = ForwardCtx::new(&graph, &store, true, 42);
        let x1: f64 = c1.with_rng(rand::Rng::gen);
        let x2: f64 = c2.with_rng(rand::Rng::gen);
        assert_eq!(x1, x2);
    }
}
