//! Neural-network stack for the ADEPT reproduction.
//!
//! Provides everything the paper's experiments train:
//!
//! * [`ParamStore`]/[`ForwardCtx`] — parameter registry bridging persistent
//!   weights to the per-step autodiff tape;
//! * [`layers`] — electronic layers (Conv2d, BatchNorm2d, ReLU, pooling,
//!   Linear, Flatten) lowered onto the tape;
//! * [`onn`] — photonic layers: [`onn::PtcWeight`] materializes a weight
//!   matrix from `K×K` tiles `Re(U·Σ·V)` with block-mesh unitaries
//!   (paper Eq. 1–2) built by [`onn::batched_tile_unitary`] — all `T`
//!   tiles' phases stacked into `[T, B, K]` and every mesh block applied
//!   to the whole `[T, K, K]` stack at once, so the tape holds `O(B)`
//!   nodes per mesh instead of `O(T·B)` per-tile chains;
//!   [`onn::OnnLinear`]/[`onn::OnnConv2d`] use it, and [`onn::MziLinear`]
//!   is the universal MZI-ONN baseline with
//!   decompose–perturb–reconstruct phase-noise simulation;
//! * [`models`] — the paper's proxy 2-layer CNN, LeNet-5 and VGG-8, all
//!   parametrized by a photonic backend;
//! * [`optim`] — Adam/SGD with cosine learning-rate schedule;
//! * [`train`] — training/eval loops including variation-aware training
//!   (Gaussian phase noise injected during training, paper §4.1) and
//!   fault-aware retraining: [`ForwardCtx::with_faults`] carries a static
//!   [`adept_photonics::FaultScenario`] that the mesh build realizes as
//!   stage-time phase deltas ([`train::TrainConfig`]'s `fault`,
//!   [`train::evaluate_faulted`]) — with faults off the tape stays
//!   byte-identical;
//! * [`mesh`] — the topology-driven mesh-weight API: the object-safe
//!   [`mesh::MeshWeight`] trait (stage → record → splice + finish) and the
//!   **single** build engine behind every mesh family — fixed-topology PTC
//!   weights here, frame-bound SuperMesh search weights in `adept` — whose
//!   parallel scheduler records every layer's mesh unitaries on private
//!   sub-tapes across the shared thread pool and splices back in layer
//!   order, bit-identical (node ids, values, noise draws, gradients) to
//!   the serial walk at any thread count;
//! * [`lower`] — the tape-free lowering surface: [`lower::lower_model`]
//!   freezes a trained model into flat [`lower::LoweredStep`]s (weight
//!   matrices materialized once through the tape builder, bit-identical to
//!   a forward pass) that the `adept-infer` compiler turns into an
//!   allocation-free execution plan.

pub mod build;
pub mod checkpoint;
pub mod layers;
pub mod lower;
pub mod mesh;
pub mod models;
pub mod onn;
pub mod optim;
mod param;
pub mod train;

pub use build::prebuild_ptc_weights;
pub use checkpoint::{load_backend, save_backend, Checkpoint, CheckpointError, ModelArch};
pub use lower::{lower_model, lower_model_faulted, LowerError, LoweredStep};
pub use mesh::{build_mesh_weight, prebuild_mesh_weights, MeshWeight, StagedBuild};
pub use param::{next_weight_uid, ForwardCtx, ParamId, ParamStore};
