//! Neural-network stack for the ADEPT reproduction.
//!
//! Provides everything the paper's experiments train:
//!
//! * [`ParamStore`]/[`ForwardCtx`] — parameter registry bridging persistent
//!   weights to the per-step autodiff tape;
//! * [`layers`] — electronic layers (Conv2d, BatchNorm2d, ReLU, pooling,
//!   Linear, Flatten) lowered onto the tape;
//! * [`onn`] — photonic layers: [`onn::PtcWeight`] materializes a weight
//!   matrix from `K×K` tiles `Re(U·Σ·V)` with block-mesh unitaries
//!   (paper Eq. 1–2) built by [`onn::batched_tile_unitary`] — all `T`
//!   tiles' phases stacked into `[T, B, K]` and every mesh block applied
//!   to the whole `[T, K, K]` stack at once, so the tape holds `O(B)`
//!   nodes per mesh instead of `O(T·B)` per-tile chains;
//!   [`onn::OnnLinear`]/[`onn::OnnConv2d`] use it, and [`onn::MziLinear`]
//!   is the universal MZI-ONN baseline with
//!   decompose–perturb–reconstruct phase-noise simulation;
//! * [`models`] — the paper's proxy 2-layer CNN, LeNet-5 and VGG-8, all
//!   parametrized by a photonic backend;
//! * [`optim`] — Adam/SGD with cosine learning-rate schedule;
//! * [`train`] — training/eval loops including variation-aware training
//!   (Gaussian phase noise injected during training, paper §4.1);
//! * [`build`] — the parallel weight-build scheduler: every layer's mesh
//!   unitaries record on private sub-tapes across the shared thread pool
//!   and splice back in layer order, bit-identical (node ids, values,
//!   noise draws, gradients) to the serial walk at any thread count.

pub mod build;
pub mod layers;
pub mod models;
pub mod onn;
pub mod optim;
mod param;
pub mod train;

pub use build::prebuild_ptc_weights;
pub use param::{next_weight_uid, ForwardCtx, ParamId, ParamStore};
