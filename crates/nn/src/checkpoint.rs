//! Versioned checkpoints for trained photonic designs.
//!
//! A checkpoint freezes everything needed to rebuild a trained backend in
//! another process **bit-identically**: the model architecture, the mesh
//! topology descriptor, every parameter tensor as exact f64 bit patterns,
//! the batch-norm running statistics ([`Layer::state`]), the noise seed a
//! compiled plan should draw its phase-drift stream from, and the full
//! [`FaultScenario`] (plus its fingerprint as an integrity check). A
//! loaded checkpoint [`instantiate`](Checkpoint::instantiate)s through the
//! same model builder that trained it — identical parameter registration
//! order — then overwrites every tensor from the stored bits, so tape
//! forwards, `lower_model`, compiled `ExecPlan`s and `BENCH_*` outputs all
//! reproduce the in-process original at any `ONN_THREADS`.
//!
//! # File layout (version 1)
//!
//! Line-oriented ASCII; f64 values are written as 16-hex-digit
//! `f64::to_bits` patterns (never decimal — exactness is the contract):
//!
//! ```text
//! adept-checkpoint v1
//! model proxy_cnn <in_c> <in_h> <in_w> <channels> <classes> <arch_seed>
//! backend mzi <k>                          # or:
//! backend topology <k> <u_blocks> <v_blocks>
//! ublock <dc_start> <coupler 0/1 flags|-> <perm…>   # u_blocks lines
//! vblock …                                          # v_blocks lines
//! noise_seed <u64>
//! fault_seed <u64>                         # optional group: the stored
//! fault dead_shifter <p_bits>              # FaultScenario, one line per
//! fault stuck_shifter <p_bits> <θ_bits>    # composed kind, closed by its
//! fault dead_coupler <p_bits>              # fingerprint (integrity
//! fault thermal_drift <std_bits>           # check on load)
//! fault quant <bits>
//! fault_fp <hex16>
//! params <count>
//! param <name> <ndim> <dims…> <len> <hex bits…>     # ParamStore order
//! state <count>
//! stat <name> <len> <hex bits…>                     # Layer::state order
//! end <hex16>                              # FNV-1a over all bytes above
//! ```
//!
//! Every load failure is a [`CheckpointError`] with the offending line:
//! not-a-checkpoint, unsupported version, truncation (missing `end`),
//! checksum mismatch, malformed records, and name/shape mismatches
//! against the rebuilt architecture.

use crate::layers::{Layer, Sequential};
use crate::models::{proxy_cnn, Backend, InputShape};
use crate::param::ParamStore;
use adept_photonics::{BlockMeshTopology, FaultKind, FaultScenario, MeshBlock};
use adept_tensor::Tensor;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// A load/save failure, anchored to a checkpoint line (`line == 0` means
/// file-level: I/O, truncation, architecture mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// 1-based line the error was detected on; 0 for file-level errors.
    pub line: usize,
    /// What went wrong and, where possible, how to fix it.
    pub message: String,
}

impl CheckpointError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    fn file(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "checkpoint: {}", self.message)
        } else {
            write!(f, "checkpoint line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The architecture a checkpoint rebuilds on load. Stored declaratively —
/// the loader re-runs the *same* model builder with the same seed, so
/// parameter registration order (and thus [`ParamStore`] ids) reproduce
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArch {
    /// The paper's proxy 2-layer CNN ([`proxy_cnn`]).
    ProxyCnn {
        /// Input tensor shape.
        input: InputShape,
        /// Conv channel width.
        channels: usize,
        /// Classifier classes.
        classes: usize,
        /// Architecture seed (weight init; overwritten on load, but the
        /// builder still needs it to register identically).
        seed: u64,
    },
}

impl ModelArch {
    /// The `[C, H, W]` sample shape `ExecPlan::compile` expects.
    pub fn sample_shape(&self) -> Vec<usize> {
        match self {
            ModelArch::ProxyCnn { input, .. } => {
                vec![input.channels, input.height, input.width]
            }
        }
    }
}

/// One parameter tensor as exact bits, in [`ParamStore`] order.
#[derive(Debug, Clone, PartialEq)]
struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    bits: Vec<u64>,
}

/// One [`Layer::state`] entry as exact bits.
#[derive(Debug, Clone, PartialEq)]
struct StateRecord {
    name: String,
    bits: Vec<u64>,
}

/// A frozen trained design: everything [`save_backend`] writes and
/// [`load_backend`] restores.
#[derive(Clone)]
pub struct Checkpoint {
    /// Architecture to rebuild.
    pub arch: ModelArch,
    /// Mesh backend (topology descriptor, serialized block-exact).
    pub backend: Backend,
    /// Seed the compiled plan's phase-noise stream should use.
    pub noise_seed: u64,
    /// Hardware damage the design was frozen against, if any.
    pub fault: Option<FaultScenario>,
    params: Vec<ParamRecord>,
    state: Vec<StateRecord>,
}

impl Checkpoint {
    /// Captures a trained design: all of `store`'s tensors (registration
    /// order) and the model's layer state, as exact bits.
    pub fn capture(
        arch: ModelArch,
        backend: &Backend,
        model: &dyn Layer,
        store: &ParamStore,
        noise_seed: u64,
        fault: Option<&FaultScenario>,
    ) -> Self {
        let params = store
            .ids()
            .into_iter()
            .map(|id| {
                let t = store.value(id);
                ParamRecord {
                    name: store.name(id).to_owned(),
                    shape: t.shape().to_vec(),
                    bits: t.as_slice().iter().map(|v| v.to_bits()).collect(),
                }
            })
            .collect();
        let state = model
            .state()
            .into_iter()
            .map(|(name, values)| StateRecord {
                name,
                bits: values.iter().map(|v| v.to_bits()).collect(),
            })
            .collect();
        Self {
            arch,
            backend: backend.clone(),
            noise_seed,
            fault: fault.cloned(),
            params,
            state,
        }
    }

    /// Rebuilds the design: re-runs the architecture builder (identical
    /// registration order), overwrites every parameter from the stored
    /// bits, and restores layer state. Errors name the first mismatching
    /// parameter — a checkpoint only loads into the exact architecture
    /// that saved it.
    pub fn instantiate(&self) -> Result<(Sequential, ParamStore), CheckpointError> {
        let ModelArch::ProxyCnn {
            input,
            channels,
            classes,
            seed,
        } = self.arch;
        let mut store = ParamStore::new();
        let mut model = proxy_cnn(&mut store, input, channels, classes, &self.backend, seed);
        let ids = store.ids();
        if ids.len() != self.params.len() {
            return Err(CheckpointError::file(format!(
                "architecture registers {} parameters but the checkpoint holds {} — \
                 the stored model/backend descriptor does not match this build",
                ids.len(),
                self.params.len()
            )));
        }
        for (id, rec) in ids.into_iter().zip(&self.params) {
            if store.name(id) != rec.name {
                return Err(CheckpointError::file(format!(
                    "parameter order mismatch: architecture registers `{}` where the \
                     checkpoint stores `{}`",
                    store.name(id),
                    rec.name
                )));
            }
            if store.value(id).shape() != rec.shape.as_slice() {
                return Err(CheckpointError::file(format!(
                    "parameter `{}` has shape {:?} in this architecture but {:?} in the \
                     checkpoint",
                    rec.name,
                    store.value(id).shape(),
                    rec.shape
                )));
            }
            let values: Vec<f64> = rec.bits.iter().map(|&b| f64::from_bits(b)).collect();
            *store.value_mut(id) = Tensor::from_vec(values, &rec.shape);
        }
        let state: Vec<(String, Vec<f64>)> = self
            .state
            .iter()
            .map(|rec| {
                (
                    rec.name.clone(),
                    rec.bits.iter().map(|&b| f64::from_bits(b)).collect(),
                )
            })
            .collect();
        model.load_state(&state).map_err(CheckpointError::file)?;
        Ok((model, store))
    }

    /// The `[C, H, W]` sample shape for `ExecPlan::compile`.
    pub fn sample_shape(&self) -> Vec<usize> {
        self.arch.sample_shape()
    }

    /// Number of stored parameter tensors.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Total stored scalars across all parameters.
    pub fn total_scalars(&self) -> usize {
        self.params.iter().map(|p| p.bits.len()).sum()
    }

    /// Serializes to the version-1 text format.
    pub fn to_text(&self) -> String {
        let mut body = String::from("adept-checkpoint v1\n");
        let ModelArch::ProxyCnn {
            input,
            channels,
            classes,
            seed,
        } = self.arch;
        let _ = writeln!(
            body,
            "model proxy_cnn {} {} {} {channels} {classes} {seed}",
            input.channels, input.height, input.width
        );
        match &self.backend {
            Backend::Mzi { k } => {
                let _ = writeln!(body, "backend mzi {k}");
            }
            Backend::Topology { u, v } => {
                let _ = writeln!(
                    body,
                    "backend topology {} {} {}",
                    u.k(),
                    u.blocks().len(),
                    v.blocks().len()
                );
                for (tag, topo) in [("ublock", u), ("vblock", v)] {
                    for block in topo.blocks() {
                        body.push_str(&block_line(tag, block));
                    }
                }
            }
        }
        let _ = writeln!(body, "noise_seed {}", self.noise_seed);
        if let Some(fault) = &self.fault {
            let _ = writeln!(body, "fault_seed {}", fault.seed());
            for kind in fault.faults() {
                match *kind {
                    FaultKind::DeadShifter { p } => {
                        let _ = writeln!(body, "fault dead_shifter {:016x}", p.to_bits());
                    }
                    FaultKind::StuckShifter { p, theta } => {
                        let _ = writeln!(
                            body,
                            "fault stuck_shifter {:016x} {:016x}",
                            p.to_bits(),
                            theta.to_bits()
                        );
                    }
                    FaultKind::DeadCoupler { p } => {
                        let _ = writeln!(body, "fault dead_coupler {:016x}", p.to_bits());
                    }
                    FaultKind::ThermalDrift { std } => {
                        let _ = writeln!(body, "fault thermal_drift {:016x}", std.to_bits());
                    }
                    FaultKind::PhaseQuantization { bits } => {
                        let _ = writeln!(body, "fault quant {bits}");
                    }
                }
            }
            let _ = writeln!(body, "fault_fp {:016x}", fault.fingerprint());
        }
        let _ = writeln!(body, "params {}", self.params.len());
        for rec in &self.params {
            let _ = write!(body, "param {} {}", rec.name, rec.shape.len());
            for d in &rec.shape {
                let _ = write!(body, " {d}");
            }
            let _ = write!(body, " {}", rec.bits.len());
            for b in &rec.bits {
                let _ = write!(body, " {b:016x}");
            }
            body.push('\n');
        }
        let _ = writeln!(body, "state {}", self.state.len());
        for rec in &self.state {
            let _ = write!(body, "stat {} {}", rec.name, rec.bits.len());
            for b in &rec.bits {
                let _ = write!(body, " {b:016x}");
            }
            body.push('\n');
        }
        let checksum = fnv1a(body.as_bytes());
        let _ = writeln!(body, "end {checksum:016x}");
        body
    }

    /// Parses the version-1 text format, verifying the trailing checksum
    /// and (when present) the fault-scenario fingerprint.
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        let first = text.lines().next().unwrap_or("");
        if first != "adept-checkpoint v1" {
            if let Some(version) = first.strip_prefix("adept-checkpoint ") {
                return Err(CheckpointError::at(
                    1,
                    format!("unsupported checkpoint version `{version}` (this build reads v1)"),
                ));
            }
            return Err(CheckpointError::at(
                1,
                "not an adept checkpoint (missing `adept-checkpoint v1` header)",
            ));
        }
        let end_pos = text.rfind("\nend ").ok_or_else(|| {
            CheckpointError::file("truncated checkpoint: missing trailing `end <checksum>` line")
        })?;
        let body = &text[..end_pos + 1];
        let end_line_no = body.lines().count() + 1;
        let end_line = text[end_pos + 1..].trim_end();
        if !text[end_pos + 1..].trim_end_matches('\n').eq(end_line)
            || end_line.split_whitespace().count() != 2
        {
            return Err(CheckpointError::at(
                end_line_no,
                "malformed `end <checksum>` line (or trailing garbage after it)",
            ));
        }
        let stored = u64::from_str_radix(end_line.split_whitespace().nth(1).unwrap(), 16)
            .map_err(|_| CheckpointError::at(end_line_no, "checksum is not 16 hex digits"))?;
        let actual = fnv1a(body.as_bytes());
        if stored != actual {
            return Err(CheckpointError::at(
                end_line_no,
                format!(
                    "checksum mismatch (stored {stored:016x}, content hashes to {actual:016x}) — \
                     the file is corrupted or was hand-edited"
                ),
            ));
        }

        let mut cur = Cursor::new(body);
        cur.next(); // header, already validated
        let (line_no, tokens) = cur.expect("model line")?;
        if tokens.len() != 8 || tokens[0] != "model" || tokens[1] != "proxy_cnn" {
            return Err(CheckpointError::at(
                line_no,
                "expected `model proxy_cnn <in_c> <in_h> <in_w> <channels> <classes> <seed>`",
            ));
        }
        let nums = parse_usizes(line_no, &tokens[2..7])?;
        let arch = ModelArch::ProxyCnn {
            input: InputShape::new(nums[0], nums[1], nums[2]),
            channels: nums[3],
            classes: nums[4],
            seed: parse_u64(line_no, tokens[7])?,
        };

        let (line_no, tokens) = cur.expect("backend line")?;
        if tokens.first() != Some(&"backend") {
            return Err(CheckpointError::at(
                line_no,
                "expected `backend mzi|topology …`",
            ));
        }
        let backend =
            match tokens.get(1).copied() {
                Some("mzi") if tokens.len() == 3 => Backend::Mzi {
                    k: parse_usize(line_no, tokens[2])?,
                },
                Some("topology") if tokens.len() == 5 => {
                    let k = parse_usize(line_no, tokens[2])?;
                    let nu = parse_usize(line_no, tokens[3])?;
                    let nv = parse_usize(line_no, tokens[4])?;
                    let u = parse_mesh(&mut cur, "ublock", k, nu)?;
                    let v = parse_mesh(&mut cur, "vblock", k, nv)?;
                    Backend::Topology { u, v }
                }
                _ => return Err(CheckpointError::at(
                    line_no,
                    "expected `backend mzi <k>` or `backend topology <k> <u_blocks> <v_blocks>`",
                )),
            };

        let (line_no, tokens) = cur.expect("noise_seed line")?;
        if tokens.len() != 2 || tokens[0] != "noise_seed" {
            return Err(CheckpointError::at(line_no, "expected `noise_seed <u64>`"));
        }
        let noise_seed = parse_u64(line_no, tokens[1])?;

        let fault = if cur.peek_key() == Some("fault_seed") {
            Some(parse_fault(&mut cur)?)
        } else {
            None
        };

        let (line_no, tokens) = cur.expect("params line")?;
        if tokens.len() != 2 || tokens[0] != "params" {
            return Err(CheckpointError::at(line_no, "expected `params <count>`"));
        }
        let n_params = parse_usize(line_no, tokens[1])?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let (line_no, tokens) = cur.expect("param line")?;
            if tokens.len() < 4 || tokens[0] != "param" {
                return Err(CheckpointError::at(
                    line_no,
                    "expected `param <name> <ndim> <dims…> <len> <bits…>`",
                ));
            }
            let name = tokens[1].to_owned();
            let ndim = parse_usize(line_no, tokens[2])?;
            if tokens.len() < 4 + ndim {
                return Err(CheckpointError::at(
                    line_no,
                    format!("param `{name}` declares {ndim} dims but the line is too short"),
                ));
            }
            let shape = parse_usizes(line_no, &tokens[3..3 + ndim])?;
            let len = parse_usize(line_no, tokens[3 + ndim])?;
            if shape.iter().product::<usize>() != len {
                return Err(CheckpointError::at(
                    line_no,
                    format!("param `{name}`: shape {shape:?} does not hold {len} scalars"),
                ));
            }
            let bit_tokens = &tokens[4 + ndim..];
            if bit_tokens.len() != len {
                return Err(CheckpointError::at(
                    line_no,
                    format!(
                        "param `{name}` declares {len} scalars but carries {} — truncated line",
                        bit_tokens.len()
                    ),
                ));
            }
            let bits = parse_hexes(line_no, bit_tokens)?;
            params.push(ParamRecord { name, shape, bits });
        }

        let (line_no, tokens) = cur.expect("state line")?;
        if tokens.len() != 2 || tokens[0] != "state" {
            return Err(CheckpointError::at(line_no, "expected `state <count>`"));
        }
        let n_state = parse_usize(line_no, tokens[1])?;
        let mut state = Vec::with_capacity(n_state);
        for _ in 0..n_state {
            let (line_no, tokens) = cur.expect("stat line")?;
            if tokens.len() < 3 || tokens[0] != "stat" {
                return Err(CheckpointError::at(
                    line_no,
                    "expected `stat <name> <len> <bits…>`",
                ));
            }
            let name = tokens[1].to_owned();
            let len = parse_usize(line_no, tokens[2])?;
            if tokens.len() != 3 + len {
                return Err(CheckpointError::at(
                    line_no,
                    format!(
                        "stat `{name}` declares {len} values but carries {} — truncated line",
                        tokens.len() - 3
                    ),
                ));
            }
            let bits = parse_hexes(line_no, &tokens[3..])?;
            state.push(StateRecord { name, bits });
        }
        if let Some((line_no, _)) = cur.next() {
            return Err(CheckpointError::at(line_no, "unexpected trailing content"));
        }

        Ok(Self {
            arch,
            backend,
            noise_seed,
            fault,
            params,
            state,
        })
    }
}

/// Writes a checkpoint file (see [`Checkpoint::to_text`] for the layout).
pub fn save_backend(
    path: impl AsRef<Path>,
    checkpoint: &Checkpoint,
) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    std::fs::write(path, checkpoint.to_text())
        .map_err(|e| CheckpointError::file(format!("cannot write {}: {e}", path.display())))
}

/// Reads and verifies a checkpoint file.
pub fn load_backend(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckpointError::file(format!("cannot read {}: {e}", path.display())))?;
    Checkpoint::parse(&text)
}

fn block_line(tag: &str, block: &MeshBlock) -> String {
    let flags: String = if block.couplers.is_empty() {
        "-".to_owned()
    } else {
        block
            .couplers
            .iter()
            .map(|&on| if on { '1' } else { '0' })
            .collect()
    };
    let perm: Vec<String> = block
        .perm
        .as_slice()
        .iter()
        .map(|w| w.to_string())
        .collect();
    format!("{tag} {} {flags} {}\n", block.dc_start, perm.join(" "))
}

/// Token cursor over non-empty body lines with 1-based line numbers.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    peeked: Option<(usize, Vec<&'a str>)>,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a str) -> Self {
        Self {
            lines: body.lines().enumerate(),
            peeked: None,
        }
    }

    fn next(&mut self) -> Option<(usize, Vec<&'a str>)> {
        if let Some(item) = self.peeked.take() {
            return Some(item);
        }
        for (i, line) in self.lines.by_ref() {
            if !line.trim().is_empty() {
                return Some((i + 1, line.split_whitespace().collect()));
            }
        }
        None
    }

    fn peek_key(&mut self) -> Option<&str> {
        if self.peeked.is_none() {
            self.peeked = self.next();
        }
        self.peeked.as_ref().and_then(|(_, t)| t.first().copied())
    }

    fn expect(&mut self, what: &str) -> Result<(usize, Vec<&'a str>), CheckpointError> {
        self.next()
            .ok_or_else(|| CheckpointError::file(format!("truncated checkpoint: expected {what}")))
    }
}

fn parse_usize(line: usize, token: &str) -> Result<usize, CheckpointError> {
    token
        .parse()
        .map_err(|_| CheckpointError::at(line, format!("expected an integer, got `{token}`")))
}

fn parse_usizes(line: usize, tokens: &[&str]) -> Result<Vec<usize>, CheckpointError> {
    tokens.iter().map(|t| parse_usize(line, t)).collect()
}

fn parse_u64(line: usize, token: &str) -> Result<u64, CheckpointError> {
    token
        .parse()
        .map_err(|_| CheckpointError::at(line, format!("expected an integer, got `{token}`")))
}

fn parse_hex(line: usize, token: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(token, 16).map_err(|_| {
        CheckpointError::at(
            line,
            format!("expected a 16-hex-digit bit pattern, got `{token}`"),
        )
    })
}

fn parse_hexes(line: usize, tokens: &[&str]) -> Result<Vec<u64>, CheckpointError> {
    tokens.iter().map(|t| parse_hex(line, t)).collect()
}

fn parse_mesh(
    cur: &mut Cursor<'_>,
    tag: &str,
    k: usize,
    count: usize,
) -> Result<BlockMeshTopology, CheckpointError> {
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let (line_no, tokens) = cur.expect(&format!("{tag} line"))?;
        if tokens.len() != 3 + k || tokens[0] != tag {
            return Err(CheckpointError::at(
                line_no,
                format!("expected `{tag} <dc_start> <flags> <{k} perm wires>`"),
            ));
        }
        let dc_start = parse_usize(line_no, tokens[1])?;
        if dc_start > 1 {
            return Err(CheckpointError::at(line_no, "dc_start must be 0 or 1"));
        }
        let couplers: Vec<bool> = if tokens[2] == "-" {
            Vec::new()
        } else {
            tokens[2]
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    c => Err(CheckpointError::at(
                        line_no,
                        format!("coupler flags must be 0/1, got `{c}`"),
                    )),
                })
                .collect::<Result<_, _>>()?
        };
        if couplers.len() != MeshBlock::coupler_slots(k, dc_start) {
            return Err(CheckpointError::at(
                line_no,
                format!(
                    "{} coupler flags, k = {k} with dc_start = {dc_start} needs {}",
                    couplers.len(),
                    MeshBlock::coupler_slots(k, dc_start)
                ),
            ));
        }
        let image = parse_usizes(line_no, &tokens[3..])?;
        let perm = adept_linalg::Permutation::from_vec(image)
            .map_err(|e| CheckpointError::at(line_no, format!("invalid permutation: {e}")))?;
        blocks.push(MeshBlock {
            dc_start,
            couplers,
            perm,
        });
    }
    Ok(BlockMeshTopology::new(k, blocks))
}

fn parse_fault(cur: &mut Cursor<'_>) -> Result<FaultScenario, CheckpointError> {
    let (line_no, tokens) = cur.expect("fault_seed line")?;
    if tokens.len() != 2 || tokens[0] != "fault_seed" {
        return Err(CheckpointError::at(line_no, "expected `fault_seed <u64>`"));
    }
    let mut scenario = FaultScenario::new(parse_u64(line_no, tokens[1])?);
    loop {
        let (line_no, tokens) = cur.expect("fault or fault_fp line")?;
        match tokens[0] {
            "fault" => {
                let kind = match (tokens.get(1).copied(), tokens.len()) {
                    (Some("dead_shifter"), 3) => FaultKind::DeadShifter {
                        p: f64::from_bits(parse_hex(line_no, tokens[2])?),
                    },
                    (Some("stuck_shifter"), 4) => FaultKind::StuckShifter {
                        p: f64::from_bits(parse_hex(line_no, tokens[2])?),
                        theta: f64::from_bits(parse_hex(line_no, tokens[3])?),
                    },
                    (Some("dead_coupler"), 3) => FaultKind::DeadCoupler {
                        p: f64::from_bits(parse_hex(line_no, tokens[2])?),
                    },
                    (Some("thermal_drift"), 3) => FaultKind::ThermalDrift {
                        std: f64::from_bits(parse_hex(line_no, tokens[2])?),
                    },
                    (Some("quant"), 3) => FaultKind::PhaseQuantization {
                        bits: parse_usize(line_no, tokens[2])? as u32,
                    },
                    _ => {
                        return Err(CheckpointError::at(
                            line_no,
                            format!("unknown fault record `{}`", tokens.join(" ")),
                        ))
                    }
                };
                scenario = scenario.with(kind);
            }
            "fault_fp" if tokens.len() == 2 => {
                let stored = parse_hex(line_no, tokens[1])?;
                let actual = scenario.fingerprint();
                if stored != actual {
                    return Err(CheckpointError::at(
                        line_no,
                        format!(
                            "fault scenario fingerprint mismatch (stored {stored:016x}, \
                             reconstructed {actual:016x}) — the fault records were altered \
                             or this build's fault model is incompatible"
                        ),
                    ));
                }
                return Ok(scenario);
            }
            _ => {
                return Err(CheckpointError::at(
                    line_no,
                    "expected a `fault …` record or the closing `fault_fp <hex16>`",
                ))
            }
        }
    }
}

/// FNV-1a over a byte stream (the same hash family the plan fingerprint
/// and fault sites use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint(fault: Option<FaultScenario>) -> Checkpoint {
        let mut store = ParamStore::new();
        let input = InputShape::new(1, 6, 6);
        let backend = Backend::butterfly(4);
        let model = proxy_cnn(&mut store, input, 2, 3, &backend, 9);
        Checkpoint::capture(
            ModelArch::ProxyCnn {
                input,
                channels: 2,
                classes: 3,
                seed: 9,
            },
            &backend,
            &model,
            &store,
            5,
            fault.as_ref(),
        )
    }

    #[test]
    fn text_round_trip_is_exact() {
        let fault = FaultScenario::new(3)
            .with(FaultKind::DeadShifter { p: 0.1 })
            .with(FaultKind::PhaseQuantization { bits: 6 });
        let ckpt = tiny_checkpoint(Some(fault.clone()));
        let text = ckpt.to_text();
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.arch, ckpt.arch);
        assert_eq!(back.noise_seed, 5);
        assert_eq!(back.params, ckpt.params);
        assert_eq!(back.state, ckpt.state);
        assert_eq!(
            back.fault.as_ref().unwrap().fingerprint(),
            fault.fingerprint()
        );
        match (&back.backend, &ckpt.backend) {
            (Backend::Topology { u, v }, Backend::Topology { u: u0, v: v0 }) => {
                assert_eq!(u, u0);
                assert_eq!(v, v0);
            }
            _ => panic!("backend kind changed in round trip"),
        }
        // Serialization is deterministic.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn instantiate_restores_params_and_state() {
        let mut ckpt = tiny_checkpoint(None);
        // Perturb a param and a state record so restore is observable.
        ckpt.params[0].bits[0] = 1.25f64.to_bits();
        for rec in &mut ckpt.state {
            rec.bits[0] = 0.75f64.to_bits();
        }
        let (model, store) = ckpt.instantiate().unwrap();
        let id0 = store.ids()[0];
        assert_eq!(store.value(id0).as_slice()[0], 1.25);
        let state = model.state();
        assert_eq!(state.len(), 4, "two BN layers x mean/var");
        for (name, values) in &state {
            assert_eq!(values[0], 0.75, "state `{name}` not restored");
        }
    }

    #[test]
    fn rejections_are_actionable() {
        let ckpt = tiny_checkpoint(None);
        let text = ckpt.to_text();

        let err = Checkpoint::parse("not a checkpoint\n").err().unwrap();
        assert!(err.message.contains("not an adept checkpoint"), "{err}");
        assert_eq!(err.line, 1);

        let bumped = text.replace("adept-checkpoint v1", "adept-checkpoint v9");
        let err = Checkpoint::parse(&bumped).err().unwrap();
        assert!(
            err.message.contains("unsupported checkpoint version `v9`"),
            "{err}"
        );

        let truncated = &text[..text.len() / 2];
        let err = Checkpoint::parse(truncated).err().unwrap();
        assert!(err.message.contains("truncated"), "{err}");

        // Flip one hex digit inside a param payload: checksum catches it.
        let corrupt = text.replacen("param conv1", "param convX", 1);
        let err = Checkpoint::parse(&corrupt).err().unwrap();
        assert!(err.message.contains("checksum mismatch"), "{err}");
        assert!(err.to_string().starts_with("checkpoint line"), "{err}");
    }

    #[test]
    fn mismatched_architecture_is_named() {
        let ckpt = tiny_checkpoint(None);
        let mut other = ckpt.clone();
        other.arch = ModelArch::ProxyCnn {
            input: InputShape::new(1, 6, 6),
            channels: 2,
            classes: 4, // classifier head differs -> fc shape mismatch
            seed: 9,
        };
        let err = other.instantiate().err().unwrap();
        assert!(
            err.message.contains("shape") || err.message.contains("parameters"),
            "{err}"
        );
    }
}
