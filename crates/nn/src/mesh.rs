//! The topology-driven mesh-weight API and its single build engine.
//!
//! Every photonic weight in the workspace — the fixed-topology
//! [`crate::onn::PtcWeight`] (Clements-style dense routing, FFT butterflies,
//! random meshes, frozen search outcomes) and the search-time
//! `adept::supermesh::SuperPtcWeight` (bound to its per-step SuperMesh
//! frames) — materializes on the tape through one discipline:
//!
//! 1. **Stage** (main thread, layer order): [`MeshWeight::stage`] creates
//!    the weight's parameter leaves on the shared tape and draws any phase
//!    noise from the shared RNG — exactly the serial walk's order, so leaf
//!    ids and noise streams never depend on scheduling.
//! 2. **Record** (any thread): [`MeshWeight::record_build_segment`] records
//!    the mesh-unitary walks on a private sub-tape
//!    ([`adept_autodiff::record_segment`]) against import proxies; within
//!    one weight the independent U- and V-mesh walks may fork as two
//!    concurrent sub-tape builds fused at the `Re(UΣ·Vᴴ)` tile product.
//! 3. **Splice + finish** (main thread, layer order):
//!    [`MeshWeight::finish_build`] splices the segment into the step tape
//!    and records the Σ product and grid assembly — producing the
//!    *identical* node sequence, values and gradients of a serial walk, at
//!    every thread count.
//!
//! [`build_mesh_weight`] runs the three phases serially for one weight;
//! [`prebuild_mesh_weights`] is the parallel scheduler, fanning phase 2
//! out across the shared [`adept_tensor::pool`] and streaming phase 3 in
//! layer-index order as each segment lands. Both operate on
//! `&dyn MeshWeight`, so any mesh family that implements the trait joins
//! the parallel build *and* the parallel backward replay
//! (`Graph::backward_parallel` partitions at the spliced segment
//! boundaries) for free. The bit-determinism guarantee is pinned by the
//! root `tests/parallel_build.rs`, `tests/parallel_backward.rs` and
//! `tests/mesh_api.rs` suites across thread counts {1, 2, 8}.

use crate::param::{ForwardCtx, ParamId};
use adept_autodiff::{ImportSpec, TapeSegment, Var};
use adept_telemetry::sync::lock_recover;
use adept_telemetry::Counter;
use adept_tensor::{gemm_thread_count, pool, Tensor};
use std::sync::Mutex;

/// Logical build-phase totals: one stage/record/splice per weight per
/// build, at any thread count — deterministic by the scheduler's
/// contract, so they render in the snapshot's deterministic section.
static WEIGHTS_STAGED: Counter = Counter::stable("mesh.weights_staged");
static WEIGHTS_RECORDED: Counter = Counter::stable("mesh.weights_recorded");
static SEGMENTS_SPLICED: Counter = Counter::stable("mesh.segments_spliced");

/// Main-thread staging of one [`MeshWeight`] build: everything phase 2
/// needs, packaged as plain `Send + Sync` data so the mesh walks can record
/// on a worker thread.
///
/// The field layout is interpreted by the weight's own
/// [`MeshWeight::record_build_segment`]; the engine never looks inside.
#[derive(Default)]
pub struct StagedBuild {
    /// Import proxies for the sub-tape build, in the implementation's
    /// order (typically the phase-parameter leaves followed by any
    /// per-step inputs such as SuperMesh frame variables).
    pub imports: Vec<ImportSpec>,
    /// Pre-drawn noise tensors (drawn from the shared RNG during staging
    /// to pin the stream order); empty when noise is disabled.
    pub noise: Vec<Tensor>,
    /// Fault deltas: per-phase constants computed at stage time from the
    /// active [`adept_photonics::FaultScenario`] such that adding them to
    /// the (noisy) programmed phases yields the faulted realized phases.
    /// Empty when no faults are active — the record phase then skips the
    /// add entirely and the tape is byte-identical to the healthy build.
    pub fault_deltas: Vec<Tensor>,
    /// Degraded `(U, V)` mesh topologies under coupler faults; `None`
    /// leaves the weight's own topologies in place.
    pub fault_topos: Option<(
        adept_photonics::BlockMeshTopology,
        adept_photonics::BlockMeshTopology,
    )>,
}

/// A weight materialized from a parameterized photonic mesh.
///
/// The object-safe surface the build engine needs: identity for the
/// per-step prebuilt cache ([`MeshWeight::uid`] + [`MeshWeight::build_tag`]),
/// the trainable handles ([`MeshWeight::param_ids`]), and the three build
/// phases. Implementations must be `Sync`: phase 2 runs on pool workers
/// against a shared reference.
///
/// The lifetime `'g` is the step tape's; implementations that carry no
/// per-step tape state (e.g. `PtcWeight`) implement the trait for every
/// `'g`, while per-step bindings (e.g. the SuperMesh `BoundSuperWeight`)
/// capture their step inputs as [`ImportSpec`]s so the binding itself
/// stays `Sync`.
pub trait MeshWeight<'g>: Sync {
    /// Process-unique id of this weight — the key of the per-step prebuilt
    /// cache (see [`ForwardCtx::take_prebuilt`]).
    fn uid(&self) -> u64;

    /// All trainable parameter handles of this weight.
    fn param_ids(&self) -> Vec<ParamId>;

    /// Fingerprint of the per-step inputs the build is wired to (the
    /// SuperMesh frame variables for search weights). A `build` call
    /// presenting a different tag than the scheduler used panics instead
    /// of silently rebinding the cached weight. Weights whose build
    /// depends only on their own parameters return 0 (the default).
    fn build_tag(&self) -> u64 {
        0
    }

    /// Whether the next build will draw from the shared RNG stream (phase
    /// noise enabled). Noise-free builds of `build_tag() == 0` weights are
    /// pure functions of their parameters, which is what lets evaluation
    /// loops and the inference compiler reuse a materialized value instead
    /// of re-walking the mesh. Defaults to `false`.
    fn noise_active(&self) -> bool {
        false
    }

    /// Build phase 1 (main thread): creates the parameter leaves on the
    /// shared tape and draws any noise from the shared RNG — both in the
    /// exact order of the serial walk, so staging all weights in layer
    /// order pins leaf ids and noise draws regardless of how phase 2 is
    /// scheduled.
    fn stage(&self, ctx: &ForwardCtx<'g, '_>) -> StagedBuild;

    /// Build phase 2 (any thread): records the mesh-unitary walks on a
    /// private sub-tape. With `parallel_uv` set the two independent mesh
    /// walks fork as concurrent sub-tape builds, spliced back in
    /// U-then-V order so the node sequence is identical to the serial
    /// walk. Must be deterministic.
    fn record_build_segment(&self, staged: &StagedBuild, parallel_uv: bool) -> TapeSegment;

    /// Build phase 3 (main thread): splices the mesh-walk segment into the
    /// step tape and records the serial walk's exact tail (Σ product and
    /// grid assembly), returning the finished weight variable.
    fn finish_build(&self, ctx: &ForwardCtx<'g, '_>, segment: TapeSegment) -> Var<'g>;
}

/// Materializes one mesh weight on the tape through the three-phase walk,
/// consuming the step's prebuilt cache when the parallel scheduler already
/// built it (see [`prebuild_mesh_weights`]).
///
/// This is the **single serial build path** behind every mesh family's
/// `build` method; the splice invariant of
/// [`adept_autodiff::record_segment`] guarantees it records the exact node
/// sequence of a direct monolithic walk.
pub fn build_mesh_weight<'g>(ctx: &ForwardCtx<'g, '_>, weight: &dyn MeshWeight<'g>) -> Var<'g> {
    if let Some(prebuilt) = ctx.take_prebuilt(weight.uid(), weight.build_tag()) {
        return prebuilt;
    }
    let staged = weight.stage(ctx);
    let segment = weight.record_build_segment(&staged, false);
    weight.finish_build(ctx, segment)
}

/// Builds every weight's mesh-unitary segment concurrently and registers
/// the finished weight variables in `ctx`'s prebuilt cache (keyed by
/// [`MeshWeight::uid`] and tagged with [`MeshWeight::build_tag`]), so the
/// subsequent forward pass consumes them without re-recording.
///
/// This is the **only** stage→record→splice scheduler in the workspace:
/// fixed-topology PTC weights and frame-bound SuperMesh weights — even
/// mixed in one batch — all fan out through it. With one configured thread
/// (or one weight and no pool win) it runs the serial staged walk — same
/// code path, same tape, zero scheduling. The resulting tape is
/// bit-identical either way.
pub fn prebuild_mesh_weights<'g>(ctx: &ForwardCtx<'g, '_>, weights: &[&dyn MeshWeight<'g>]) {
    if weights.is_empty() {
        return;
    }
    let _build_span = adept_telemetry::span("mesh_build");
    // Phase 1: stage in layer order on the main thread (tape + RNG order).
    let staged: Vec<StagedBuild> = {
        let _stage_span = adept_telemetry::span("mesh_build/stage");
        weights.iter().map(|w| w.stage(ctx)).collect()
    };
    WEIGHTS_STAGED.add(weights.len() as u64);
    // Phases 2+3: record on the pool, splice + finish on this thread in
    // layer-index order as each weight's segment lands.
    schedule_segments(
        weights,
        &staged,
        |w, st, par| w.record_build_segment(st, par),
        |i, segment| {
            let weight = weights[i].finish_build(ctx, segment);
            ctx.register_prebuilt(weights[i].uid(), weights[i].build_tag(), weight);
        },
    );
}

/// Phases 2+3 of the build engine: records one tape segment per staged
/// weight — concurrently on the shared pool when more than one thread is
/// configured, serially (and with the in-weight U/V fork disabled)
/// otherwise — and hands each segment to `finish` **in layer-index order,
/// as soon as it lands**. Weight `i` splices while weights `i+1..` are
/// still recording, so the main thread never barriers on the whole batch
/// (the tails are cheap, but on many-layer models the old barrier left it
/// idle).
///
/// `record(weight, staged, parallel_within)` must be deterministic, and
/// `finish` runs on the calling thread in index order regardless of how
/// the record jobs were scheduled — which is what keeps the spliced tape
/// bit-identical at every thread count.
///
/// Private on purpose: every caller must go through
/// [`prebuild_mesh_weights`], whose staging phase and prebuilt-cache
/// registration are part of the determinism contract.
fn schedule_segments<W, S>(
    weights: &[&W],
    staged: &[S],
    record: impl Fn(&W, &S, bool) -> TapeSegment + Sync,
    mut finish: impl FnMut(usize, TapeSegment),
) where
    W: Sync + ?Sized,
    S: Sync,
{
    assert_eq!(weights.len(), staged.len(), "one staging per weight");
    // The record/splice spans live here, inside the scheduler, so the
    // serial path and the pooled path emit the same per-weight span
    // counts — the determinism the CI telemetry leg diffs.
    if gemm_thread_count() <= 1 {
        for (i, (w, st)) in weights.iter().zip(staged).enumerate() {
            let segment = {
                let _span = adept_telemetry::span("mesh_build/record");
                record(w, st, false)
            };
            WEIGHTS_RECORDED.incr();
            let _span = adept_telemetry::span("mesh_build/splice");
            finish(i, segment);
            SEGMENTS_SPLICED.incr();
        }
        return;
    }
    let slots: Vec<Mutex<Option<TapeSegment>>> =
        (0..weights.len()).map(|_| Mutex::new(None)).collect();
    pool::scope(|scope| {
        let handles: Vec<pool::JobHandle> = weights
            .iter()
            .zip(staged)
            .zip(&slots)
            .map(|((w, st), slot)| {
                let record = &record;
                scope.spawn_handle(move || {
                    let segment = {
                        let _span = adept_telemetry::span("mesh_build/record");
                        record(w, st, true)
                    };
                    WEIGHTS_RECORDED.incr();
                    *lock_recover(slot) = Some(segment);
                })
            })
            .collect();
        for (i, handle) in handles.iter().enumerate() {
            scope.wait(handle);
            // An empty slot means the record job panicked: stop finishing
            // and let the scope's join propagate the worker's original
            // payload instead of masking it with a scheduler-internal one.
            let Some(segment) = lock_recover(&slots[i]).take() else {
                break;
            };
            {
                let _span = adept_telemetry::span("mesh_build/splice");
                finish(i, segment);
            }
            SEGMENTS_SPLICED.incr();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onn::{OnnLinear, PtcWeight};
    use crate::param::ParamStore;
    use adept_autodiff::Graph;
    use adept_photonics::BlockMeshTopology;
    use adept_tensor::{set_gemm_threads, Tensor};

    /// Serializes tests that override the global thread count.
    static THREAD_OVERRIDE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn prebuild_matches_direct_build_bitwise() {
        let _guard = lock_recover(&THREAD_OVERRIDE);
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        // Ragged 6×10 weight exercises cropped edge tiles.
        let layers: Vec<OnnLinear> = (0..3)
            .map(|i| {
                OnnLinear::new(
                    &mut store,
                    &format!("fc{i}"),
                    10,
                    6,
                    topo.clone(),
                    topo.clone(),
                    40 + i as u64,
                )
            })
            .collect();
        let weights: Vec<&PtcWeight> = layers.iter().map(|l| &l.weight).collect();

        let run = |threads: usize, prebuild: bool| -> (usize, Vec<Tensor>) {
            set_gemm_threads(threads);
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, true, 3);
            if prebuild {
                crate::build::prebuild_ptc_weights(&ctx, &weights);
            }
            let vals: Vec<Tensor> = weights.iter().map(|w| w.build(&ctx).value()).collect();
            set_gemm_threads(0);
            (graph.len(), vals)
        };

        let (len_serial, serial) = run(1, false);
        let (len_pre1, pre1) = run(1, true);
        let (len_pre8, pre8) = run(8, true);
        assert_eq!(len_serial, len_pre1, "prebuild must not change the tape");
        assert_eq!(len_pre1, len_pre8, "thread count must not change the tape");
        for ((a, b), c) in serial.iter().zip(&pre1).zip(&pre8) {
            assert_eq!(a.as_slice(), b.as_slice(), "serial vs prebuilt(1)");
            assert_eq!(a.as_slice(), c.as_slice(), "serial vs prebuilt(8)");
        }
    }

    #[test]
    fn prebuilt_cache_is_consumed_once() {
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        let layer = OnnLinear::new(&mut store, "fc", 4, 4, topo.clone(), topo, 7);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        crate::build::prebuild_ptc_weights(&ctx, &[&layer.weight]);
        let first = layer.weight.build(&ctx);
        let len_after_first = graph.len();
        let second = layer.weight.build(&ctx);
        assert_eq!(
            first.value().as_slice(),
            second.value().as_slice(),
            "second build re-records the same weight"
        );
        assert!(
            graph.len() > len_after_first,
            "second build must record fresh nodes, not reuse the cache"
        );
    }

    #[test]
    fn dyn_engine_builds_through_trait_objects() {
        // The engine itself only sees `&dyn MeshWeight`; a weight built
        // through the trait object must be bit-identical to the inherent
        // `build` path (which delegates to the same engine).
        let mut store = ParamStore::new();
        let topo = BlockMeshTopology::butterfly(4);
        let w = PtcWeight::new(&mut store, "w", 6, 5, topo.clone(), topo, 9);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 0);
        let dyn_w: &dyn MeshWeight<'_> = &w;
        let via_dyn = build_mesh_weight(&ctx, dyn_w).value();
        let graph2 = Graph::new();
        let ctx2 = ForwardCtx::new(&graph2, &store, true, 0);
        let via_inherent = w.build(&ctx2).value();
        assert_eq!(via_dyn.as_slice(), via_inherent.as_slice());
    }
}
