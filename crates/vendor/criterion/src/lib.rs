//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple adaptive timing loop. Results are printed per benchmark and, on
//! exit, appended as JSON to `BENCH_<binary>.json` in the working directory
//! so speedups are tracked across PRs.

use std::fmt::Display;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark: median nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark name (`group/id`).
    pub name: String,
    /// Median time per iteration in nanoseconds.
    pub ns_per_iter: f64,
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
    /// Target measurement budget per benchmark.
    budget: Option<Duration>,
}

impl Criterion {
    /// Creates a harness with the default time budget.
    pub fn new() -> Self {
        Self::default()
    }

    fn budget(&self) -> Duration {
        self.budget.unwrap_or(Duration::from_millis(300))
    }

    /// Benchmarks a closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget();
        let m = run_one(name, budget, &mut f);
        self.results.push(m);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Writes accumulated results to `BENCH_<binary>.json`.
    pub fn export_json(&self) {
        let binary = std::env::args()
            .next()
            .map(|p| {
                let base = std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "bench".to_string());
                // Strip the cargo content hash suffix (e.g. kernels-0ab12f…).
                match base.rsplit_once('-') {
                    Some((stem, hash)) if hash.len() == 16 => stem.to_string(),
                    _ => base,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        let path = format!("BENCH_{binary}.json");
        let mut out = String::from("{\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  \"{}\": {{\"ns_per_iter\": {:.1}}}{}\n",
                m.name.replace('"', "'"),
                m.ns_per_iter,
                comma
            ));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

fn run_one<F>(name: &str, budget: Duration, f: &mut F) -> Measurement
where
    F: FnMut(&mut Bencher),
{
    // Warmup + calibration pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    // Three measured samples; keep the median.
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let ns = samples[1];
    println!("bench {name:<52} {:>12.1} ns/iter", ns);
    Measurement {
        name: name.to_string(),
        ns_per_iter: ns,
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the (ignored) sample count — kept for API compatibility; the
    /// shim's time budget governs iteration counts instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F, I: Display>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        let budget = self.criterion.budget();
        let mut f = f;
        let m = run_one(&name, budget, &mut f);
        self.criterion.results.push(m);
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<F, I, D: Display>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark id helper mirroring criterion's.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
            criterion.export_json();
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            budget: Some(Duration::from_millis(5)),
            ..Criterion::default()
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.ns_per_iter >= 0.0));
        assert_eq!(c.measurements()[1].name, "grp/4");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
