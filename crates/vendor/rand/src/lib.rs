//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements exactly the API subset the workspace uses: [`RngCore`]/[`Rng`]
//! with `gen_range`/`gen`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`distributions::Distribution`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic per seed, which is all the experiments and
//! tests rely on (they never assume the upstream `rand` bit stream).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * f64_unit(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, isize, u64, i64, u32, i32, u16, i16, u8, i8);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution traits and standard distributions.
pub mod distributions {
    use super::{f64_unit, RngCore};

    /// Types that can produce samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            f64_unit(rng)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: usize = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn uniform_mean_reasonable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
