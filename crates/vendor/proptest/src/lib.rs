//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait for ranges / [`strategy::Just`] / tuples /
//! [`collection::vec`], the `prop_perturb` combinator, the `prop_oneof!`
//! union macro, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a deterministic PRNG so failures
//! reproduce; shrinking is not implemented (a failing case panics with the
//! generated inputs' debug representation via the assertion message).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test deterministic random source.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The default generator used by `proptest!` test bodies.
        pub fn deterministic() -> Self {
            Self(StdRng::seed_from_u64(0x5EED_CA5E))
        }

        /// A generator derived from an explicit seed (used by
        /// `prop_perturb`).
        pub fn from_seed_u64(seed: u64) -> Self {
            Self(StdRng::seed_from_u64(seed))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Number-of-cases configuration, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, handing it a private RNG
        /// (mirrors proptest's `prop_perturb`).
        fn prop_perturb<F, U>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> U,
        {
            Perturb { inner: self, f }
        }

        /// Maps generated values through a pure function.
        fn prop_map<F, U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F, U> Strategy for Perturb<S, F>
    where
        F: Fn(S::Value, TestRng) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            let v = self.inner.generate(rng);
            let child = TestRng::from_seed_u64(rng.next_u64());
            (self.f)(v, child)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F, U> Strategy for Map<S, F>
    where
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, cheaply clonable.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between equally weighted strategies
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `choices` is empty.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            Self { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, isize, u64, i64, u32, i32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length in `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Generates `#[test]` functions that run a property over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform union of strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.0..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_perturb(
            choice in prop_oneof![Just(1u32), Just(2u32)],
            seeded in Just(10u64).prop_perturb(|n, mut rng| n + rng.next_u64() % 5),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!((10..15).contains(&seeded));
        }

        #[test]
        fn tuples_work(t in (0usize..4, 0usize..4, 0usize..4, 0usize..4)) {
            prop_assert!(t.0 < 4 && t.1 < 4 && t.2 < 4 && t.3 < 4);
        }
    }
}
