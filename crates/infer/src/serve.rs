//! Batching serving runtime over a compiled [`ExecPlan`].
//!
//! Single-sample requests land in a queue; workers coalesce them into
//! mini-batches under a size/deadline policy (take what is there, wait up
//! to `max_wait` to fill the batch) and run each batch through a private
//! clone of the plan on the shared [`adept_tensor::pool`] worker set.
//! Because compiled per-sample outputs are independent of batch
//! composition (see [`ExecPlan::run_batch`]), coalescing is invisible in
//! the results — only in the latency histogram, which [`ServeReport`]
//! summarizes as req/s plus p50/p99.

use crate::plan::ExecPlan;
use adept_tensor::pool;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs for one serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Mini-batch size cap; `0` = auto (`ONN_SERVE_BATCH`, else 8, capped
    /// at the plan's `max_batch`).
    pub max_batch: usize,
    /// Worker count; `0` = auto (`ONN_SERVE_THREADS`, else the GEMM pool
    /// width).
    pub threads: usize,
    /// How long a worker holding a partial batch waits for more arrivals
    /// before running what it has.
    pub max_wait: Duration,
    /// Synthetic request-stream pacing: delay between enqueues. Zero means
    /// an open firehose (every request available immediately).
    pub arrival_spacing: Duration,
}

impl ServeConfig {
    /// Everything on auto: env-tuned batch/threads, 200µs fill deadline,
    /// firehose arrivals.
    pub fn auto() -> Self {
        Self {
            max_batch: 0,
            threads: 0,
            max_wait: Duration::from_micros(200),
            arrival_spacing: Duration::ZERO,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Throughput/latency summary of one [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests served.
    pub requests: usize,
    /// Mini-batches executed (≤ requests; smaller is better coalescing).
    pub batches: usize,
    /// Effective mini-batch cap after auto resolution.
    pub max_batch: usize,
    /// Effective worker count after auto resolution.
    pub threads: usize,
    /// Wall-clock of the whole session.
    pub elapsed: Duration,
    /// Requests per second over the session.
    pub req_per_sec: f64,
    /// Median enqueue-to-completion latency.
    pub p50_latency: Duration,
    /// 99th-percentile enqueue-to-completion latency.
    pub p99_latency: Duration,
}

/// FIFO of pending request indices with their enqueue stamps.
struct Queue {
    inner: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    pending: VecDeque<(usize, Instant)>,
    closed: bool,
}

impl Queue {
    fn new() -> Self {
        Self {
            inner: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, idx: usize) {
        let mut st = self.inner.lock().unwrap();
        st.pending.push_back((idx, Instant::now()));
        drop(st);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Pops up to `max` requests into `out`. Blocks for the first request;
    /// once holding a partial batch, waits at most `max_wait` for it to
    /// fill before returning. Returns `false` when the queue is closed and
    /// drained — the worker's signal to exit.
    fn pop_batch(&self, max: usize, max_wait: Duration, out: &mut Vec<(usize, Instant)>) -> bool {
        out.clear();
        let mut st = self.inner.lock().unwrap();
        loop {
            while let Some(item) = st.pending.pop_front() {
                out.push(item);
                if out.len() == max {
                    return true;
                }
            }
            if !out.is_empty() {
                // Partial batch in hand: give stragglers one deadline.
                let (next, timeout) = self.ready.wait_timeout(st, max_wait).unwrap();
                st = next;
                while out.len() < max {
                    match st.pending.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                if timeout.timed_out() || out.len() == max || st.closed {
                    return true;
                }
                continue;
            }
            if st.closed {
                return false;
            }
            st = self.ready.wait(st).unwrap();
        }
    }
}

/// Raw output cursor handed to workers. Each request index owns a disjoint
/// `out_features` slice of the output buffer, so concurrent writes never
/// alias.
struct OutPtr(*mut f64);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// Serves `n_requests` single-sample requests drawn from `inputs`
/// (row-major `n_requests × plan.input_elems()`), coalescing them into
/// mini-batches across worker threads. Returns all outputs (request order)
/// and the latency/throughput report.
///
/// Workers run on [`pool::scope`] with a private clone of the plan each;
/// the caller's thread is the producer, pacing arrivals by
/// `cfg.arrival_spacing`. Outputs are bit-identical to running each
/// request alone through the plan, whatever batches form.
///
/// # Panics
///
/// Panics if `inputs` does not hold `n_requests` samples.
pub fn serve(
    plan: &ExecPlan,
    inputs: &[f64],
    n_requests: usize,
    cfg: &ServeConfig,
) -> (Vec<f64>, ServeReport) {
    let in_elems = plan.input_elems();
    let out_f = plan.output_features();
    assert_eq!(
        inputs.len(),
        n_requests * in_elems,
        "inputs must hold n_requests samples"
    );
    let max_batch = resolve(cfg.max_batch, pool::env_serve_batch(), 8).min(plan.max_batch());
    let threads = resolve(cfg.threads, pool::env_serve_threads(), {
        adept_tensor::gemm_thread_count().max(1)
    });

    let mut outputs = vec![0.0; n_requests * out_f];
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(n_requests));
    let batches = std::sync::atomic::AtomicUsize::new(0);
    let queue = Queue::new();
    let out_ptr = OutPtr(outputs.as_mut_ptr());
    let started = Instant::now();

    pool::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let latencies = &latencies;
            let batches = &batches;
            let out_ptr = &out_ptr;
            let mut plan = plan.clone();
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut batch: Vec<(usize, Instant)> = Vec::with_capacity(max_batch);
                let mut staged = vec![0.0; max_batch * in_elems];
                let mut logits = vec![0.0; max_batch * out_f];
                while queue.pop_batch(max_batch, cfg.max_wait, &mut batch) {
                    let n = batch.len();
                    for (slot, &(idx, _)) in batch.iter().enumerate() {
                        staged[slot * in_elems..(slot + 1) * in_elems]
                            .copy_from_slice(&inputs[idx * in_elems..(idx + 1) * in_elems]);
                    }
                    plan.run_batch(&staged[..n * in_elems], n, &mut logits[..n * out_f]);
                    let done = Instant::now();
                    for (slot, &(idx, enqueued)) in batch.iter().enumerate() {
                        // Disjoint per-request slice: idx is unique across
                        // all batches, so no two workers touch it.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                logits[slot * out_f..].as_ptr(),
                                out_ptr.0.add(idx * out_f),
                                out_f,
                            );
                        }
                        latencies.lock().unwrap().push(done - enqueued);
                    }
                    batches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Producer on the caller thread: enqueue the synthetic stream,
        // then close so drained workers exit.
        for idx in 0..n_requests {
            if !cfg.arrival_spacing.is_zero() {
                std::thread::sleep(cfg.arrival_spacing);
            }
            queue.push(idx);
        }
        queue.close();
    });

    let elapsed = started.elapsed();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let report = ServeReport {
        requests: n_requests,
        batches: batches.into_inner(),
        max_batch,
        threads,
        elapsed,
        req_per_sec: n_requests as f64 / elapsed.as_secs_f64().max(1e-12),
        p50_latency: percentile(&lat, 50.0),
        p99_latency: percentile(&lat, 99.0),
    };
    (outputs, report)
}

/// Explicit value, else env override, else fallback.
fn resolve(explicit: usize, env: Option<usize>, fallback: usize) -> usize {
    if explicit > 0 {
        explicit
    } else {
        env.unwrap_or(fallback)
    }
}

/// Nearest-rank percentile of sorted durations (empty → zero).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}
