//! Batching serving runtime over a compiled [`ExecPlan`] — hardened for
//! faulty inputs and overload.
//!
//! Single-sample requests land in a **bounded** queue; workers coalesce
//! them into mini-batches under a size/deadline policy (take what is
//! there, wait up to `max_wait` to fill the batch) and run each batch
//! through a private [`BatchRunner`] on the shared [`adept_tensor::pool`]
//! worker set. Because compiled per-sample outputs are independent of
//! batch composition (see [`ExecPlan::run_batch`]), coalescing is
//! invisible in the results — only in the latency histogram, which
//! [`ServeReport`] summarizes as req/s plus p50/p99 over the *served*
//! requests.
//!
//! # Failure semantics
//!
//! The runtime never lets one bad request (or one overload burst) take the
//! session down; instead every submitted request ends in exactly one of
//! four [`RequestOutcome`]s, and the report's counts always sum to the
//! submitted total:
//!
//! * **Backpressure / shed** — the pending queue is bounded
//!   ([`ServeConfig::queue_cap`], `ONN_SERVE_QUEUE`, auto 1024). An
//!   arrival that finds it full is *shed* immediately
//!   ([`RequestOutcome::Shed`]): its output slice stays zeroed and no
//!   worker ever sees it, instead of the queue growing without bound.
//! * **Deadlines** — with a per-request deadline configured
//!   ([`ServeConfig::deadline`], `ONN_SERVE_DEADLINE_MS`, default none), a
//!   request still waiting past its deadline when a worker picks it up is
//!   dropped as [`RequestOutcome::TimedOut`] rather than served late.
//!   Timed-out requests are excluded from the latency percentiles.
//! * **Worker panic isolation** — each batch executes under
//!   [`std::panic::catch_unwind`]. A panicking runner fails *only that
//!   batch* ([`RequestOutcome::Failed`]); the worker replaces its runner
//!   with a pristine instance (a mid-run panic may leave internal scratch
//!   in a torn state) and keeps serving subsequent batches. The shared
//!   queue and latency locks recover from [`std::sync::PoisonError`]
//!   (every critical section only moves complete items, so a poisoned
//!   guard still protects coherent state) — a thread that dies while
//!   holding a lock cannot cascade panics into every later lock site.
//! * **Graceful shutdown** — closing the queue stops admissions but
//!   workers drain everything already admitted before exiting, so no
//!   request is silently dropped on shutdown.
//!
//! # Telemetry
//!
//! When [`adept_telemetry`] is enabled (`ONN_TELEMETRY=1`) each session
//! also feeds the process-wide registry: stable outcome counters
//! (`serve.requests` / `serve.served` / `serve.shed` / `serve.timed_out` /
//! `serve.failed`, bumped once per session from the final tallies), a
//! volatile `serve.batches` counter (coalescing is timing-dependent), and
//! two latency histograms splitting enqueue-to-completion into its halves:
//! `serve.queue_wait` (enqueue → batch pickup, per served request) and
//! `serve.exec` (`run_batch` wall-clock, per successful mini-batch). The
//! same split is always available — telemetry on or off — as the
//! `queue_wait_*` / `exec_*` percentile fields on [`ServeReport`].

use crate::plan::ExecPlan;
use adept_telemetry::sync::{lock_recover, wait_recover, wait_timeout_recover};
use adept_telemetry::{Counter, Histogram};
use adept_tensor::pool;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-session outcome totals, bumped once per [`serve_with`] session from
/// the final tallies. Stable: for a pinned config (queue cap ≥ request
/// count, no deadline) every outcome is fully determined by the workload,
/// so the CI telemetry leg can diff these across `ONN_THREADS`.
static REQUESTS: Counter = Counter::stable("serve.requests");
static SERVED_TOTAL: Counter = Counter::stable("serve.served");
static SHED_TOTAL: Counter = Counter::stable("serve.shed");
static TIMED_OUT_TOTAL: Counter = Counter::stable("serve.timed_out");
static FAILED_TOTAL: Counter = Counter::stable("serve.failed");
/// Mini-batch executions. Volatile: coalescing (how many requests one
/// worker grabs per pop) depends on producer/worker timing.
static BATCHES_TOTAL: Counter = Counter::volatile("serve.batches");
/// Enqueue → batch-pickup wait, one sample per *served* request.
static QUEUE_WAIT: Histogram = Histogram::nanos("serve.queue_wait");
/// `run_batch` wall-clock, one sample per successful mini-batch.
static EXEC: Histogram = Histogram::nanos("serve.exec");

/// Knobs for one serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Mini-batch size cap; `0` = auto (`ONN_SERVE_BATCH`, else 8, capped
    /// at the plan's `max_batch`).
    pub max_batch: usize,
    /// Worker count; `0` = auto (`ONN_SERVE_THREADS`, else the GEMM pool
    /// width).
    pub threads: usize,
    /// How long a worker holding a partial batch waits for more arrivals
    /// before running what it has.
    pub max_wait: Duration,
    /// Synthetic request-stream pacing: delay between enqueues. Zero means
    /// an open firehose (every request available immediately).
    pub arrival_spacing: Duration,
    /// Bounded-queue capacity: arrivals finding this many requests already
    /// pending are shed. `0` = auto (`ONN_SERVE_QUEUE`, else 1024).
    pub queue_cap: usize,
    /// Per-request deadline measured from enqueue: a request still queued
    /// past it is dropped as timed out instead of served late. Zero = auto
    /// (`ONN_SERVE_DEADLINE_MS`, else no deadline).
    pub deadline: Duration,
}

impl ServeConfig {
    /// Everything on auto: env-tuned batch/threads/queue/deadline, 200µs
    /// fill deadline, firehose arrivals.
    pub fn auto() -> Self {
        Self {
            max_batch: 0,
            threads: 0,
            max_wait: Duration::from_micros(200),
            arrival_spacing: Duration::ZERO,
            queue_cap: 0,
            deadline: Duration::ZERO,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// What happened to one submitted request (see the module docs for the
/// full failure semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Ran through the plan; its output slice holds the logits.
    Served,
    /// Rejected at admission: the bounded queue was full.
    Shed,
    /// Admitted but still queued past its deadline; never ran.
    TimedOut,
    /// Its batch's runner panicked; output slice stays zeroed.
    Failed,
}

/// Throughput/latency summary of one [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests submitted (served + shed + timed out + failed).
    pub requests: usize,
    /// Requests that ran to completion.
    pub served: usize,
    /// Requests shed at admission (bounded queue full).
    pub shed: usize,
    /// Requests dropped because their deadline expired while queued.
    pub timed_out: usize,
    /// Requests lost to a panicking batch.
    pub failed: usize,
    /// Per-request outcomes, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Mini-batches executed successfully (≤ served; smaller is better
    /// coalescing).
    pub batches: usize,
    /// Effective mini-batch cap after auto resolution.
    pub max_batch: usize,
    /// Effective worker count after auto resolution.
    pub threads: usize,
    /// Wall-clock of the whole session.
    pub elapsed: Duration,
    /// Served requests per second over the session.
    pub req_per_sec: f64,
    /// Median enqueue-to-completion latency over served requests.
    pub p50_latency: Duration,
    /// 99th-percentile enqueue-to-completion latency over served requests.
    pub p99_latency: Duration,
    /// Median enqueue → batch-pickup wait over served requests: how long a
    /// request sat in the bounded queue before a worker claimed its batch.
    pub queue_wait_p50: Duration,
    /// 99th-percentile enqueue → batch-pickup wait over served requests.
    pub queue_wait_p99: Duration,
    /// Median `run_batch` wall-clock over successful mini-batches — the
    /// pure execution half of the latency, queueing excluded.
    pub exec_p50: Duration,
    /// 99th-percentile `run_batch` wall-clock over successful mini-batches.
    pub exec_p99: Duration,
}

/// The executable a worker replays batches through. [`ExecPlan`] is the
/// production implementation; tests inject mock runners to pin the
/// runtime's failure semantics (panicking shards, slow batches) without a
/// trained model.
pub trait BatchRunner: Send {
    /// Per-sample input element count.
    fn input_elems(&self) -> usize;
    /// Per-sample output feature count.
    fn output_features(&self) -> usize;
    /// Largest batch one `run_batch` call accepts.
    fn max_batch(&self) -> usize;
    /// Runs `n` samples: `input` is `n × input_elems`, `out` receives
    /// `n × output_features`.
    fn run_batch(&mut self, input: &[f64], n: usize, out: &mut [f64]);
}

impl BatchRunner for ExecPlan {
    fn input_elems(&self) -> usize {
        ExecPlan::input_elems(self)
    }

    fn output_features(&self) -> usize {
        ExecPlan::output_features(self)
    }

    fn max_batch(&self) -> usize {
        ExecPlan::max_batch(self)
    }

    fn run_batch(&mut self, input: &[f64], n: usize, out: &mut [f64]) {
        ExecPlan::run_batch(self, input, n, out);
    }
}

/// Bounded FIFO of pending request indices with their enqueue stamps.
struct Queue {
    inner: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    pending: VecDeque<(usize, Instant)>,
    closed: bool,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Admits a request unless the queue is at capacity; a `false` return
    /// is the shed signal — the request was **not** enqueued.
    fn try_push(&self, idx: usize) -> bool {
        let mut st = lock_recover(&self.inner);
        if st.pending.len() >= self.cap {
            return false;
        }
        st.pending.push_back((idx, Instant::now()));
        drop(st);
        self.ready.notify_one();
        true
    }

    fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Pops up to `max` requests into `out`. Blocks for the first request;
    /// once holding a partial batch, waits at most `max_wait` for it to
    /// fill before returning. Returns `false` when the queue is closed and
    /// drained — the worker's signal to exit. Closing therefore never
    /// drops admitted requests: they all pass through some worker's batch.
    fn pop_batch(&self, max: usize, max_wait: Duration, out: &mut Vec<(usize, Instant)>) -> bool {
        out.clear();
        let mut st = lock_recover(&self.inner);
        loop {
            while let Some(item) = st.pending.pop_front() {
                out.push(item);
                if out.len() == max {
                    return true;
                }
            }
            if !out.is_empty() {
                // Partial batch in hand: give stragglers one deadline.
                let (next, timeout) = wait_timeout_recover(&self.ready, st, max_wait);
                st = next;
                while out.len() < max {
                    match st.pending.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                if timeout.timed_out() || out.len() == max || st.closed {
                    return true;
                }
                continue;
            }
            if st.closed {
                return false;
            }
            st = wait_recover(&self.ready, st);
        }
    }
}

/// Raw output cursor handed to workers. Each request index owns a disjoint
/// `out_features` slice of the output buffer, so concurrent writes never
/// alias.
struct OutPtr(*mut f64);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// Outcome-slot encoding (request outcomes land in a shared `AtomicU8`
/// array; relaxed ordering suffices — the pool scope's join is the
/// happens-before edge the final read relies on).
const PENDING: u8 = 0;
const SERVED: u8 = 1;
const SHED: u8 = 2;
const TIMED_OUT: u8 = 3;
const FAILED: u8 = 4;

/// Serves `n_requests` single-sample requests drawn from `inputs`
/// (row-major `n_requests × plan.input_elems()`), coalescing them into
/// mini-batches across worker threads. Returns all outputs (request
/// order; shed/timed-out/failed slices stay zeroed) and the report.
///
/// Workers run on [`pool::scope`] with a private clone of the plan each;
/// the caller's thread is the producer, pacing arrivals by
/// `cfg.arrival_spacing`. Outputs are bit-identical to running each
/// request alone through the plan, whatever batches form. See the module
/// docs for the shed/deadline/panic/drain semantics.
///
/// # Panics
///
/// Panics if `inputs` does not hold `n_requests` samples.
pub fn serve(
    plan: &ExecPlan,
    inputs: &[f64],
    n_requests: usize,
    cfg: &ServeConfig,
) -> (Vec<f64>, ServeReport) {
    serve_with(&|| Box::new(plan.clone()), inputs, n_requests, cfg)
}

/// [`serve`] over any [`BatchRunner`] factory: each worker calls
/// `make_runner` for its private instance, and again for a pristine
/// replacement after a panic (a torn runner must never serve another
/// batch). This is the seam the `serve_faults` suite injects mock runners
/// through; production code uses [`serve`].
///
/// # Panics
///
/// Panics if `inputs` does not hold `n_requests` samples of the runner's
/// `input_elems`.
pub fn serve_with(
    make_runner: &(dyn Fn() -> Box<dyn BatchRunner> + Sync),
    inputs: &[f64],
    n_requests: usize,
    cfg: &ServeConfig,
) -> (Vec<f64>, ServeReport) {
    let probe = make_runner();
    let in_elems = probe.input_elems();
    let out_f = probe.output_features();
    let runner_cap = probe.max_batch();
    drop(probe);
    assert_eq!(
        inputs.len(),
        n_requests * in_elems,
        "inputs must hold n_requests samples"
    );
    let max_batch = resolve(cfg.max_batch, pool::env_serve_batch(), 8).min(runner_cap);
    let threads = resolve(cfg.threads, pool::env_serve_threads(), {
        adept_tensor::gemm_thread_count().max(1)
    });
    let queue_cap = resolve(cfg.queue_cap, pool::env_serve_queue(), 1024);
    let deadline = if cfg.deadline.is_zero() {
        pool::env_serve_deadline_ms().map(|ms| Duration::from_millis(ms as u64))
    } else {
        Some(cfg.deadline)
    };

    let mut outputs = vec![0.0; n_requests * out_f];
    let outcomes: Vec<AtomicU8> = (0..n_requests).map(|_| AtomicU8::new(PENDING)).collect();
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(n_requests));
    let queue_waits: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(n_requests));
    // One entry per mini-batch; batches ≤ served ≤ n_requests.
    let execs: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(n_requests));
    let batches = AtomicUsize::new(0);
    let queue = Queue::new(queue_cap);
    let out_ptr = OutPtr(outputs.as_mut_ptr());
    let started = Instant::now();

    pool::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let latencies = &latencies;
            let queue_waits = &queue_waits;
            let execs = &execs;
            let batches = &batches;
            let out_ptr = &out_ptr;
            let outcomes = outcomes.as_slice();
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut runner = make_runner();
                let mut batch: Vec<(usize, Instant)> = Vec::with_capacity(max_batch);
                let mut live: Vec<(usize, Instant)> = Vec::with_capacity(max_batch);
                let mut staged = vec![0.0; max_batch * in_elems];
                let mut logits = vec![0.0; max_batch * out_f];
                while queue.pop_batch(max_batch, cfg.max_wait, &mut batch) {
                    // Expire requests that waited past their deadline
                    // before spending any compute on them.
                    live.clear();
                    let now = Instant::now();
                    for &(idx, enqueued) in &batch {
                        if deadline.is_some_and(|d| now.duration_since(enqueued) > d) {
                            outcomes[idx].store(TIMED_OUT, Ordering::Relaxed);
                        } else {
                            let slot = live.len();
                            staged[slot * in_elems..(slot + 1) * in_elems]
                                .copy_from_slice(&inputs[idx * in_elems..(idx + 1) * in_elems]);
                            live.push((idx, enqueued));
                        }
                    }
                    let n = live.len();
                    if n == 0 {
                        continue;
                    }
                    let exec_start = Instant::now();
                    let ran = catch_unwind(AssertUnwindSafe(|| {
                        runner.run_batch(&staged[..n * in_elems], n, &mut logits[..n * out_f]);
                    }));
                    match ran {
                        Ok(()) => {
                            let done = Instant::now();
                            let exec = done - exec_start;
                            EXEC.record_duration(exec);
                            BATCHES_TOTAL.incr();
                            lock_recover(execs).push(exec);
                            let mut lat = lock_recover(latencies);
                            let mut waits = lock_recover(queue_waits);
                            for (slot, &(idx, enqueued)) in live.iter().enumerate() {
                                // Disjoint per-request slice: idx is unique
                                // across all batches, so no two workers
                                // touch it.
                                unsafe {
                                    std::ptr::copy_nonoverlapping(
                                        logits[slot * out_f..].as_ptr(),
                                        out_ptr.0.add(idx * out_f),
                                        out_f,
                                    );
                                }
                                outcomes[idx].store(SERVED, Ordering::Relaxed);
                                lat.push(done - enqueued);
                                // Queue wait = enqueue → batch pickup; the
                                // deadline check stamped pickup as `now`.
                                let wait = now - enqueued;
                                QUEUE_WAIT.record_duration(wait);
                                waits.push(wait);
                            }
                            batches.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Fail only this batch; a torn runner (panic
                            // mid-run may have consumed its scratch slabs)
                            // must not serve again — replace it and keep
                            // draining the queue.
                            for &(idx, _) in &live {
                                outcomes[idx].store(FAILED, Ordering::Relaxed);
                            }
                            runner = make_runner();
                        }
                    }
                }
            });
        }
        // Producer on the caller thread: enqueue the synthetic stream
        // (shedding on a full queue), then close so drained workers exit.
        for idx in 0..n_requests {
            if !cfg.arrival_spacing.is_zero() {
                std::thread::sleep(cfg.arrival_spacing);
            }
            if !queue.try_push(idx) {
                outcomes[idx].store(SHED, Ordering::Relaxed);
            }
        }
        queue.close();
    });

    let elapsed = started.elapsed();
    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let mut waits = queue_waits.into_inner().unwrap_or_else(|e| e.into_inner());
    waits.sort_unstable();
    let mut exec = execs.into_inner().unwrap_or_else(|e| e.into_inner());
    exec.sort_unstable();
    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| match o.into_inner() {
            SERVED => RequestOutcome::Served,
            SHED => RequestOutcome::Shed,
            TIMED_OUT => RequestOutcome::TimedOut,
            FAILED => RequestOutcome::Failed,
            state => unreachable!("request left in state {state} after drain"),
        })
        .collect();
    let count = |want: RequestOutcome| outcomes.iter().filter(|&&o| o == want).count();
    let (served, shed) = (count(RequestOutcome::Served), count(RequestOutcome::Shed));
    let (timed_out, failed) = (
        count(RequestOutcome::TimedOut),
        count(RequestOutcome::Failed),
    );
    debug_assert_eq!(served + shed + timed_out + failed, n_requests);
    REQUESTS.add(n_requests as u64);
    SERVED_TOTAL.add(served as u64);
    SHED_TOTAL.add(shed as u64);
    TIMED_OUT_TOTAL.add(timed_out as u64);
    FAILED_TOTAL.add(failed as u64);
    let report = ServeReport {
        requests: n_requests,
        served,
        shed,
        timed_out,
        failed,
        outcomes,
        batches: batches.into_inner(),
        max_batch,
        threads,
        elapsed,
        req_per_sec: served as f64 / elapsed.as_secs_f64().max(1e-12),
        p50_latency: percentile(&lat, 50.0),
        p99_latency: percentile(&lat, 99.0),
        queue_wait_p50: percentile(&waits, 50.0),
        queue_wait_p99: percentile(&waits, 99.0),
        exec_p50: percentile(&exec, 50.0),
        exec_p99: percentile(&exec, 99.0),
    };
    (outputs, report)
}

/// Explicit value, else env override, else fallback.
fn resolve(explicit: usize, env: Option<usize>, fallback: usize) -> usize {
    if explicit > 0 {
        explicit
    } else {
        env.unwrap_or(fallback)
    }
}

/// Nearest-rank percentile of sorted durations (empty → zero): the
/// smallest 1-based rank `r` with `r ≥ p/100 · N`, i.e. `ceil(p/100 · N)`
/// clamped to `[1, N]`. Unlike midpoint/rounding schemes this never
/// over-reports: p50 of an even-length sample is the lower middle value,
/// and p99 only reaches the maximum once `N` is small enough that the top
/// sample really does hold ≥ 1% of the mass.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `[1ms, 2ms, ..., n ms]` — sorted, distinct, easy to index.
    fn ladder(n: usize) -> Vec<Duration> {
        (1..=n).map(|i| Duration::from_millis(i as u64)).collect()
    }

    /// Nearest-rank pins for p50/p99 at N ∈ {1, 2, 4, 100}. The old
    /// `((N-1) · p/100).round()` index over-reported p50 on even N
    /// (N = 2 gave the max, not the lower middle) — these are the exact
    /// nearest-rank values.
    #[test]
    fn percentile_is_nearest_rank() {
        for (n, p50_idx, p99_idx) in [(1, 0, 0), (2, 0, 1), (4, 1, 3), (100, 49, 98)] {
            let lat = ladder(n);
            assert_eq!(percentile(&lat, 50.0), lat[p50_idx], "p50 at N={n}");
            assert_eq!(percentile(&lat, 99.0), lat[p99_idx], "p99 at N={n}");
        }
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        // p100 is the max, and a tiny p still returns the minimum.
        let lat = ladder(10);
        assert_eq!(percentile(&lat, 100.0), lat[9]);
        assert_eq!(percentile(&lat, 0.1), lat[0]);
    }

    /// A thread that panics **while holding** the queue lock must not take
    /// later queue users down with it: try_push/close/pop_batch recover the
    /// poisoned guard and keep working on the (still coherent) state.
    #[test]
    fn queue_survives_panic_while_holding_lock() {
        let queue = Queue::new(8);
        assert!(queue.try_push(0));
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = queue.inner.lock().unwrap();
                panic!("die holding the queue lock");
            });
            assert!(poisoner.join().is_err(), "poisoner must have panicked");
        });
        assert!(queue.inner.is_poisoned(), "lock must actually be poisoned");
        assert!(queue.try_push(1), "push after poison must still admit");
        let mut batch = Vec::new();
        assert!(queue.pop_batch(2, Duration::ZERO, &mut batch));
        let idxs: Vec<usize> = batch.iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1], "pre- and post-poison pushes both drain");
        queue.close();
        assert!(!queue.pop_batch(2, Duration::ZERO, &mut batch));
    }

    /// Same recovery for a latency-style `Mutex<Vec<_>>`: both the lock
    /// helper and the final `into_inner` must yield the samples recorded
    /// before and after the poisoning panic.
    #[test]
    fn latency_mutex_recovers_from_poison() {
        let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
        lock_recover(&latencies).push(Duration::from_millis(1));
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = latencies.lock().unwrap();
                panic!("die holding the latency lock");
            });
            assert!(poisoner.join().is_err());
        });
        assert!(latencies.is_poisoned());
        lock_recover(&latencies).push(Duration::from_millis(2));
        let lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
        assert_eq!(lat.len(), 2, "samples on both sides of the poison remain");
    }
}
