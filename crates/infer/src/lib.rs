//! Tape-free compiled inference engine + batching serving runtime.
//!
//! Training in this workspace runs every forward through the autodiff
//! tape — `Graph` nodes, `Var` handles, per-step weight rebuilds. That is
//! the right shape for gradients and exactly the wrong shape for serving,
//! where the weights are frozen and the same forward runs millions of
//! times. This crate splits the two:
//!
//! * [`ExecPlan`] — the **compiler** ([`ExecPlan::compile`]): freezes any
//!   trained [`adept_nn::layers::Layer`] model (electronic layers, PTC/MZI photonic
//!   layers, `Sequential` stacks, models built from a searched backend)
//!   into a flat step program. Mesh unitaries and `Re(U·diag(σ)·V)` weight
//!   matrices are materialized **once** at plan-build time through the same
//!   tape machinery a forward pass uses — bit-identical weights, including
//!   the phase-noise stream for a given seed — and rebuilt only when the
//!   parameters actually change ([`ExecPlan::refresh`]). Convolutions lower
//!   to the existing im2col + GEMM kernels with per-plan preallocated
//!   scratch; ReLU fuses into the preceding GEMM/batch-norm epilogue.
//!   Compilation takes a [`PlanPrecision`]: `F64` (default) is
//!   bit-identical to the tape, `F32` quantizes the frozen weights once
//!   and runs the whole warm path in single precision while keeping the
//!   `run_batch` interface `f64` at both ends — training itself never
//!   sees f32 (the "training stays f64" invariant). Serving reads the
//!   knob from `ONN_INFER_DTYPE` ([`PlanPrecision::from_env`], validated
//!   like `ONN_THREADS`).
//! * [`ExecPlan::run_batch`] — the **executor**: replays the program over a
//!   batch with zero `Graph`/`Var` construction and zero heap allocations
//!   on the warm path (two preallocated ping-pong slabs; pinned by the
//!   counting-allocator test in `tests/compiled_inference.rs`). Outputs are
//!   bit-identical to the tape forward with noise off, and identical to
//!   `evaluate_seeded`'s frozen noisy weights for the same seed.
//! * [`serve()`] — the **serving runtime**: a request queue that coalesces
//!   single-sample requests into mini-batches (size cap + fill deadline),
//!   shards batches across the shared `adept_tensor::pool` workers (each
//!   with a private plan clone), and reports req/s with p50/p99 latency
//!   ([`ServeReport`]). Batch size and worker count follow
//!   `ONN_SERVE_BATCH` / `ONN_SERVE_THREADS` (validated like
//!   `ONN_THREADS`: junk panics, `0`/empty/unset = auto). The runtime is
//!   hardened against overload and faulty workers: the pending queue is
//!   bounded (`ONN_SERVE_QUEUE`, arrivals past capacity are shed),
//!   requests can carry deadlines (`ONN_SERVE_DEADLINE_MS`, expired
//!   requests are dropped instead of served late), a panicking batch
//!   fails only its own requests (the worker swaps in a pristine runner
//!   and keeps serving), and shutdown drains every admitted request.
//!   Every submitted request ends in exactly one [`RequestOutcome`] and
//!   the report's counts sum to the submitted total. Tests drive these
//!   paths through [`serve_with`] + the [`BatchRunner`] trait, injecting
//!   mock runners that panic or stall on cue.
//!
//! Fault injection composes with compilation: [`ExecPlan::compile_faulted`]
//! freezes a model *as degraded hardware would run it* — a
//! [`adept_photonics::FaultScenario`] (dead/stuck phase shifters, dead
//! couplers, thermal drift, phase quantization) is applied during the
//! mesh-weight materialization, and [`ExecPlan::refresh`] re-freezes
//! whenever the parameter **or** fault fingerprint changes.

pub mod plan;
pub mod serve;

pub use plan::{ExecPlan, PlanFromCheckpointError, PlanPrecision};
pub use serve::{serve, serve_with, BatchRunner, RequestOutcome, ServeConfig, ServeReport};
