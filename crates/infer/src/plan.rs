//! Compiling lowered models into flat, allocation-free execution plans.
//!
//! [`ExecPlan::compile`] takes the [`adept_nn::lower_model`] step list and
//! turns it into a closed program: weight matrices frozen as contiguous
//! tensors, every convolution lowered to the same im2col + GEMM + NCHW
//! reorder the tape runs, per-plan scratch sized once for the maximum
//! batch, and activations fused into the producing step's epilogue where
//! possible. [`ExecPlan::run_batch`] then replays the program with nothing
//! but slice arithmetic — no `Graph`, no `Var`, and **zero heap
//! allocations** on the warm path (pinned by `tests/compiled_inference.rs`
//! under the counting allocator).
//!
//! Arithmetic is deliberately a bit-for-bit mirror of the tape forward:
//! GEMMs go through [`adept_tensor::matmul_into`] (same k-order at any
//! thread count), convolution reorder/bias/activation apply in the tape's
//! element order, and batch-norm keeps the tape's two-step
//! normalize-then-affine form. With noise off, compiled outputs equal the
//! tape's exactly; with phase noise on, compiling with seed `s` freezes the
//! same noisy weights `evaluate_seeded(…, s)` would draw.
//!
//! # Plan precision and the "training stays f64" invariant
//!
//! [`ExecPlan::compile`] takes a [`PlanPrecision`]: under
//! [`PlanPrecision::F64`] (the default) the program above is exactly the
//! pre-dtype-axis engine, bit-identical to the tape. Under
//! [`PlanPrecision::F32`] the frozen weights are quantized **once at
//! freeze time** (`Tensor::to_f32`) and the whole warm path — im2col
//! scratch, GEMMs, ping-pong slabs, fused epilogues — runs in f32; only
//! the `run_batch` boundary stays `f64` (inputs narrow into the
//! preallocated slab, logits widen out of it), so serving, batching and
//! checkpoints are precision-agnostic. Training and autodiff never see a
//! plan, let alone an f32 one — quantization is a one-way, inference-only
//! door, which is what keeps tape bit-determinism structurally safe (see
//! `adept_tensor::element`).

use adept_nn::layers::Layer;
use adept_nn::{
    lower_model_faulted, Checkpoint, CheckpointError, LowerError, LoweredStep, ParamStore,
};
use adept_photonics::FaultScenario;
use adept_telemetry::Counter;
use adept_tensor::{im2col_slice_into, matmul_into, Conv2dGeometry, Element, TensorBase};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Logical inference totals: `run_batch` calls and samples pushed
/// through them. Deterministic across `ONN_THREADS` for a fixed call
/// pattern (serving coalescing is pinned by explicit batch/thread
/// config wherever these are diffed).
static PLAN_BATCHES: Counter = Counter::stable("plan.batches");
static PLAN_SAMPLES: Counter = Counter::stable("plan.samples");

/// Why [`ExecPlan::compile_from_checkpoint`] failed: either the checkpoint
/// itself is bad, or the rebuilt model does not lower.
#[derive(Debug)]
pub enum PlanFromCheckpointError {
    /// The checkpoint file could not be read, parsed or instantiated.
    Checkpoint(CheckpointError),
    /// The rebuilt model has a layer without a tape-free lowering.
    Lower(LowerError),
}

impl fmt::Display for PlanFromCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanFromCheckpointError::Checkpoint(e) => write!(f, "{e}"),
            PlanFromCheckpointError::Lower(e) => write!(f, "cannot lower checkpointed model: {e}"),
        }
    }
}

impl std::error::Error for PlanFromCheckpointError {}

impl From<CheckpointError> for PlanFromCheckpointError {
    fn from(e: CheckpointError) -> Self {
        PlanFromCheckpointError::Checkpoint(e)
    }
}

impl From<LowerError> for PlanFromCheckpointError {
    fn from(e: LowerError) -> Self {
        PlanFromCheckpointError::Lower(e)
    }
}

/// The element dtype a compiled plan stores and computes in.
///
/// `F64` (the default) is bit-identical to the tape forward and is what
/// every training-adjacent consumer uses. `F32` is an inference-only
/// storage/compute mode: weights are quantized once at plan-freeze time
/// and the warm path halves its memory traffic, while the plan's external
/// `run_batch` interface stays `f64` on both ends. Training never sees a
/// plan of either precision — the autodiff tape is `f64`-only by
/// construction (the "training stays f64" invariant, see
/// `adept_tensor::element`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanPrecision {
    /// Double precision: the default, bit-identical to the tape forward.
    #[default]
    F64,
    /// Single precision: inference-only; weights quantized at freeze time,
    /// logits returned as `f64` after an exact widening.
    F32,
}

impl PlanPrecision {
    /// Parses a precision override. Empty (or whitespace) means "not
    /// configured" (default `F64`); `f32`/`f64` (any case) select the
    /// mode; anything else panics naming the variable, exactly like the
    /// `ONN_THREADS` parse — a typo'd override must never silently run at
    /// the default precision.
    pub fn parse(name: &str, raw: &str) -> Option<PlanPrecision> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.eq_ignore_ascii_case("f64") {
            Some(PlanPrecision::F64)
        } else if trimmed.eq_ignore_ascii_case("f32") {
            Some(PlanPrecision::F32)
        } else {
            panic!("invalid {name}={raw:?}: expected \"f32\", \"f64\" or empty/unset (= f64)")
        }
    }

    /// Reads `ONN_INFER_DTYPE` once (cached): the serving/demo-facing
    /// precision knob, validated like `ONN_THREADS`. Unset, empty or `0`
    /// risk nothing — only `f32`/`f64` are accepted and junk panics at
    /// first use.
    pub fn from_env() -> PlanPrecision {
        static CACHE: OnceLock<PlanPrecision> = OnceLock::new();
        *CACHE.get_or_init(|| {
            std::env::var("ONN_INFER_DTYPE")
                .ok()
                .and_then(|v| PlanPrecision::parse("ONN_INFER_DTYPE", &v))
                .unwrap_or_default()
        })
    }

    /// The dtype's canonical name (`"f64"` / `"f32"`).
    pub fn dtype_name(self) -> &'static str {
        match self {
            PlanPrecision::F64 => "f64",
            PlanPrecision::F32 => "f32",
        }
    }

    /// Mixed into the plan fingerprint so `refresh` treats precision as
    /// part of the frozen-weight identity, alongside params and faults.
    fn tag(self) -> u64 {
        match self {
            PlanPrecision::F64 => 0,
            PlanPrecision::F32 => 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// One compiled step, generic over the plan's element dtype. Producing
/// steps read the source slab and write the destination slab; in-place
/// steps rewrite the source slab directly.
#[derive(Debug, Clone)]
enum Step<T: Element> {
    /// `y = x·w_t + b` with optional fused ReLU epilogue. Producing.
    Linear {
        w_t: TensorBase<T>,
        bias: TensorBase<T>,
        in_f: usize,
        out_f: usize,
        relu: bool,
    },
    /// im2col + GEMM + NCHW reorder with fused bias (+ optional ReLU).
    /// Producing; owns its patch-matrix and GEMM scratch.
    Conv {
        w: TensorBase<T>,
        bias: TensorBase<T>,
        geom: Conv2dGeometry,
        oc: usize,
        relu: bool,
        cols: Vec<T>,
        gemm: Vec<T>,
    },
    /// Eval-mode batch norm (+ optional ReLU). In place.
    BatchNorm {
        mean: Vec<T>,
        inv_std: Vec<T>,
        gamma: Vec<T>,
        beta: Vec<T>,
        channels: usize,
        hw: usize,
        relu: bool,
    },
    /// Standalone `max(x, 0)` (nothing to fuse into). In place.
    Relu { elems: usize },
    /// Average pooling, window = stride = `k`. Producing.
    AvgPool {
        k: usize,
        c: usize,
        h: usize,
        w: usize,
    },
    /// Max pooling, window = stride = `k`. Producing.
    MaxPool {
        k: usize,
        c: usize,
        h: usize,
        w: usize,
    },
}

impl<T: Element> Step<T> {
    /// Per-sample element count this step produces.
    fn out_elems(&self) -> usize {
        match self {
            Step::Linear { out_f, .. } => *out_f,
            Step::Conv { geom, oc, .. } => oc * geom.out_h() * geom.out_w(),
            Step::BatchNorm { channels, hw, .. } => channels * hw,
            Step::Relu { elems } => *elems,
            Step::AvgPool { k, c, h, w } | Step::MaxPool { k, c, h, w } => c * (h / k) * (w / k),
        }
    }

    fn is_in_place(&self) -> bool {
        matches!(self, Step::BatchNorm { .. } | Step::Relu { .. })
    }

    /// Telemetry span path for this step's kernel. Static strings only:
    /// the warm path must stay allocation-free with telemetry off *and*
    /// steady-state cheap with it on.
    fn kind_path(&self) -> &'static str {
        match self {
            Step::Linear { .. } => "plan/linear",
            Step::Conv { .. } => "plan/conv",
            Step::BatchNorm { .. } => "plan/batch_norm",
            Step::Relu { .. } => "plan/relu",
            Step::AvgPool { .. } => "plan/avg_pool",
            Step::MaxPool { .. } => "plan/max_pool",
        }
    }
}

/// The dtype-monomorphic half of a plan: the step list plus the two
/// ping-pong activation slabs, everything that depends on the element
/// type. The `f64` and `f32` instantiations share all of their code.
#[derive(Debug, Clone)]
struct Program<T: Element> {
    steps: Vec<Step<T>>,
    buf_a: Vec<T>,
    buf_b: Vec<T>,
}

impl<T: Element> Program<T> {
    /// Replays the program over `n` samples. The slab boundary does the
    /// precision conversion: inputs narrow into `buf_a` (exact for f64),
    /// logits widen back out (always exact) — no allocation either way.
    fn run(&mut self, input: &[f64], n: usize, out: &mut [f64]) {
        let mut src = std::mem::take(&mut self.buf_a);
        let mut dst = std::mem::take(&mut self.buf_b);
        T::slice_from_f64(input, &mut src[..input.len()]);
        for step in &mut self.steps {
            // Per-step kernel timing; a no-op guard with telemetry off.
            let _span = adept_telemetry::span(step.kind_path());
            if step.is_in_place() {
                run_in_place(step, &mut src, n);
            } else {
                run_producing(step, &src, &mut dst, n);
                std::mem::swap(&mut src, &mut dst);
            }
        }
        T::slice_to_f64(&src[..out.len()], out);
        self.buf_a = src;
        self.buf_b = dst;
    }
}

/// The two dtype instantiations an [`ExecPlan`] can hold. `F64` stays the
/// default and the bit-identical mirror of the tape; `F32` is the
/// quantized inference mode.
#[derive(Debug, Clone)]
enum Body {
    F64(Program<f64>),
    F32(Program<f32>),
}

/// A frozen, tape-free inference program for one trained model.
///
/// Created by [`ExecPlan::compile`]; executed by [`ExecPlan::run_batch`].
/// Holds everything the warm path needs — frozen weights, conv scratch and
/// two ping-pong activation slabs sized for `max_batch` — so repeated
/// forwards allocate nothing. Clone a plan to give each serving worker
/// private scratch; the frozen weight tensors are shared structurally.
/// The external interface is `f64` at both ends regardless of the plan's
/// [`PlanPrecision`].
#[derive(Debug, Clone)]
pub struct ExecPlan {
    body: Body,
    in_shape: Vec<usize>,
    in_elems: usize,
    out_features: usize,
    max_batch: usize,
    fingerprint: u64,
    seed: u64,
    precision: PlanPrecision,
    /// Static hardware damage the frozen weights realize (`None` =
    /// healthy hardware).
    faults: Option<Arc<FaultScenario>>,
    /// Fingerprint of `faults` at compile time; [`ExecPlan::refresh_faults`]
    /// re-freezes when the deployed scenario's fingerprint moves.
    fault_fp: u64,
}

/// FNV-1a over every parameter tensor's shape and f64 bit pattern, in
/// `model.param_ids()` order. Cheap change detection for [`ExecPlan::refresh`].
fn param_fingerprint(model: &dyn Layer, store: &ParamStore) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for id in model.param_ids() {
        let t = store.value(id);
        for &d in t.shape() {
            mix(d as u64);
        }
        for &x in t.as_slice() {
            mix(x.to_bits());
        }
    }
    h
}

/// Builds the dtype-monomorphic program from the lowered step list:
/// weights quantized via [`Element::cast_tensor`] (a no-op `Arc` bump for
/// f64 — the freeze-time quantization point for f32), scratch and slabs
/// sized for `max_batch`. Returns the program and the output feature
/// count.
fn build_program<T: Element>(
    lowered: Vec<LoweredStep>,
    in_shape: &[usize],
    in_elems: usize,
    max_batch: usize,
) -> (Program<T>, usize) {
    let mut shape = in_shape.to_vec();
    let mut steps: Vec<Step<T>> = Vec::new();
    let mut max_elems = in_elems;
    let narrow = |v: &[f64]| -> Vec<T> { v.iter().map(|&x| T::from_f64(x)).collect() };
    for step in lowered {
        match step {
            LoweredStep::Flatten => {
                shape = vec![shape.iter().product()];
                continue;
            }
            LoweredStep::Relu => {
                // Fuse into the previous producing step's epilogue when
                // it has one free; otherwise keep a standalone pass.
                match steps.last_mut() {
                    Some(
                        Step::Linear { relu, .. }
                        | Step::Conv { relu, .. }
                        | Step::BatchNorm { relu, .. },
                    ) if !*relu => *relu = true,
                    _ => steps.push(Step::Relu {
                        elems: shape.iter().product(),
                    }),
                }
                continue;
            }
            LoweredStep::Linear { w_t, bias } => {
                let elems: usize = shape.iter().product();
                let (in_f, out_f) = (w_t.shape()[0], w_t.shape()[1]);
                assert_eq!(elems, in_f, "linear input features mismatch");
                steps.push(Step::Linear {
                    w_t: T::cast_tensor(&w_t),
                    bias: T::cast_tensor(&bias),
                    in_f,
                    out_f,
                    relu: false,
                });
                shape = vec![out_f];
            }
            LoweredStep::Conv2d {
                w,
                bias,
                geom,
                out_channels,
            } => {
                assert_eq!(
                    shape,
                    [geom.in_channels, geom.in_h, geom.in_w],
                    "conv input shape mismatch"
                );
                let ccols = geom.col_cols(max_batch);
                steps.push(Step::Conv {
                    w: T::cast_tensor(&w),
                    bias: T::cast_tensor(&bias),
                    geom,
                    oc: out_channels,
                    relu: false,
                    cols: vec![T::ZERO; geom.col_rows() * ccols],
                    gemm: vec![T::ZERO; out_channels * ccols],
                });
                shape = vec![out_channels, geom.out_h(), geom.out_w()];
            }
            LoweredStep::BatchNorm2d {
                mean,
                inv_std,
                gamma,
                beta,
            } => {
                assert_eq!(shape.len(), 3, "batch norm expects CHW input");
                assert_eq!(shape[0], mean.len(), "batch norm channel mismatch");
                steps.push(Step::BatchNorm {
                    mean: narrow(&mean),
                    inv_std: narrow(&inv_std),
                    gamma: narrow(&gamma),
                    beta: narrow(&beta),
                    channels: shape[0],
                    hw: shape[1] * shape[2],
                    relu: false,
                });
            }
            LoweredStep::AvgPool2d { kernel } => {
                assert_eq!(shape.len(), 3, "avg pool expects CHW input");
                let (c, h, w) = (shape[0], shape[1], shape[2]);
                steps.push(Step::AvgPool { k: kernel, c, h, w });
                shape = vec![c, h / kernel, w / kernel];
            }
            LoweredStep::MaxPool2d { kernel } => {
                assert_eq!(shape.len(), 3, "max pool expects CHW input");
                let (c, h, w) = (shape[0], shape[1], shape[2]);
                steps.push(Step::MaxPool { k: kernel, c, h, w });
                shape = vec![c, h / kernel, w / kernel];
            }
        }
        max_elems = max_elems.max(steps.last().map_or(0, Step::out_elems));
    }
    let out_features = shape.iter().product();
    let slab = max_batch * max_elems;
    (
        Program {
            steps,
            buf_a: vec![T::ZERO; slab],
            buf_b: vec![T::ZERO; slab],
        },
        out_features,
    )
}

impl ExecPlan {
    /// Freezes `model` into an executable plan.
    ///
    /// `sample_shape` is the per-sample input shape (no batch dimension —
    /// e.g. `[C, H, W]` for a CNN, `[features]` for an MLP); `max_batch`
    /// sizes the plan's scratch, `seed` fixes the phase-noise stream
    /// exactly as `evaluate_seeded`'s first batch would draw it, and
    /// `precision` selects the plan's element dtype
    /// ([`PlanPrecision::F64`] = bit-identical to the tape,
    /// [`PlanPrecision::F32`] = freeze-time-quantized inference mode).
    ///
    /// Lowering walks the model once, then a shape pass checks every step
    /// against the declared input, fuses each ReLU into the producing step
    /// before it (GEMM/batch-norm epilogue) and drops `Flatten` (pure
    /// metadata: slabs are already flat).
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if any layer lacks a tape-free lowering.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or a step disagrees with the incoming
    /// shape (wrong feature count, non-NCHW input to a conv/pool).
    pub fn compile(
        model: &dyn Layer,
        store: &ParamStore,
        sample_shape: &[usize],
        max_batch: usize,
        seed: u64,
        precision: PlanPrecision,
    ) -> Result<Self, LowerError> {
        Self::compile_faulted(model, store, sample_shape, max_batch, seed, None, precision)
    }

    /// Like [`ExecPlan::compile`], but freezes the weights as realized on
    /// hardware damaged by `faults`: the plan's matrices bake in the
    /// scenario's dead/stuck shifters, dead couplers, frozen drift and
    /// quantization, bit-identical to `evaluate_faulted` under the same
    /// seed. `None` (or an empty scenario) is exactly [`ExecPlan::compile`].
    ///
    /// Faults apply in f64 during lowering; under [`PlanPrecision::F32`]
    /// the already-faulted weights are then quantized, so the fault model
    /// and the dtype axis compose without interaction.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if any layer lacks a tape-free lowering.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExecPlan::compile`].
    pub fn compile_faulted(
        model: &dyn Layer,
        store: &ParamStore,
        sample_shape: &[usize],
        max_batch: usize,
        seed: u64,
        faults: Option<Arc<FaultScenario>>,
        precision: PlanPrecision,
    ) -> Result<Self, LowerError> {
        assert!(max_batch > 0, "max_batch must be positive");
        let faults = faults.filter(|f| !f.is_empty());
        let lowered = lower_model_faulted(model, store, seed, faults.clone())?;
        let in_shape = sample_shape.to_vec();
        let in_elems: usize = in_shape.iter().product();
        let (body, out_features) = match precision {
            PlanPrecision::F64 => {
                let (p, o) = build_program::<f64>(lowered, &in_shape, in_elems, max_batch);
                (Body::F64(p), o)
            }
            PlanPrecision::F32 => {
                let (p, o) = build_program::<f32>(lowered, &in_shape, in_elems, max_batch);
                (Body::F32(p), o)
            }
        };
        let fault_fp = faults.as_ref().map_or(0, |f| f.fingerprint());
        Ok(Self {
            body,
            in_shape,
            in_elems,
            out_features,
            max_batch,
            fingerprint: param_fingerprint(model, store) ^ precision.tag(),
            seed,
            precision,
            faults,
            fault_fp,
        })
    }

    /// Compiles a plan straight from a checkpoint file: loads and verifies
    /// the checkpoint, re-instantiates the trained model
    /// ([`Checkpoint::instantiate`]), and compiles with the **stored**
    /// noise seed and fault scenario — so an `F64` plan reproduces the
    /// saving process's `run_batch` outputs bit-for-bit at any
    /// `ONN_THREADS` (an `F32` plan quantizes those same frozen weights).
    ///
    /// Returns the plan together with the parsed [`Checkpoint`] so callers
    /// can inspect the architecture or re-serve under different faults.
    ///
    /// # Errors
    ///
    /// [`PlanFromCheckpointError::Checkpoint`] if the file is missing,
    /// corrupted or architecturally incompatible;
    /// [`PlanFromCheckpointError::Lower`] if the rebuilt model lacks a
    /// tape-free lowering.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExecPlan::compile`].
    pub fn compile_from_checkpoint(
        path: impl AsRef<std::path::Path>,
        max_batch: usize,
        precision: PlanPrecision,
    ) -> Result<(Self, Checkpoint), PlanFromCheckpointError> {
        let ckpt = adept_nn::load_backend(path)?;
        let (model, store) = ckpt.instantiate()?;
        let faults = ckpt.fault.clone().map(Arc::new);
        let plan = Self::compile_faulted(
            &model,
            &store,
            &ckpt.sample_shape(),
            max_batch,
            ckpt.noise_seed,
            faults,
            precision,
        )?;
        Ok((plan, ckpt))
    }

    /// Per-sample input element count (`sample_shape` product).
    pub fn input_elems(&self) -> usize {
        self.in_elems
    }

    /// Per-sample output feature count.
    pub fn output_features(&self) -> usize {
        self.out_features
    }

    /// Largest batch [`ExecPlan::run_batch`] accepts.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The element dtype this plan stores and computes in.
    pub fn precision(&self) -> PlanPrecision {
        self.precision
    }

    /// Number of compiled steps (after fusion and `Flatten` elision).
    pub fn num_steps(&self) -> usize {
        match &self.body {
            Body::F64(p) => p.steps.len(),
            Body::F32(p) => p.steps.len(),
        }
    }

    /// Rebuilds the frozen weights if (and only if) the model's parameters
    /// changed since this plan was compiled — e.g. after phases moved in a
    /// training step. The noise seed and precision are kept (precision is
    /// fingerprinted alongside the params), so a refreshed plan stays
    /// comparable to `evaluate_seeded` under the same seed. Returns whether
    /// a rebuild happened.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if the (changed) model no longer lowers.
    pub fn refresh(&mut self, model: &dyn Layer, store: &ParamStore) -> Result<bool, LowerError> {
        let faults = self.faults.clone();
        self.refresh_faults(model, store, faults)
    }

    /// Like [`ExecPlan::refresh`], but also re-freezes when the deployed
    /// fault scenario changed (its [`FaultScenario::fingerprint`] differs
    /// from the one this plan was compiled against) — the in-field
    /// recalibration path: a newly diagnosed dead shifter, or repaired
    /// hardware (`None`), rebuilds the frozen weights without touching an
    /// unchanged plan. Returns whether a rebuild happened.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError`] if the (changed) model no longer lowers.
    pub fn refresh_faults(
        &mut self,
        model: &dyn Layer,
        store: &ParamStore,
        faults: Option<Arc<FaultScenario>>,
    ) -> Result<bool, LowerError> {
        let faults = faults.filter(|f| !f.is_empty());
        let fault_fp = faults.as_ref().map_or(0, |f| f.fingerprint());
        if param_fingerprint(model, store) ^ self.precision.tag() == self.fingerprint
            && fault_fp == self.fault_fp
        {
            return Ok(false);
        }
        *self = Self::compile_faulted(
            model,
            store,
            &self.in_shape,
            self.max_batch,
            self.seed,
            faults,
            self.precision,
        )?;
        Ok(true)
    }

    /// The fault scenario the frozen weights realize, if any.
    pub fn fault_scenario(&self) -> Option<&Arc<FaultScenario>> {
        self.faults.as_ref()
    }

    /// Runs `n` samples through the plan: `input` is `n × input_elems`
    /// row-major, `out` receives `n × output_features` logits — `f64` on
    /// both ends at either [`PlanPrecision`] (f32 plans convert at the
    /// slab boundary, allocation-free).
    ///
    /// Warm path: zero heap allocations, zero tape nodes. Per-sample
    /// results are independent of batch composition (every step is
    /// per-sample and GEMM k-order is fixed), so serving may coalesce
    /// requests into arbitrary batches without changing any output bit.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `max_batch`, or slice lengths
    /// disagree with `n`.
    pub fn run_batch(&mut self, input: &[f64], n: usize, out: &mut [f64]) {
        assert!(n > 0, "empty batch");
        assert!(
            n <= self.max_batch,
            "batch {n} exceeds max {}",
            self.max_batch
        );
        assert_eq!(input.len(), n * self.in_elems, "input length mismatch");
        assert_eq!(out.len(), n * self.out_features, "output length mismatch");
        PLAN_BATCHES.incr();
        PLAN_SAMPLES.add(n as u64);
        match &mut self.body {
            Body::F64(p) => p.run(input, n, out),
            Body::F32(p) => p.run(input, n, out),
        }
    }
}

/// Executes a slab-rewriting step over `n` samples.
fn run_in_place<T: Element>(step: &Step<T>, src: &mut [T], n: usize) {
    match step {
        Step::Relu { elems } => {
            for v in &mut src[..n * elems] {
                *v = v.maximum(T::ZERO);
            }
        }
        Step::BatchNorm {
            mean,
            inv_std,
            gamma,
            beta,
            channels,
            hw,
            relu,
        } => {
            // Tape parity: normalize then affine as two separate rounding
            // steps (batch_norm2d_op), never folded into one multiply-add.
            for ni in 0..n {
                for c in 0..*channels {
                    let off = (ni * channels + c) * hw;
                    for v in &mut src[off..off + hw] {
                        let xhat = (*v - mean[c]) * inv_std[c];
                        let y = xhat * gamma[c] + beta[c];
                        *v = if *relu { y.maximum(T::ZERO) } else { y };
                    }
                }
            }
        }
        _ => unreachable!("producing step dispatched as in-place"),
    }
}

/// Executes a producing step: reads `src`, writes `dst`.
fn run_producing<T: Element>(step: &mut Step<T>, src: &[T], dst: &mut [T], n: usize) {
    match step {
        Step::Linear {
            w_t,
            bias,
            in_f,
            out_f,
            relu,
        } => {
            matmul_into(
                &src[..n * *in_f],
                w_t.as_slice(),
                &mut dst[..n * *out_f],
                n,
                *in_f,
                *out_f,
            );
            let b = bias.as_slice();
            for row in dst[..n * *out_f].chunks_exact_mut(*out_f) {
                for (v, &bj) in row.iter_mut().zip(b) {
                    let y = *v + bj;
                    *v = if *relu { y.maximum(T::ZERO) } else { y };
                }
            }
        }
        Step::Conv {
            w,
            bias,
            geom,
            oc,
            relu,
            cols,
            gemm,
        } => {
            let p = geom.out_h() * geom.out_w();
            let crows = geom.col_rows();
            let ccols = geom.col_cols(n);
            let in_elems = geom.in_channels * geom.in_h * geom.in_w;
            im2col_slice_into(&src[..n * in_elems], n, geom, &mut cols[..crows * ccols]);
            matmul_into(
                w.as_slice(),
                &cols[..crows * ccols],
                &mut gemm[..*oc * ccols],
                *oc,
                crows,
                ccols,
            );
            // The tape's cols_to_nchw gather + broadcast bias add, as one
            // fused reorder pass.
            let b = bias.as_slice();
            for ni in 0..n {
                for c in 0..*oc {
                    let dst_off = (ni * *oc + c) * p;
                    let gemm_off = c * ccols + ni * p;
                    for pix in 0..p {
                        let y = gemm[gemm_off + pix] + b[c];
                        dst[dst_off + pix] = if *relu { y.maximum(T::ZERO) } else { y };
                    }
                }
            }
        }
        Step::AvgPool { k, c, h, w } => {
            let (k, c, h, w) = (*k, *c, *h, *w);
            let (oh, ow) = (h / k, w / k);
            let scale = T::from_f64((k * k) as f64);
            for ni in 0..n {
                for ci in 0..c {
                    let src_off = (ni * c + ci) * h * w;
                    let dst_off = (ni * c + ci) * oh * ow;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut s = T::ZERO;
                            for dy in 0..k {
                                for dx in 0..k {
                                    s += src[src_off + (oy * k + dy) * w + ox * k + dx];
                                }
                            }
                            dst[dst_off + oy * ow + ox] = s / scale;
                        }
                    }
                }
            }
        }
        Step::MaxPool { k, c, h, w } => {
            let (k, c, h, w) = (*k, *c, *h, *w);
            let (oh, ow) = (h / k, w / k);
            for ni in 0..n {
                for ci in 0..c {
                    let src_off = (ni * c + ci) * h * w;
                    let dst_off = (ni * c + ci) * oh * ow;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = T::NEG_INFINITY;
                            for dy in 0..k {
                                for dx in 0..k {
                                    let v = src[src_off + (oy * k + dy) * w + ox * k + dx];
                                    if v > best {
                                        best = v;
                                    }
                                }
                            }
                            dst[dst_off + oy * ow + ox] = best;
                        }
                    }
                }
            }
        }
        _ => unreachable!("in-place step dispatched as producing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_parse_accepts_both_dtypes_and_auto() {
        assert_eq!(PlanPrecision::parse("ONN_INFER_DTYPE", ""), None);
        assert_eq!(PlanPrecision::parse("ONN_INFER_DTYPE", "  "), None);
        assert_eq!(
            PlanPrecision::parse("ONN_INFER_DTYPE", "f32"),
            Some(PlanPrecision::F32)
        );
        assert_eq!(
            PlanPrecision::parse("ONN_INFER_DTYPE", " F64 "),
            Some(PlanPrecision::F64)
        );
        assert_eq!(PlanPrecision::default(), PlanPrecision::F64);
        assert_eq!(PlanPrecision::F32.dtype_name(), "f32");
    }

    #[test]
    #[should_panic(expected = "invalid ONN_INFER_DTYPE=\"double\"")]
    fn precision_parse_rejects_junk_naming_the_variable() {
        let _ = PlanPrecision::parse("ONN_INFER_DTYPE", "double");
    }

    #[test]
    fn precision_tags_differ() {
        // The fingerprint must distinguish otherwise-identical plans that
        // differ only in dtype, or refresh would skip a needed re-freeze.
        assert_ne!(PlanPrecision::F64.tag(), PlanPrecision::F32.tag());
    }
}
