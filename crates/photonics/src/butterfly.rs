//! The FFT-ONN butterfly topology (Gu et al., ASPDAC'20 / TCAD'20).
//!
//! A `k`-port butterfly mesh has `log2(k)` stages. Stage `s` (blocks of size
//! `m = 2^{s+1}`) must interfere waveguide `i` with waveguide `i + m/2`; the
//! crossing network that brings those pairs adjacent is the *riffle*
//! permutation within each block, costing `(m/2)·(m/2−1)/2` crossings per
//! block. Summed over stages this reproduces the #CR cells of the paper's
//! tables exactly (8×8 → 16, 16×16 → 88, 32×32 → 416 for the full PTC).

use crate::topology::{BlockMeshTopology, MeshBlock};
use adept_linalg::Permutation;

/// The riffle permutation on `m` elements as an image vector: output `2t`
/// reads input `t`, output `2t+1` reads input `m/2 + t`.
///
/// # Panics
///
/// Panics unless `m` is even.
pub fn riffle_image(m: usize) -> Vec<usize> {
    assert!(m % 2 == 0, "riffle needs an even size");
    let half = m / 2;
    let mut image = Vec::with_capacity(m);
    for t in 0..half {
        image.push(t);
        image.push(half + t);
    }
    image
}

/// The stage-`s` butterfly permutation on `k` waveguides: a riffle within
/// every block of size `2^{s+1}`.
///
/// Stage 0 pairs adjacent waveguides (identity routing); higher stages route
/// strided pairs together.
///
/// # Panics
///
/// Panics unless `k` is a power of two and the stage fits (`2^{s+1} ≤ k`).
pub fn butterfly_stage_permutation(k: usize, stage: usize) -> Permutation {
    assert!(
        k.is_power_of_two() && k >= 2,
        "k must be a power of two ≥ 2"
    );
    let m = 1usize << (stage + 1);
    assert!(m <= k, "stage {stage} too large for k = {k}");
    let mut image = Vec::with_capacity(k);
    for block in 0..(k / m) {
        for v in riffle_image(m) {
            image.push(block * m + v);
        }
    }
    Permutation::from_vec(image).expect("riffle construction is a bijection")
}

/// Number of crossings in the stage-`s` butterfly permutation:
/// `(k/m)·(m/2)(m/2−1)/2` with `m = 2^{s+1}`.
pub fn butterfly_stage_crossings(k: usize, stage: usize) -> usize {
    let m = 1usize << (stage + 1);
    let half = m / 2;
    (k / m) * half * (half - 1) / 2
}

/// Builds the full butterfly topology for one unitary: `log2(k)` blocks,
/// each with a full coupler column and the stage's riffle crossings.
///
/// # Panics
///
/// Panics unless `k` is a power of two of at least 2.
pub fn butterfly_topology(k: usize) -> BlockMeshTopology {
    assert!(
        k.is_power_of_two() && k >= 2,
        "k must be a power of two ≥ 2"
    );
    let stages = k.trailing_zeros() as usize;
    // In a PS→DC→CR block the crossing network follows the couplers, so each
    // block's riffle prepares the *next* block's coupler pairs. Input-side
    // block couples adjacent pairs then riffles stride-2 pairs together,
    // and so on; the output-side block needs no routing. Blocks are stored
    // leftmost (output-side) factor first.
    let mut blocks = Vec::with_capacity(stages);
    blocks.push(MeshBlock {
        dc_start: 0,
        couplers: vec![true; k / 2],
        perm: Permutation::identity(k),
    });
    for s in (1..stages).rev() {
        blocks.push(MeshBlock {
            dc_start: 0,
            couplers: vec![true; k / 2],
            perm: butterfly_stage_permutation(k, s),
        });
    }
    BlockMeshTopology::new(k, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DeviceCount;
    use crate::pdk::Pdk;

    #[test]
    fn riffle_small_cases() {
        assert_eq!(riffle_image(2), vec![0, 1]);
        assert_eq!(riffle_image(4), vec![0, 2, 1, 3]);
        assert_eq!(riffle_image(8), vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn stage_zero_is_identity() {
        assert!(butterfly_stage_permutation(8, 0).is_identity());
    }

    #[test]
    fn stage_crossings_match_inversion_count() {
        for k in [4usize, 8, 16, 32] {
            let stages = k.trailing_zeros() as usize;
            for s in 0..stages {
                let p = butterfly_stage_permutation(k, s);
                assert_eq!(
                    p.crossing_count(),
                    butterfly_stage_crossings(k, s),
                    "k={k} stage={s}"
                );
            }
        }
    }

    /// The FFT-ONN #CR/#DC/#Blk cells of paper Tables 1–2, per PTC
    /// (two unitaries).
    #[test]
    fn ptc_counts_match_paper_tables() {
        for (k, cr, dc, blk) in [
            (8usize, 16usize, 24usize, 6usize),
            (16, 88, 64, 8),
            (32, 416, 160, 10),
        ] {
            let topo = butterfly_topology(k);
            let ptc = topo.ptc_device_count(&topo);
            assert_eq!(ptc.cr, cr, "k={k} crossings");
            assert_eq!(ptc.dc, dc, "k={k} couplers");
            assert_eq!(ptc.blocks, blk, "k={k} blocks");
            assert_eq!(ptc.ps, k * blk, "k={k} phase shifters");
        }
    }

    /// The FFT-ONN footprint cells of paper Tables 1–2.
    #[test]
    fn ptc_footprints_match_paper_tables() {
        let footprint = |k: usize, pdk: &Pdk| -> f64 {
            let topo = butterfly_topology(k);
            let c: DeviceCount = topo.ptc_device_count(&topo);
            c.footprint_kum2(pdk)
        };
        let amf = Pdk::amf();
        assert_eq!(footprint(8, &amf).round(), 363.0);
        assert_eq!(footprint(16, &amf).round(), 972.0);
        assert_eq!(footprint(32, &amf).round(), 2443.0);
        assert_eq!(footprint(16, &Pdk::aim()).round(), 1007.0);
    }

    #[test]
    fn butterfly_unitary_is_unitary() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let topo = butterfly_topology(16);
        let phases: Vec<Vec<f64>> = (0..topo.blocks().len())
            .map(|_| (0..16).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        let u = topo.unitary(&phases);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn butterfly_mixes_all_inputs() {
        // With zero phases, the butterfly spreads a single input across all
        // outputs (full connectivity in log2(k) stages).
        let topo = butterfly_topology(8);
        let phases = vec![vec![0.0; 8]; 3];
        let u = topo.unitary(&phases);
        for j in 0..8 {
            let col_energy: f64 = (0..8).map(|i| u.at(i, j).norm_sqr()).sum();
            assert!((col_energy - 1.0).abs() < 1e-10);
            let nonzero = (0..8).filter(|&i| u.at(i, j).abs() > 1e-9).count();
            assert!(nonzero == 8, "column {j} touches {nonzero} outputs");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = butterfly_topology(12);
    }
}
