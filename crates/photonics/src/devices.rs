//! Transfer matrices of the basic optical components.
//!
//! Conventions follow the paper's Section 2.1:
//!
//! * a phase shifter multiplies its waveguide by `e^{-jφ}`;
//! * a 2×2 directional coupler has transfer matrix
//!   `[[t, j√(1-t²)], [j√(1-t²), t]]` with transmission `t ∈ [0, 1]`
//!   (50:50 coupling means `t = √2/2`);
//! * a crossing network of `n` waveguides is a permutation matrix;
//! * an MZI is two 50:50 couplers with two phase shifters and realizes an
//!   arbitrary 2-D unitary rotation (up to external phases).

use adept_linalg::{CMatrix, Permutation, C64};

/// Transmission coefficient of a 50:50 directional coupler, `√2/2`.
pub const DC_50_50_T: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Diagonal transfer matrix of a column of `phases.len()` phase shifters:
/// `diag(e^{-jφ₁}, …, e^{-jφ_K})` (paper Eq. 3).
///
/// # Examples
///
/// ```
/// use adept_photonics::phase_column;
///
/// let r = phase_column(&[0.0, std::f64::consts::PI]);
/// assert!((r.at(0, 0).re - 1.0).abs() < 1e-12);
/// assert!((r.at(1, 1).re + 1.0).abs() < 1e-12);
/// ```
pub fn phase_column(phases: &[f64]) -> CMatrix {
    let diag: Vec<C64> = phases.iter().map(|&p| C64::cis(-p)).collect();
    CMatrix::from_diag(&diag)
}

/// 2×2 transfer matrix of a directional coupler with transmission `t`.
///
/// # Panics
///
/// Panics unless `0 ≤ t ≤ 1`.
pub fn coupler_matrix(t: f64) -> CMatrix {
    assert!((0.0..=1.0).contains(&t), "transmission must be in [0,1]");
    let kappa = (1.0 - t * t).sqrt();
    CMatrix::from_vec(
        vec![
            C64::new(t, 0.0),
            C64::new(0.0, kappa),
            C64::new(0.0, kappa),
            C64::new(t, 0.0),
        ],
        2,
        2,
    )
}

/// Complex permutation matrix of a crossing network.
pub fn crossing_matrix(perm: &Permutation) -> CMatrix {
    let n = perm.len();
    let mut m = CMatrix::zeros(n, n);
    for (i, &j) in perm.as_slice().iter().enumerate() {
        m.set(i, j, C64::ONE);
    }
    m
}

/// 2×2 transfer matrix of a Mach–Zehnder interferometer: two 50:50 couplers
/// around an internal phase `θ`, followed by an external phase `φ` on the
/// top arm.
///
/// This is the standard `DC · PS(θ) · DC · PS(φ)` construction; sweeping
/// `θ, φ` reaches any 2-D unitary rotation up to output phases.
pub fn mzi_matrix(theta: f64, phi: f64) -> CMatrix {
    let dc = coupler_matrix(DC_50_50_T);
    let inner = CMatrix::from_diag(&[C64::cis(-theta), C64::ONE]);
    let outer = CMatrix::from_diag(&[C64::cis(-phi), C64::ONE]);
    dc.matmul(&inner).matmul(&dc).matmul(&outer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_column_is_unitary() {
        let r = phase_column(&[0.1, -0.7, 2.4, 0.0]);
        assert!(r.is_unitary(1e-12));
        // Magnitude of each diagonal entry is 1, off-diagonals are 0.
        assert!((r.at(2, 2).abs() - 1.0).abs() < 1e-12);
        assert_eq!(r.at(0, 1), C64::ZERO);
    }

    #[test]
    fn phase_column_applies_negative_phase() {
        let r = phase_column(&[0.5]);
        assert!((r.at(0, 0).arg() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn coupler_unitarity_across_transmissions() {
        for &t in &[0.0, 0.3, DC_50_50_T, 0.9, 1.0] {
            assert!(coupler_matrix(t).is_unitary(1e-12), "t = {t}");
        }
    }

    #[test]
    fn coupler_at_t1_is_identity() {
        let m = coupler_matrix(1.0);
        assert!(m.fro_dist(&CMatrix::identity(2)) < 1e-12);
    }

    #[test]
    fn fifty_fifty_splits_power_evenly() {
        let m = coupler_matrix(DC_50_50_T);
        let out = m.matvec(&[C64::ONE, C64::ZERO]);
        assert!((out[0].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((out[1].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_matrix_routes() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let m = crossing_matrix(&p);
        assert!(m.is_unitary(1e-12));
        let out = m.matvec(&[C64::ONE, 2.0 * C64::ONE, 3.0 * C64::ONE]);
        assert!((out[0].re - 3.0).abs() < 1e-12);
        assert!((out[1].re - 1.0).abs() < 1e-12);
        assert!((out[2].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mzi_is_unitary_and_tunable() {
        for &(theta, phi) in &[(0.0, 0.0), (0.4, 1.2), (std::f64::consts::PI, 0.0)] {
            let m = mzi_matrix(theta, phi);
            assert!(m.is_unitary(1e-12), "θ={theta} φ={phi}");
        }
        // θ = π routes all power through (bar state, up to phase).
        let bar = mzi_matrix(std::f64::consts::PI, 0.0);
        let out = bar.matvec(&[C64::ONE, C64::ZERO]);
        assert!(out[0].norm_sqr() > 1.0 - 1e-9);
        // θ = 0 is the cross state.
        let cross = mzi_matrix(0.0, 0.0);
        let out = cross.matvec(&[C64::ONE, C64::ZERO]);
        assert!(out[1].norm_sqr() > 1.0 - 1e-9);
    }
}
