//! Declarative device registry: runtime-loaded specs for foundry PDK
//! corners, noise/fault priors and named mesh topologies.
//!
//! A *device spec* is a small TOML-like text file (hand-rolled parser —
//! the build environment has no registry access, so no serde) that names
//! everything the workspace otherwise hard-codes in Rust: which PDK a
//! design targets, its loss/crosstalk corner, the phase-noise sigma for
//! variation-aware training, optional coupler/shifter fault priors, and
//! the [`BlockMeshTopology`] family to program. Loading one at runtime
//! replaces a recompile; every parse or validation failure is reported as
//! a [`SpecError`] carrying the 1-based line number.
//!
//! # Grammar
//!
//! Line-oriented: blank lines and `#` comments (outside quotes) are
//! ignored; every other line is either a `[section]` header or a
//! `key = value` binding in the current section. Values are quoted
//! strings, numbers, or `true`/`false`. Unknown sections, unknown keys
//! and duplicate keys are errors. Sections:
//!
//! ```text
//! [device]                      # required
//! name = "amf-butterfly8"       # required
//! description = "…"             # optional
//!
//! [pdk]                         # required
//! name = "amf"                  # "amf" / "aim" = built-in kits (paper
//!                               # Tables 1–2); any other name is a custom
//!                               # kit and must give all three footprints
//! ps_um2 = 6800.0               # custom kits only: device footprints
//! dc_um2 = 1500.0
//! cr_um2 = 64.0
//! insertion_loss_db = 0.2       # optional corner, default 0
//! crosstalk_db = -30.0          # optional corner, default 0
//!
//! [noise]                       # optional
//! phase_sigma = 0.02            # Gaussian phase-drift std (radians)
//!
//! [faults]                      # optional; composes a FaultScenario
//! seed = 7                      # site-draw seed, default 0
//! dead_shifter_p = 0.05         # each prior joins the scenario only
//! stuck_shifter_p = 0.0         # when its knob is active (p > 0,
//! stuck_theta = 1.57            # std > 0, bits > 0), in this fixed
//! dead_coupler_p = 0.01         # order: dead shifters, stuck shifters,
//! thermal_drift_std = 0.0       # dead couplers, thermal drift, phase
//! quant_bits = 0                # quantization
//!
//! [topology]                    # required
//! kind = "butterfly"            # butterfly | dense | custom | mzi
//! k = 8                         # port count (butterfly: power of two)
//! blocks = 4                    # dense only: mesh blocks per unitary
//! block = "0 | 1011 | 1 0 3 2"  # custom only, one per mesh block:
//!                               # dc_start | coupler flags | permutation
//! ```
//!
//! [`DeviceSpec::parse`] validates everything the constructors it feeds
//! would otherwise panic on (probabilities, butterfly power-of-two,
//! permutation bijectivity, …) and returns line-anchored errors instead.

use crate::fault::{FaultKind, FaultScenario};
use crate::noise::PhaseNoise;
use crate::pdk::Pdk;
use crate::topology::{BlockMeshTopology, MeshBlock};
use adept_linalg::Permutation;
use std::fmt;
use std::path::Path;

/// A parse or validation failure, anchored to a spec line (`line == 0`
/// means file-level: missing section, unreadable file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line the error was detected on; 0 for file-level errors.
    pub line: usize,
    /// What went wrong, including the offending key/value where known.
    pub message: String,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    fn file(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "device spec: {}", self.message)
        } else {
            write!(f, "device spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// The mesh family a spec programs, in declarative form.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Universal MZI mesh baseline with `k × k` tiles.
    Mzi {
        /// Tile port count.
        k: usize,
    },
    /// FFT-ONN butterfly (`k` a power of two ≥ 2).
    Butterfly {
        /// Tile port count.
        k: usize,
    },
    /// Dense identity-routing mesh: `blocks` blocks of alternating
    /// coupler alignment.
    Dense {
        /// Tile port count.
        k: usize,
        /// Mesh blocks per unitary.
        blocks: usize,
    },
    /// Fully explicit block list (one mesh, used for both U and V).
    Custom {
        /// The validated topology.
        topo: BlockMeshTopology,
    },
}

impl TopologySpec {
    /// Tile port count of the described mesh.
    pub fn k(&self) -> usize {
        match self {
            TopologySpec::Mzi { k }
            | TopologySpec::Butterfly { k }
            | TopologySpec::Dense { k, .. } => *k,
            TopologySpec::Custom { topo } => topo.k(),
        }
    }

    /// Materializes the block-mesh topology, or `None` for the MZI
    /// baseline (which is not block-structured).
    pub fn mesh(&self) -> Option<BlockMeshTopology> {
        match self {
            TopologySpec::Mzi { .. } => None,
            TopologySpec::Butterfly { k } => Some(BlockMeshTopology::butterfly(*k)),
            TopologySpec::Dense { k, blocks } => {
                Some(BlockMeshTopology::dense_identity_routing(*k, *blocks))
            }
            TopologySpec::Custom { topo } => Some(topo.clone()),
        }
    }
}

/// One parsed + validated device spec (see the module docs for the
/// grammar).
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Registry name of the device.
    pub name: String,
    /// Free-text description (empty when omitted).
    pub description: String,
    /// The foundry kit (built-in AMF/AIM or a custom one).
    pub pdk: Pdk,
    /// Insertion-loss corner in dB (0 when omitted).
    pub insertion_loss_db: f64,
    /// Crosstalk corner in dB (0 when omitted).
    pub crosstalk_db: f64,
    /// Gaussian phase-drift std in radians (0 when omitted).
    pub phase_noise_sigma: f64,
    /// Composed fault priors (absent without a `[faults]` section or when
    /// every prior is inactive).
    pub faults: Option<FaultScenario>,
    /// The mesh family to program.
    pub topology: TopologySpec,
}

impl DeviceSpec {
    /// Parses and validates a spec from text.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        build(parse_sections(text)?)
    }

    /// Reads and parses a spec file; I/O failures become file-level
    /// [`SpecError`]s naming the path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::file(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// The spec's phase-drift model.
    pub fn phase_noise(&self) -> PhaseNoise {
        PhaseNoise::new(self.phase_noise_sigma)
    }
}

/// One `key = value` binding.
struct Entry {
    key: String,
    value: String,
    line: usize,
}

/// One `[section]` with its bindings.
struct Section {
    name: String,
    line: usize,
    entries: Vec<Entry>,
}

impl Section {
    fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }

    fn require(&self, key: &str) -> Result<&Entry, SpecError> {
        self.get(key).ok_or_else(|| {
            SpecError::at(
                self.line,
                format!("section [{}] is missing required key `{key}`", self.name),
            )
        })
    }

    fn check_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for e in &self.entries {
            if !allowed.contains(&e.key.as_str()) {
                return Err(SpecError::at(
                    e.line,
                    format!(
                        "unknown key `{}` in [{}] (allowed: {})",
                        e.key,
                        self.name,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Strips a `#` comment, honoring double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_sections(text: &str) -> Result<Vec<Section>, SpecError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| {
                    SpecError::at(lineno, format!("unterminated section header `{line}`"))
                })?
                .trim();
            if name.is_empty() {
                return Err(SpecError::at(lineno, "empty section name"));
            }
            if sections.iter().any(|s| s.name == name) {
                return Err(SpecError::at(lineno, format!("duplicate section [{name}]")));
            }
            sections.push(Section {
                name: name.to_owned(),
                line: lineno,
                entries: Vec::new(),
            });
        } else if let Some((key, value)) = line.split_once('=') {
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() {
                return Err(SpecError::at(lineno, "missing key before `=`"));
            }
            if value.is_empty() {
                return Err(SpecError::at(lineno, format!("key `{key}` has no value")));
            }
            let section = sections.last_mut().ok_or_else(|| {
                SpecError::at(lineno, format!("key `{key}` before any [section] header"))
            })?;
            // `block` may repeat (one entry per mesh block); everything
            // else must bind once.
            if key != "block" && section.get(key).is_some() {
                return Err(SpecError::at(
                    lineno,
                    format!("duplicate key `{key}` in [{}]", section.name),
                ));
            }
            section.entries.push(Entry {
                key: key.to_owned(),
                value: value.to_owned(),
                line: lineno,
            });
        } else {
            return Err(SpecError::at(
                lineno,
                format!("expected `[section]` or `key = value`, got `{line}`"),
            ));
        }
    }
    Ok(sections)
}

fn str_value(e: &Entry) -> Result<String, SpecError> {
    let v = e.value.as_str();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(SpecError::at(
            e.line,
            format!("key `{}` expects a quoted string, got `{v}`", e.key),
        ))
    }
}

fn f64_value(e: &Entry) -> Result<f64, SpecError> {
    let v: f64 = e.value.parse().map_err(|_| {
        SpecError::at(
            e.line,
            format!("key `{}` expects a number, got `{}`", e.key, e.value),
        )
    })?;
    if !v.is_finite() {
        return Err(SpecError::at(
            e.line,
            format!("key `{}` must be finite, got `{}`", e.key, e.value),
        ));
    }
    Ok(v)
}

fn usize_value(e: &Entry) -> Result<usize, SpecError> {
    e.value.parse().map_err(|_| {
        SpecError::at(
            e.line,
            format!(
                "key `{}` expects a non-negative integer, got `{}`",
                e.key, e.value
            ),
        )
    })
}

fn u64_value(e: &Entry) -> Result<u64, SpecError> {
    e.value.parse().map_err(|_| {
        SpecError::at(
            e.line,
            format!(
                "key `{}` expects a non-negative integer, got `{}`",
                e.key, e.value
            ),
        )
    })
}

fn probability(e: &Entry) -> Result<f64, SpecError> {
    let p = f64_value(e)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(SpecError::at(
            e.line,
            format!(
                "key `{}` is a probability and must be in [0, 1], got {p}",
                e.key
            ),
        ));
    }
    Ok(p)
}

fn build(sections: Vec<Section>) -> Result<DeviceSpec, SpecError> {
    let mut device = None;
    let mut pdk = None;
    let mut noise = None;
    let mut faults = None;
    let mut topology = None;
    for s in &sections {
        match s.name.as_str() {
            "device" => device = Some(s),
            "pdk" => pdk = Some(s),
            "noise" => noise = Some(s),
            "faults" => faults = Some(s),
            "topology" => topology = Some(s),
            other => {
                return Err(SpecError::at(
                    s.line,
                    format!(
                        "unknown section [{other}] (known: device, pdk, noise, faults, topology)"
                    ),
                ))
            }
        }
    }
    let device = device.ok_or_else(|| SpecError::file("missing required section [device]"))?;
    let pdk = pdk.ok_or_else(|| SpecError::file("missing required section [pdk]"))?;
    let topology =
        topology.ok_or_else(|| SpecError::file("missing required section [topology]"))?;

    device.check_keys(&["name", "description"])?;
    let name = str_value(device.require("name")?)?;
    let description = device
        .get("description")
        .map(str_value)
        .transpose()?
        .unwrap_or_default();

    let (pdk, insertion_loss_db, crosstalk_db) = build_pdk(pdk)?;
    let phase_noise_sigma = match noise {
        None => 0.0,
        Some(s) => {
            s.check_keys(&["phase_sigma"])?;
            let e = s.require("phase_sigma")?;
            let sigma = f64_value(e)?;
            if sigma < 0.0 {
                return Err(SpecError::at(
                    e.line,
                    format!("phase_sigma must be ≥ 0, got {sigma}"),
                ));
            }
            sigma
        }
    };
    let faults = faults.map(build_faults).transpose()?.flatten();
    let topology = build_topology(topology)?;

    Ok(DeviceSpec {
        name,
        description,
        pdk,
        insertion_loss_db,
        crosstalk_db,
        phase_noise_sigma,
        faults,
        topology,
    })
}

fn build_pdk(s: &Section) -> Result<(Pdk, f64, f64), SpecError> {
    s.check_keys(&[
        "name",
        "ps_um2",
        "dc_um2",
        "cr_um2",
        "insertion_loss_db",
        "crosstalk_db",
    ])?;
    let name_entry = s.require("name")?;
    let name = str_value(name_entry)?;
    let builtin = match name.to_ascii_lowercase().as_str() {
        "amf" => Some(Pdk::amf()),
        "aim" => Some(Pdk::aim()),
        _ => None,
    };
    let kit = match builtin {
        Some(kit) => {
            for key in ["ps_um2", "dc_um2", "cr_um2"] {
                if let Some(e) = s.get(key) {
                    return Err(SpecError::at(
                        e.line,
                        format!(
                            "built-in PDK \"{name}\" does not take footprint overrides (`{key}`)"
                        ),
                    ));
                }
            }
            kit
        }
        None => {
            let mut footprints = [0.0; 3];
            for (slot, key) in footprints.iter_mut().zip(["ps_um2", "dc_um2", "cr_um2"]) {
                let e = s.require(key)?;
                let v = f64_value(e)?;
                if v <= 0.0 {
                    return Err(SpecError::at(
                        e.line,
                        format!("device footprint `{key}` must be positive, got {v}"),
                    ));
                }
                *slot = v;
            }
            Pdk::custom(name, footprints[0], footprints[1], footprints[2])
        }
    };
    let loss = s
        .get("insertion_loss_db")
        .map(f64_value)
        .transpose()?
        .unwrap_or(0.0);
    let xtalk = s
        .get("crosstalk_db")
        .map(f64_value)
        .transpose()?
        .unwrap_or(0.0);
    Ok((kit, loss, xtalk))
}

/// Composes the fault priors into a [`FaultScenario`] in a fixed order
/// (dead shifters, stuck shifters, dead couplers, thermal drift, phase
/// quantization) so identical specs always fingerprint identically.
/// Returns `None` when every prior is inactive.
fn build_faults(s: &Section) -> Result<Option<FaultScenario>, SpecError> {
    s.check_keys(&[
        "seed",
        "dead_shifter_p",
        "stuck_shifter_p",
        "stuck_theta",
        "dead_coupler_p",
        "thermal_drift_std",
        "quant_bits",
    ])?;
    let seed = s.get("seed").map(u64_value).transpose()?.unwrap_or(0);
    let dead_p = s
        .get("dead_shifter_p")
        .map(probability)
        .transpose()?
        .unwrap_or(0.0);
    let stuck_p = s
        .get("stuck_shifter_p")
        .map(probability)
        .transpose()?
        .unwrap_or(0.0);
    let stuck_theta = s
        .get("stuck_theta")
        .map(f64_value)
        .transpose()?
        .unwrap_or(0.0);
    if stuck_p == 0.0 {
        if let Some(e) = s.get("stuck_theta") {
            return Err(SpecError::at(
                e.line,
                "stuck_theta requires stuck_shifter_p > 0",
            ));
        }
    }
    let coupler_p = s
        .get("dead_coupler_p")
        .map(probability)
        .transpose()?
        .unwrap_or(0.0);
    let drift = match s.get("thermal_drift_std") {
        None => 0.0,
        Some(e) => {
            let v = f64_value(e)?;
            if v < 0.0 {
                return Err(SpecError::at(
                    e.line,
                    format!("thermal_drift_std must be ≥ 0, got {v}"),
                ));
            }
            v
        }
    };
    let bits = match s.get("quant_bits") {
        None => 0,
        Some(e) => {
            let v = usize_value(e)?;
            if v > 52 {
                return Err(SpecError::at(
                    e.line,
                    format!("quant_bits must be in 0..=52 (0 = off), got {v}"),
                ));
            }
            v as u32
        }
    };
    let mut scenario = FaultScenario::new(seed);
    if dead_p > 0.0 {
        scenario = scenario.with(FaultKind::DeadShifter { p: dead_p });
    }
    if stuck_p > 0.0 {
        scenario = scenario.with(FaultKind::StuckShifter {
            p: stuck_p,
            theta: stuck_theta,
        });
    }
    if coupler_p > 0.0 {
        scenario = scenario.with(FaultKind::DeadCoupler { p: coupler_p });
    }
    if drift > 0.0 {
        scenario = scenario.with(FaultKind::ThermalDrift { std: drift });
    }
    if bits > 0 {
        scenario = scenario.with(FaultKind::PhaseQuantization { bits });
    }
    Ok(if scenario.is_empty() {
        None
    } else {
        Some(scenario)
    })
}

fn build_topology(s: &Section) -> Result<TopologySpec, SpecError> {
    s.check_keys(&["kind", "k", "blocks", "block"])?;
    let kind_entry = s.require("kind")?;
    let kind = str_value(kind_entry)?;
    let k_entry = s.require("k")?;
    let k = usize_value(k_entry)?;
    if k < 2 {
        return Err(SpecError::at(
            k_entry.line,
            format!("k must be ≥ 2, got {k}"),
        ));
    }
    let reject_key = |key: &str| -> Result<(), SpecError> {
        match s.get(key) {
            Some(e) => Err(SpecError::at(
                e.line,
                format!("key `{key}` is not valid for kind \"{kind}\""),
            )),
            None => Ok(()),
        }
    };
    match kind.as_str() {
        "mzi" => {
            reject_key("blocks")?;
            reject_key("block")?;
            Ok(TopologySpec::Mzi { k })
        }
        "butterfly" => {
            reject_key("blocks")?;
            reject_key("block")?;
            if !k.is_power_of_two() {
                return Err(SpecError::at(
                    k_entry.line,
                    format!("butterfly k must be a power of two, got {k}"),
                ));
            }
            Ok(TopologySpec::Butterfly { k })
        }
        "dense" => {
            reject_key("block")?;
            let b_entry = s.require("blocks")?;
            let blocks = usize_value(b_entry)?;
            if blocks == 0 {
                return Err(SpecError::at(b_entry.line, "blocks must be ≥ 1"));
            }
            Ok(TopologySpec::Dense { k, blocks })
        }
        "custom" => {
            reject_key("blocks")?;
            let entries: Vec<&Entry> = s.entries.iter().filter(|e| e.key == "block").collect();
            if entries.is_empty() {
                return Err(SpecError::at(
                    s.line,
                    "kind \"custom\" needs at least one `block = \"…\"` entry",
                ));
            }
            let blocks = entries
                .iter()
                .map(|e| parse_block(e, k))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TopologySpec::Custom {
                topo: BlockMeshTopology::new(k, blocks),
            })
        }
        other => Err(SpecError::at(
            kind_entry.line,
            format!("unknown topology kind \"{other}\" (known: butterfly, dense, custom, mzi)"),
        )),
    }
}

/// Parses one `block = "dc_start | coupler flags | permutation"` entry.
fn parse_block(e: &Entry, k: usize) -> Result<MeshBlock, SpecError> {
    let text = str_value(e)?;
    let parts: Vec<&str> = text.split('|').collect();
    if parts.len() != 3 {
        return Err(SpecError::at(
            e.line,
            "block must be \"dc_start | coupler flags | permutation\" (two `|` separators)",
        ));
    }
    let dc_start: usize = parts[0].trim().parse().map_err(|_| {
        SpecError::at(
            e.line,
            format!("block dc_start must be 0 or 1, got `{}`", parts[0].trim()),
        )
    })?;
    if dc_start > 1 {
        return Err(SpecError::at(
            e.line,
            format!("block dc_start must be 0 or 1, got {dc_start}"),
        ));
    }
    let mut couplers = Vec::new();
    for c in parts[1].chars() {
        match c {
            '0' => couplers.push(false),
            '1' => couplers.push(true),
            c if c.is_whitespace() => {}
            c => {
                return Err(SpecError::at(
                    e.line,
                    format!("coupler flags must be 0/1 digits, got `{c}`"),
                ))
            }
        }
    }
    let slots = MeshBlock::coupler_slots(k, dc_start);
    if couplers.len() != slots {
        return Err(SpecError::at(
            e.line,
            format!(
                "block has {} coupler flags, k = {k} with dc_start = {dc_start} needs {slots}",
                couplers.len()
            ),
        ));
    }
    let image = parts[2]
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| {
                SpecError::at(
                    e.line,
                    format!("permutation entries must be integers, got `{t}`"),
                )
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    if image.len() != k {
        return Err(SpecError::at(
            e.line,
            format!("permutation lists {} wires, k = {k}", image.len()),
        ));
    }
    let perm = Permutation::from_vec(image)
        .map_err(|err| SpecError::at(e.line, format!("invalid permutation: {err}")))?;
    Ok(MeshBlock {
        dc_start,
        couplers,
        perm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# An example spec exercising every section.
[device]
name = "lab-custom4"
description = "bench corner"   # trailing comment

[pdk]
name = "labkit"
ps_um2 = 100.0
dc_um2 = 200.0
cr_um2 = 50.0
insertion_loss_db = 0.3
crosstalk_db = -28.5

[noise]
phase_sigma = 0.02

[faults]
seed = 7
dead_shifter_p = 0.05
dead_coupler_p = 0.01
quant_bits = 6

[topology]
kind = "custom"
k = 4
block = "0 | 11 | 1 0 3 2"
block = "1 | 1 | 0 1 2 3"
"#;

    #[test]
    fn full_spec_round_trips() {
        let spec = DeviceSpec::parse(FULL).unwrap();
        assert_eq!(spec.name, "lab-custom4");
        assert_eq!(spec.description, "bench corner");
        assert_eq!(spec.pdk, Pdk::custom("labkit", 100.0, 200.0, 50.0));
        assert_eq!(spec.insertion_loss_db, 0.3);
        assert_eq!(spec.crosstalk_db, -28.5);
        assert_eq!(spec.phase_noise_sigma, 0.02);
        assert_eq!(spec.phase_noise().std(), 0.02);
        let faults = spec.faults.as_ref().expect("active priors");
        assert_eq!(faults.seed(), 7);
        let want = FaultScenario::new(7)
            .with(FaultKind::DeadShifter { p: 0.05 })
            .with(FaultKind::DeadCoupler { p: 0.01 })
            .with(FaultKind::PhaseQuantization { bits: 6 });
        assert_eq!(faults.fingerprint(), want.fingerprint());
        let topo = spec.topology.mesh().unwrap();
        assert_eq!(topo.k(), 4);
        assert_eq!(topo.blocks().len(), 2);
        assert_eq!(topo.blocks()[1].dc_start, 1);
    }

    fn minimal(topology: &str) -> String {
        format!("[device]\nname = \"d\"\n[pdk]\nname = \"amf\"\n[topology]\n{topology}\n")
    }

    #[test]
    fn builtin_pdks_and_named_topologies() {
        let spec = DeviceSpec::parse(&minimal("kind = \"butterfly\"\nk = 8")).unwrap();
        assert_eq!(spec.pdk, Pdk::amf());
        assert!(spec.faults.is_none());
        assert_eq!(spec.phase_noise_sigma, 0.0);
        assert_eq!(spec.topology, TopologySpec::Butterfly { k: 8 });
        assert_eq!(
            spec.topology.mesh().unwrap(),
            BlockMeshTopology::butterfly(8)
        );

        let dense = DeviceSpec::parse(&minimal("kind = \"dense\"\nk = 8\nblocks = 4")).unwrap();
        assert_eq!(dense.topology, TopologySpec::Dense { k: 8, blocks: 4 });
        assert_eq!(
            dense.topology.mesh().unwrap(),
            BlockMeshTopology::dense_identity_routing(8, 4)
        );

        let mzi = DeviceSpec::parse(&minimal("kind = \"mzi\"\nk = 8")).unwrap();
        assert_eq!(mzi.topology.k(), 8);
        assert!(mzi.topology.mesh().is_none());
    }

    /// Every rejection carries the line it was detected on — both
    /// parse-level failures (malformed lines, duplicates) and build-level
    /// validation (unknown keys/sections, types, ranges).
    #[test]
    fn errors_are_line_numbered() {
        // Lines 1–7 of a complete, valid spec; appended sections start at
        // line 8.
        let base =
            "[device]\nname = \"d\"\n[pdk]\nname = \"amf\"\n[topology]\nkind = \"mzi\"\nk = 2\n";
        let weird = format!("{base}[weird]");
        let bogus = format!("{base}[noise]\nphase_sigma = 0.1\nbogus = 1");
        let tall = format!("{base}[noise]\nphase_sigma = tall");
        let out_of_range = format!("{base}[faults]\ndead_shifter_p = 1.5");
        let unquoted =
            "[device]\nname = d\n[pdk]\nname = \"amf\"\n[topology]\nkind = \"mzi\"\nk = 2\n";
        let cases: [(&str, usize, &str); 9] = [
            ("name = \"d\"\n", 1, "before any [section]"),
            ("[device\n", 1, "unterminated section header"),
            (
                "[device]\nname = \"d\"\nname = \"e\"\n",
                3,
                "duplicate key `name`",
            ),
            ("[device]\nnot a binding\n", 2, "expected `[section]`"),
            (&weird, 8, "unknown section [weird]"),
            (&bogus, 10, "unknown key `bogus`"),
            (&tall, 9, "expects a number"),
            (&out_of_range, 9, "must be in [0, 1]"),
            (unquoted, 2, "quoted string"),
        ];
        for (text, line, needle) in cases {
            let err = DeviceSpec::parse(text).unwrap_err();
            assert_eq!(err.line, line, "line for {text:?} ({err})");
            assert!(
                err.message.contains(needle),
                "message for {text:?}: {}",
                err.message
            );
        }
        // Whole-file errors anchor to line 0.
        let err = DeviceSpec::parse("[device]\nname = \"d\"\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("missing required section [pdk]"));
        assert!(err.to_string().starts_with("device spec:"));
    }

    /// Constructor panics are pre-validated into line-anchored errors.
    #[test]
    fn constructor_invariants_become_errors() {
        let err = DeviceSpec::parse(&minimal("kind = \"butterfly\"\nk = 6")).unwrap_err();
        assert!(err.message.contains("power of two"), "{err}");
        let err = DeviceSpec::parse(&minimal("kind = \"dense\"\nk = 8\nblocks = 0")).unwrap_err();
        assert!(err.message.contains("blocks must be ≥ 1"), "{err}");
        let err = DeviceSpec::parse(&minimal(
            "kind = \"custom\"\nk = 4\nblock = \"0 | 11 | 1 1 3 2\"",
        ))
        .unwrap_err();
        assert!(err.message.contains("invalid permutation"), "{err}");
        let err = DeviceSpec::parse(&minimal(
            "kind = \"custom\"\nk = 4\nblock = \"0 | 111 | 1 0 3 2\"",
        ))
        .unwrap_err();
        assert!(err.message.contains("coupler flags"), "{err}");
        let bad_pdk = "[device]\nname = \"d\"\n[pdk]\nname = \"lab\"\nps_um2 = 0\ndc_um2 = 1\ncr_um2 = 1\n[topology]\nkind = \"mzi\"\nk = 2\n";
        let err = DeviceSpec::parse(bad_pdk).unwrap_err();
        assert!(err.message.contains("must be positive"), "{err}");
        let override_builtin = "[device]\nname = \"d\"\n[pdk]\nname = \"amf\"\nps_um2 = 1.0\n[topology]\nkind = \"mzi\"\nk = 2\n";
        let err = DeviceSpec::parse(override_builtin).unwrap_err();
        assert!(err.message.contains("footprint overrides"), "{err}");
    }

    /// A `[faults]` section whose priors are all zero composes no
    /// scenario at all — the spec behaves exactly like a fault-free one.
    #[test]
    fn inactive_priors_collapse_to_none() {
        let text = "[device]\nname = \"d\"\n[pdk]\nname = \"aim\"\n[faults]\nseed = 3\ndead_shifter_p = 0.0\n[topology]\nkind = \"mzi\"\nk = 2\n";
        assert!(DeviceSpec::parse(text).unwrap().faults.is_none());
    }
}
