//! Plain-text persistence for searched topologies.
//!
//! A searched PTC design is the artifact a fab would consume, so it needs a
//! stable, human-readable on-disk form. The format is line-based:
//!
//! ```text
//! adept-topology v1
//! k 8
//! blocks 2
//! block dc_start=0 couplers=1011 perm=0,2,1,3,4,5,6,7
//! block dc_start=1 couplers=110 perm=1,0,3,2,5,4,7,6
//! ```
//!
//! No external serialization crates are needed for this, and diffs of two
//! designs stay reviewable.

use crate::topology::{BlockMeshTopology, MeshBlock};
use adept_linalg::Permutation;
use std::fmt;

/// Error produced when parsing a topology file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    /// 1-based line number of the offending line (0 for structural errors).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTopologyError {}

fn err(line: usize, message: impl Into<String>) -> ParseTopologyError {
    ParseTopologyError {
        line,
        message: message.into(),
    }
}

/// Serializes a topology to the `adept-topology v1` text format.
///
/// # Examples
///
/// ```
/// use adept_photonics::{BlockMeshTopology, io};
///
/// let topo = BlockMeshTopology::butterfly(8);
/// let text = io::to_text(&topo);
/// let back = io::from_text(&text)?;
/// assert_eq!(topo, back);
/// # Ok::<(), adept_photonics::io::ParseTopologyError>(())
/// ```
pub fn to_text(topo: &BlockMeshTopology) -> String {
    let mut out = String::new();
    out.push_str("adept-topology v1\n");
    out.push_str(&format!("k {}\n", topo.k()));
    out.push_str(&format!("blocks {}\n", topo.blocks().len()));
    for b in topo.blocks() {
        let couplers: String = b
            .couplers
            .iter()
            .map(|&c| if c { '1' } else { '0' })
            .collect();
        let perm: Vec<String> = b.perm.as_slice().iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "block dc_start={} couplers={} perm={}\n",
            b.dc_start,
            couplers,
            perm.join(",")
        ));
    }
    out
}

/// Parses the `adept-topology v1` text format.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] on malformed input, size mismatches or
/// illegal permutations.
pub fn from_text(text: &str) -> Result<BlockMeshTopology, ParseTopologyError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header.trim() != "adept-topology v1" {
        return Err(err(1, format!("unexpected header {header:?}")));
    }
    let (_, kline) = lines.next().ok_or_else(|| err(0, "missing k line"))?;
    let k: usize = kline
        .trim()
        .strip_prefix("k ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err(2, format!("malformed k line {kline:?}")))?;
    let (_, bline) = lines.next().ok_or_else(|| err(0, "missing blocks line"))?;
    let n_blocks: usize = bline
        .trim()
        .strip_prefix("blocks ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err(3, format!("malformed blocks line {bline:?}")))?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("block ")
            .ok_or_else(|| err(ln + 1, format!("expected block line, got {line:?}")))?;
        let mut dc_start = None;
        let mut couplers = None;
        let mut perm = None;
        for field in rest.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(ln + 1, format!("malformed field {field:?}")))?;
            match key {
                "dc_start" => {
                    dc_start = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| err(ln + 1, format!("bad dc_start: {e}")))?,
                    );
                }
                "couplers" => {
                    let flags: Result<Vec<bool>, _> = value
                        .chars()
                        .map(|c| match c {
                            '0' => Ok(false),
                            '1' => Ok(true),
                            other => Err(err(ln + 1, format!("bad coupler flag {other:?}"))),
                        })
                        .collect();
                    couplers = Some(flags?);
                }
                "perm" => {
                    let image: Result<Vec<usize>, _> = value
                        .split(',')
                        .map(|v| {
                            v.parse::<usize>()
                                .map_err(|e| err(ln + 1, format!("bad perm entry: {e}")))
                        })
                        .collect();
                    let p = Permutation::from_vec(image?)
                        .map_err(|e| err(ln + 1, format!("illegal permutation: {e}")))?;
                    perm = Some(p);
                }
                other => return Err(err(ln + 1, format!("unknown field {other:?}"))),
            }
        }
        blocks.push(MeshBlock {
            dc_start: dc_start.ok_or_else(|| err(ln + 1, "missing dc_start"))?,
            couplers: couplers.ok_or_else(|| err(ln + 1, "missing couplers"))?,
            perm: perm.ok_or_else(|| err(ln + 1, "missing perm"))?,
        });
    }
    if blocks.len() != n_blocks {
        return Err(err(
            0,
            format!("expected {n_blocks} blocks, found {}", blocks.len()),
        ));
    }
    // BlockMeshTopology::new validates sizes but panics; pre-validate here.
    for (i, b) in blocks.iter().enumerate() {
        if b.perm.len() != k {
            return Err(err(0, format!("block {i}: permutation size != k")));
        }
        if b.dc_start > 1 {
            return Err(err(0, format!("block {i}: dc_start must be 0 or 1")));
        }
        if b.couplers.len() != MeshBlock::coupler_slots(k, b.dc_start) {
            return Err(err(0, format!("block {i}: coupler flag count mismatch")));
        }
    }
    Ok(BlockMeshTopology::new(k, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_butterfly() {
        let topo = BlockMeshTopology::butterfly(16);
        let text = to_text(&topo);
        let back = from_text(&text).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn round_trip_random_topologies() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [4usize, 8, 10] {
            for b in 1..4 {
                let topo = BlockMeshTopology::random(&mut rng, k, b);
                let back = from_text(&to_text(&topo)).unwrap();
                assert_eq!(topo, back, "k={k} b={b}");
            }
        }
    }

    #[test]
    fn header_is_versioned() {
        let text = to_text(&BlockMeshTopology::butterfly(4));
        assert!(text.starts_with("adept-topology v1\n"));
        let bad = text.replace("v1", "v9");
        assert!(from_text(&bad).is_err());
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_text("").is_err());
        assert!(from_text("adept-topology v1\nk x\nblocks 0\n").is_err());
        assert!(from_text("adept-topology v1\nk 4\nblocks 1\n").is_err());
        let bad_perm =
            "adept-topology v1\nk 4\nblocks 1\nblock dc_start=0 couplers=11 perm=0,0,1,2\n";
        let e = from_text(bad_perm).unwrap_err();
        assert!(e.to_string().contains("illegal permutation"));
        let bad_flags =
            "adept-topology v1\nk 4\nblocks 1\nblock dc_start=0 couplers=1 perm=0,1,2,3\n";
        assert!(from_text(bad_flags).is_err());
        let wrong_count =
            "adept-topology v1\nk 4\nblocks 2\nblock dc_start=0 couplers=11 perm=0,1,2,3\n";
        assert!(from_text(wrong_count).is_err());
    }

    #[test]
    fn unknown_field_rejected() {
        let text =
            "adept-topology v1\nk 4\nblocks 1\nblock dc_start=0 couplers=11 perm=0,1,2,3 foo=1\n";
        let e = from_text(text).unwrap_err();
        assert!(e.to_string().contains("unknown field"));
    }
}
