//! Foundry process design kits (PDKs) with per-device footprints.

use std::fmt;

/// A foundry PDK: the footprint of each basic device in µm².
///
/// The two built-in kits are the ones the paper evaluates on:
///
/// | PDK | PS (µm²) | DC (µm²) | CR (µm²) |
/// |-----|----------|----------|----------|
/// | AMF | 6800     | 1500     | 64       |
/// | AIM | 2500     | 4000     | 4900     |
///
/// AIM's crossings are ~77× larger than AMF's, which is exactly what makes
/// crossing-heavy topologies (like large butterflies) expensive there and
/// drives ADEPT's PDK adaptivity.
///
/// # Examples
///
/// ```
/// use adept_photonics::Pdk;
///
/// let amf = Pdk::amf();
/// assert_eq!(amf.ps_um2, 6800.0);
/// assert!(Pdk::aim().cr_um2 > amf.cr_um2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pdk {
    /// Human-readable kit name.
    pub name: String,
    /// Phase-shifter footprint in µm².
    pub ps_um2: f64,
    /// Directional-coupler footprint in µm².
    pub dc_um2: f64,
    /// Waveguide-crossing footprint in µm².
    pub cr_um2: f64,
}

impl Pdk {
    /// Advanced Micro Foundry PDK (paper Table 1).
    pub fn amf() -> Self {
        Self {
            name: "AMF".to_owned(),
            ps_um2: 6800.0,
            dc_um2: 1500.0,
            cr_um2: 64.0,
        }
    }

    /// AIM Photonics PDK (paper Table 2).
    pub fn aim() -> Self {
        Self {
            name: "AIM".to_owned(),
            ps_um2: 2500.0,
            dc_um2: 4000.0,
            cr_um2: 4900.0,
        }
    }

    /// A user-defined PDK.
    ///
    /// # Panics
    ///
    /// Panics if any footprint is non-positive.
    pub fn custom(name: impl Into<String>, ps_um2: f64, dc_um2: f64, cr_um2: f64) -> Self {
        assert!(
            ps_um2 > 0.0 && dc_um2 > 0.0 && cr_um2 > 0.0,
            "device footprints must be positive"
        );
        Self {
            name: name.into(),
            ps_um2,
            dc_um2,
            cr_um2,
        }
    }

    /// Phase-shifter footprint in the paper's reporting unit (1000 µm²).
    pub fn ps_kum2(&self) -> f64 {
        self.ps_um2 / 1000.0
    }

    /// Directional-coupler footprint in 1000 µm².
    pub fn dc_kum2(&self) -> f64 {
        self.dc_um2 / 1000.0
    }

    /// Crossing footprint in 1000 µm².
    pub fn cr_kum2(&self) -> f64 {
        self.cr_um2 / 1000.0
    }
}

impl fmt::Display for Pdk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (PS {} µm², DC {} µm², CR {} µm²)",
            self.name, self.ps_um2, self.dc_um2, self.cr_um2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_kits_match_paper() {
        let amf = Pdk::amf();
        assert_eq!((amf.ps_um2, amf.dc_um2, amf.cr_um2), (6800.0, 1500.0, 64.0));
        let aim = Pdk::aim();
        assert_eq!(
            (aim.ps_um2, aim.dc_um2, aim.cr_um2),
            (2500.0, 4000.0, 4900.0)
        );
    }

    #[test]
    fn reporting_units() {
        assert!((Pdk::amf().ps_kum2() - 6.8).abs() < 1e-12);
        assert!((Pdk::aim().cr_kum2() - 4.9).abs() < 1e-12);
    }

    #[test]
    fn custom_kit() {
        let p = Pdk::custom("lab", 100.0, 200.0, 50.0);
        assert_eq!(p.name, "lab");
        assert_eq!(p.dc_um2, 200.0);
        assert!(p.to_string().contains("lab"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn custom_rejects_nonpositive() {
        let _ = Pdk::custom("bad", 0.0, 1.0, 1.0);
    }
}
