//! Photonic-circuit substrate for the ADEPT reproduction.
//!
//! Models the hardware the paper designs:
//!
//! * [`devices`] — transfer matrices of the basic optical components (phase
//!   shifter, directional coupler, waveguide crossing, Mach–Zehnder
//!   interferometer);
//! * [`Pdk`] — foundry process design kits (AMF, AIM photonics and custom)
//!   with per-device footprints;
//! * [`DeviceCount`] — the #PS/#DC/#CR/#Blk accounting and footprint model
//!   used in the paper's Tables 1–2 (our numbers for the MZI and FFT
//!   baselines match the published cells exactly; see tests);
//! * [`BlockMeshTopology`] — the PS→DC→CR block-structured programmable mesh
//!   that both the FFT-ONN baseline and ADEPT's searched designs instantiate;
//! * [`butterfly`] — the FFT-ONN butterfly topology;
//! * [`clements`] — MZI-mesh accounting plus a full unitary→adjacent-rotation
//!   decomposition (Reck-style), used to inject phase noise into the MZI
//!   baseline;
//! * [`PhaseNoise`] — the Gaussian phase-drift model of the robustness
//!   experiments (Fig. 4);
//! * [`fault`] — seeded, composable static-fault scenarios
//!   ([`FaultScenario`]): dead/stuck phase shifters, dead couplers, frozen
//!   thermal drift and phase quantization, applied per physical device site;
//! * [`registry`] — runtime-loaded declarative device specs
//!   ([`DeviceSpec`]): PDK corners, noise sigma, fault priors and the mesh
//!   topology in one TOML-like text file with line-numbered validation.

pub mod butterfly;
pub mod clements;
mod cost;
pub mod devices;
pub mod fault;
pub mod io;
mod noise;
mod pdk;
pub mod registry;
mod topology;

pub use cost::{block_count_bounds, BlockBounds, DeviceCount};
pub use devices::{coupler_matrix, crossing_matrix, mzi_matrix, phase_column, DC_50_50_T};
pub use fault::{FaultKind, FaultScenario};
pub use noise::{DeadShifterFault, PhaseNoise};
pub use pdk::Pdk;
pub use registry::{DeviceSpec, SpecError, TopologySpec};
pub use topology::{BlockMeshTopology, MeshBlock};
