//! Device accounting and the footprint model (paper Eq. 15–16).

use crate::pdk::Pdk;
use std::ops::Add;

/// Device counts of a photonic tensor core or mesh: the `#PS/#DC/#CR/#Blk`
/// columns of the paper's Tables 1–2.
///
/// # Examples
///
/// ```
/// use adept_photonics::{DeviceCount, Pdk};
///
/// // The 8×8 MZI-ONN row of Table 1: footprint 1909 (in 1000 µm²).
/// let mzi = DeviceCount::mzi_ptc(8);
/// assert_eq!((mzi.cr, mzi.dc, mzi.blocks), (0, 112, 32));
/// assert_eq!(mzi.footprint_kum2(&Pdk::amf()).round(), 1909.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceCount {
    /// Phase shifters.
    pub ps: usize,
    /// Directional couplers.
    pub dc: usize,
    /// Waveguide crossings.
    pub cr: usize,
    /// PS→DC→CR blocks (the paper's `#Blk`).
    pub blocks: usize,
}

impl DeviceCount {
    /// Creates a count.
    pub fn new(ps: usize, dc: usize, cr: usize, blocks: usize) -> Self {
        Self { ps, dc, cr, blocks }
    }

    /// Device count of a `k×k` MZI-ONN photonic tensor core (both unitaries
    /// of the SVD parametrization), in the paper's accounting convention:
    /// `#Blk = 4k` (each MZI column contributes two PS/DC block columns per
    /// unitary), `#PS = k·#Blk` and `#DC = 2k(k−1)`.
    pub fn mzi_ptc(k: usize) -> Self {
        let blocks = 4 * k;
        Self {
            ps: k * blocks,
            dc: 2 * k * (k - 1),
            cr: 0,
            blocks,
        }
    }

    /// Footprint in µm² under `pdk`.
    pub fn footprint_um2(&self, pdk: &Pdk) -> f64 {
        self.ps as f64 * pdk.ps_um2 + self.dc as f64 * pdk.dc_um2 + self.cr as f64 * pdk.cr_um2
    }

    /// Footprint in the paper's reporting unit (1000 µm²).
    pub fn footprint_kum2(&self, pdk: &Pdk) -> f64 {
        self.footprint_um2(pdk) / 1000.0
    }
}

impl Add for DeviceCount {
    type Output = DeviceCount;
    fn add(self, rhs: DeviceCount) -> DeviceCount {
        DeviceCount {
            ps: self.ps + rhs.ps,
            dc: self.dc + rhs.dc,
            cr: self.cr + rhs.cr,
            blocks: self.blocks + rhs.blocks,
        }
    }
}

/// Analytical SuperMesh block-count bounds (paper Eq. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBounds {
    /// Minimum total block count `B_min` (over `U` and `V` together).
    pub b_min: usize,
    /// Maximum total block count `B_max`.
    pub b_max: usize,
}

/// Computes `B_min`/`B_max` for PTC size `k` under a footprint window
/// `[f_min_kum2, f_max_kum2]` (in 1000 µm²), per Eq. 16:
///
/// ```text
/// F_b,min = K·F_PS + F_DC
/// F_b,max = F_b,min + K·F_DC/2 + K(K−1)·F_CR/2
/// B_max = ⌈F_max / F_b,min⌉,   B_min = ⌊F_min / F_b,max⌋
/// ```
///
/// # Panics
///
/// Panics if the window is empty or non-positive.
pub fn block_count_bounds(k: usize, pdk: &Pdk, f_min_kum2: f64, f_max_kum2: f64) -> BlockBounds {
    assert!(
        f_max_kum2 >= f_min_kum2 && f_min_kum2 > 0.0,
        "invalid footprint window [{f_min_kum2}, {f_max_kum2}]"
    );
    let kf = k as f64;
    let fb_min = kf * pdk.ps_kum2() + pdk.dc_kum2();
    let fb_max = fb_min + kf * pdk.dc_kum2() / 2.0 + kf * (kf - 1.0) * pdk.cr_kum2() / 2.0;
    let b_max = (f_max_kum2 / fb_min).ceil() as usize;
    let b_min = (f_min_kum2 / fb_max).floor() as usize;
    BlockBounds {
        b_min: b_min.max(2).min(b_max), // need at least one block per unitary
        b_max: b_max.max(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Footprint cells for MZI-ONN in paper Table 1 (AMF) and Table 2 (AIM).
    #[test]
    fn mzi_footprints_match_paper_tables() {
        let amf = Pdk::amf();
        assert_eq!(DeviceCount::mzi_ptc(8).footprint_kum2(&amf).round(), 1909.0);
        assert_eq!(
            DeviceCount::mzi_ptc(16).footprint_kum2(&amf).round(),
            7683.0
        );
        assert_eq!(
            DeviceCount::mzi_ptc(32).footprint_kum2(&amf).round(),
            30829.0
        );
        let aim = Pdk::aim();
        assert_eq!(
            DeviceCount::mzi_ptc(16).footprint_kum2(&aim).round(),
            4480.0
        );
    }

    #[test]
    fn mzi_device_counts_match_paper_tables() {
        for (k, dc, blk) in [(8usize, 112usize, 32usize), (16, 480, 64), (32, 1984, 128)] {
            let c = DeviceCount::mzi_ptc(k);
            assert_eq!(c.dc, dc, "k={k}");
            assert_eq!(c.blocks, blk, "k={k}");
            assert_eq!(c.cr, 0, "k={k}");
            assert_eq!(c.ps, k * blk, "k={k}");
        }
    }

    #[test]
    fn counts_add() {
        let a = DeviceCount::new(1, 2, 3, 4);
        let b = DeviceCount::new(10, 20, 30, 40);
        assert_eq!(a + b, DeviceCount::new(11, 22, 33, 44));
    }

    #[test]
    fn block_bounds_bracket_published_designs() {
        let amf = Pdk::amf();
        // Table 1, 8×8 ADEPT-a1 used [240, 300] and found 5 blocks.
        let b = block_count_bounds(8, &amf, 240.0, 300.0);
        assert!(b.b_min <= 5 && 5 <= b.b_max, "{b:?}");
        // Table 1, 16×16 ADEPT-a5 used [1248, 1560] and found 12 blocks.
        let b = block_count_bounds(16, &amf, 1248.0, 1560.0);
        assert!(b.b_min <= 12 && 12 <= b.b_max, "{b:?}");
        // Table 1, 32×32 ADEPT-a3 used [1728, 2160] and found 8 blocks.
        let b = block_count_bounds(32, &amf, 1728.0, 2160.0);
        assert!(b.b_min <= 8 && 8 <= b.b_max, "{b:?}");
        // Table 2, 16×16 ADEPT-a0 on AIM used [384, 480] and found 5 blocks.
        let b = block_count_bounds(16, &Pdk::aim(), 384.0, 480.0);
        assert!(b.b_min <= 5 && 5 <= b.b_max, "{b:?}");
    }

    #[test]
    fn bounds_are_ordered() {
        let b = block_count_bounds(16, &Pdk::amf(), 480.0, 600.0);
        assert!(b.b_min <= b.b_max);
        assert!(b.b_min >= 2);
    }

    #[test]
    #[should_panic(expected = "invalid footprint window")]
    fn rejects_empty_window() {
        block_count_bounds(8, &Pdk::amf(), 300.0, 240.0);
    }
}
